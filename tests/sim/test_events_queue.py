"""Unit tests for the raw EventQueue (exercised indirectly by the kernel;
these pin down its contract directly)."""

import pytest

from repro.errors import SchedulingError
from repro.sim.events import HIGH, LOW, NORMAL, EventQueue, ScheduledCallback


def cb():
    return ScheduledCallback(0.0, lambda: None)


class TestEventQueue:
    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.push(1.0, cb())
        assert q
        assert len(q) == 1

    def test_pop_time_order(self):
        q = EventQueue()
        handles = {t: cb() for t in (3.0, 1.0, 2.0)}
        for t, handle in handles.items():
            q.push(t, handle)
        times = [q.pop()[0] for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_priority_within_same_time(self):
        q = EventQueue()
        low, normal, high = cb(), cb(), cb()
        q.push(1.0, low, LOW)
        q.push(1.0, normal, NORMAL)
        q.push(1.0, high, HIGH)
        assert q.pop()[1] is high
        assert q.pop()[1] is normal
        assert q.pop()[1] is low

    def test_fifo_within_same_time_and_priority(self):
        q = EventQueue()
        first, second = cb(), cb()
        q.push(1.0, first)
        q.push(1.0, second)
        assert q.pop()[1] is first
        assert q.pop()[1] is second

    def test_peek_time(self):
        q = EventQueue()
        q.push(5.0, cb())
        q.push(2.0, cb())
        assert q.peek_time() == 2.0
        assert len(q) == 2  # peeking does not pop

    def test_empty_queue_errors(self):
        q = EventQueue()
        with pytest.raises(SchedulingError):
            q.peek_time()
        with pytest.raises(SchedulingError):
            q.pop()

    def test_scheduled_callback_cancel_flag(self):
        handle = cb()
        assert not handle.cancelled
        handle.cancel()
        assert handle.cancelled


class TestObserverRegistry:
    def test_mark_observer_registers_and_flags(self):
        from repro.sim.events import is_observer, mark_observer, observer_registry

        @mark_observer
        def registry_probe_alpha(engine):
            return engine

        assert is_observer(registry_probe_alpha)
        names = observer_registry()
        assert names == tuple(sorted(names)), "registry must expose sorted names"
        assert any("registry_probe_alpha" in name for name in names)

    def test_registry_holds_callbacks_weakly(self):
        import gc

        from repro.sim.events import mark_observer, observer_registry

        @mark_observer
        def registry_probe_ephemeral(engine):
            return engine

        marker = registry_probe_ephemeral.__qualname__
        assert any(marker in name for name in observer_registry())
        del registry_probe_ephemeral
        gc.collect()
        assert not any(marker in name for name in observer_registry())

    def test_production_observers_are_registered_on_import(self):
        from repro.gnutella import probes  # noqa: F401  (import registers)
        from repro.sim.events import observer_registry

        names = observer_registry()
        assert any("consistency" in n or "probe" in n.lower() for n in names)
