"""Tests for measurement utilities."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Counter, HourlyBuckets, TimeSeries, WelfordStats


class TestCounter:
    def test_increment_and_reset(self):
        c = Counter("hits")
        c.increment()
        c.increment(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").increment(-1)

    def test_negative_increment_leaves_value_untouched(self):
        c = Counter("x")
        c.increment(3)
        with pytest.raises(ValueError):
            c.increment(-5)
        assert c.value == 3

    def test_zero_increment_is_a_noop(self):
        c = Counter("x")
        c.increment(0)
        assert c.value == 0


class TestWelfordStats:
    def test_empty_stats_are_nan(self):
        s = WelfordStats()
        assert math.isnan(s.mean)
        assert math.isnan(s.variance)
        assert math.isnan(s.std)
        assert s.count == 0

    def test_single_sample(self):
        s = WelfordStats()
        s.add(3.0)
        assert s.mean == 3.0
        assert math.isnan(s.variance)
        assert s.min == s.max == 3.0

    def test_single_sample_std_is_nan_until_second_sample(self):
        s = WelfordStats()
        s.add(3.0)
        assert math.isnan(s.std)
        s.add(5.0)
        assert s.variance == pytest.approx(2.0)  # ((3-4)^2 + (5-4)^2) / 1
        assert s.std == pytest.approx(math.sqrt(2.0))

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(10.0, 2.0, size=500)
        s = WelfordStats()
        for x in xs:
            s.add(float(x))
        assert s.mean == pytest.approx(xs.mean(), rel=1e-12)
        assert s.variance == pytest.approx(xs.var(ddof=1), rel=1e-10)
        assert s.min == xs.min()
        assert s.max == xs.max()

    def test_merge_equals_sequential(self):
        rng = np.random.default_rng(1)
        xs = rng.random(100)
        a, b, total = WelfordStats(), WelfordStats(), WelfordStats()
        for x in xs[:37]:
            a.add(float(x))
        for x in xs[37:]:
            b.add(float(x))
        for x in xs:
            total.add(float(x))
        a.merge(b)
        assert a.count == total.count
        assert a.mean == pytest.approx(total.mean, rel=1e-12)
        assert a.variance == pytest.approx(total.variance, rel=1e-9)

    def test_merge_with_empty(self):
        a = WelfordStats()
        a.add(1.0)
        a.merge(WelfordStats())
        assert a.count == 1
        b = WelfordStats()
        b.merge(a)
        assert b.count == 1 and b.mean == 1.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_property_mean_within_bounds(self, xs):
        s = WelfordStats()
        for x in xs:
            s.add(x)
        assert s.min <= s.mean <= s.max
        assert s.variance >= -1e-9


class TestTimeSeries:
    def test_record_and_arrays(self):
        ts = TimeSeries("delay")
        ts.record(0.0, 1.0)
        ts.record(1.5, 2.0)
        times, values = ts.as_arrays()
        np.testing.assert_array_equal(times, [0.0, 1.5])
        np.testing.assert_array_equal(values, [1.0, 2.0])
        assert len(ts) == 2

    def test_time_must_not_go_backwards(self):
        ts = TimeSeries("x")
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_equal_times_allowed(self):
        ts = TimeSeries("x")
        ts.record(5.0, 1.0)
        ts.record(5.0, 2.0)
        assert len(ts) == 2


class TestHourlyBuckets:
    def test_basic_bucketing(self):
        hb = HourlyBuckets(horizon=3 * 3600.0)
        hb.add(10.0)
        hb.add(3599.9)
        hb.add(3600.0)
        hb.add(2 * 3600.0 + 1, amount=5)
        np.testing.assert_array_equal(hb.counts, [2, 1, 5])

    def test_exact_hour_boundaries_open_the_next_bucket(self):
        # t = k * width belongs to bucket k, not k-1 (half-open intervals).
        hb = HourlyBuckets(horizon=4 * 3600.0)
        for k in range(4):
            hb.add(k * 3600.0)
        np.testing.assert_array_equal(hb.counts, [1, 1, 1, 1])

    def test_far_beyond_horizon_folds_into_last_bucket(self):
        hb = HourlyBuckets(horizon=2 * 3600.0)
        hb.add(50 * 3600.0)
        np.testing.assert_array_equal(hb.counts, [0, 1])

    def test_event_at_horizon_folds_into_last_bucket(self):
        hb = HourlyBuckets(horizon=2 * 3600.0)
        hb.add(2 * 3600.0)
        np.testing.assert_array_equal(hb.counts, [0, 1])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            HourlyBuckets(horizon=3600.0).add(-1.0)

    def test_series_skip_warmup(self):
        hb = HourlyBuckets(horizon=4 * 3600.0)
        for h in range(4):
            hb.add(h * 3600.0 + 1, amount=h + 1)
        idx, counts = hb.series(skip=2)
        np.testing.assert_array_equal(idx, [2, 3])
        np.testing.assert_array_equal(counts, [3, 4])

    def test_series_invalid_skip(self):
        hb = HourlyBuckets(horizon=3600.0)
        with pytest.raises(ValueError):
            hb.series(skip=5)

    def test_total(self):
        hb = HourlyBuckets(horizon=3 * 3600.0)
        hb.add(0.0, 2)
        hb.add(3700.0, 3)
        assert hb.total() == 5
        assert hb.total(skip=1) == 3

    def test_custom_width(self):
        hb = HourlyBuckets(horizon=10.0, width=2.5)
        assert hb.n_buckets == 4
        np.testing.assert_array_equal(hb.bucket_starts(), [0.0, 2.5, 5.0, 7.5])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HourlyBuckets(horizon=0)
        with pytest.raises(ValueError):
            HourlyBuckets(horizon=10, width=0)
