"""Tests for Store and Resource queueing primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Resource, Simulator, Store, Timeout


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        def producer():
            yield Timeout(sim, 2.0)
            yield store.put("apple")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(2.0, "apple")]

    def test_fifo_ordering_of_items(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2]

    def test_fifo_ordering_of_getters(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(name):
            item = yield store.get()
            got.append((name, item))

        sim.process(consumer("first"))
        sim.process(consumer("second"))

        def producer():
            yield Timeout(sim, 1.0)
            yield store.put("x")
            yield store.put("y")

        sim.process(producer())
        sim.run()
        assert got == [("first", "x"), ("second", "y")]

    def test_capacity_blocks_put(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        log = []

        def producer():
            yield store.put("a")
            log.append(("put-a", sim.now))
            yield store.put("b")
            log.append(("put-b", sim.now))

        def consumer():
            yield Timeout(sim, 5.0)
            item = yield store.get()
            log.append(("got", item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert log == [("put-a", 0.0), ("got", "a", 5.0), ("put-b", 5.0)]

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Store(Simulator(), capacity=0)

    def test_len_and_items_snapshot(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        sim.run()
        assert len(store) == 2
        assert store.items == (1, 2)


class TestResource:
    def test_capacity_one_serializes_holders(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []

        def worker(name, hold):
            yield res.request()
            log.append((name, "acquired", sim.now))
            yield Timeout(sim, hold)
            res.release()

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 1.0))
        sim.run()
        assert log == [("a", "acquired", 0.0), ("b", "acquired", 2.0)]

    def test_capacity_two_allows_parallel(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        log = []

        def worker(name):
            yield res.request()
            log.append((name, sim.now))
            yield Timeout(sim, 1.0)
            res.release()

        for name in "abc":
            sim.process(worker(name))
        sim.run()
        assert log == [("a", 0.0), ("b", 0.0), ("c", 1.0)]

    def test_release_without_request_rejected(self):
        with pytest.raises(SimulationError):
            Resource(Simulator()).release()

    def test_invalid_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)

    def test_counters(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.request()
        res.request()
        sim.run()
        assert res.in_use == 1
        assert res.queued == 1
