"""Property tests for the measurement accumulators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import HourlyBuckets, WelfordStats


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=9999.0),
            st.integers(min_value=0, max_value=50),
        ),
        max_size=60,
    )
)
def test_buckets_conserve_totals(events):
    hb = HourlyBuckets(horizon=10_000.0, width=250.0)
    for time, amount in events:
        hb.add(time, amount)
    assert hb.counts.sum() == sum(a for _, a in events)
    assert hb.total() == sum(a for _, a in events)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=9999.0),
        min_size=1,
        max_size=60,
    ),
    st.integers(min_value=0, max_value=39),
)
def test_buckets_skip_partition(times, skip):
    hb = HourlyBuckets(horizon=10_000.0, width=250.0)
    for t in times:
        hb.add(t)
    # skip + kept always partitions the total.
    _, kept = hb.series(skip=skip)
    assert kept.sum() + hb.counts[:skip].sum() == len(times)


@given(
    st.lists(st.floats(min_value=-1e5, max_value=1e5), min_size=1, max_size=80),
    st.integers(min_value=1, max_value=79),
)
@settings(max_examples=40)
def test_welford_merge_order_irrelevant(xs, split):
    split = min(split, len(xs))
    left, right = WelfordStats(), WelfordStats()
    for x in xs[:split]:
        left.add(x)
    for x in xs[split:]:
        right.add(x)
    forward = WelfordStats()
    forward.merge(left)
    forward.merge(right)
    backward = WelfordStats()
    backward.merge(right)
    backward.merge(left)
    assert forward.count == backward.count == len(xs)
    assert np.isclose(forward.mean, backward.mean, rtol=1e-9, atol=1e-9)
    assert forward.min == backward.min
    assert forward.max == backward.max
