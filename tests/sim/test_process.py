"""Tests for generator-based processes."""

import pytest

from repro.errors import ProcessError
from repro.sim import Simulator, Timeout
from repro.sim.process import Interrupt


class TestBasics:
    def test_process_runs_and_waits_on_timeouts(self):
        sim = Simulator()
        log = []

        def body():
            log.append(("start", sim.now))
            yield Timeout(sim, 2.0)
            log.append(("mid", sim.now))
            yield Timeout(sim, 3.0)
            log.append(("end", sim.now))

        sim.process(body())
        sim.run()
        assert log == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]

    def test_timeout_payload_is_sent_back(self):
        sim = Simulator()
        got = []

        def body():
            value = yield Timeout(sim, 1.0, value="hello")
            got.append(value)

        sim.process(body())
        sim.run()
        assert got == ["hello"]

    def test_return_value_becomes_event_payload(self):
        sim = Simulator()
        got = []

        def child():
            yield Timeout(sim, 1.0)
            return 42

        def parent():
            result = yield sim.process(child())
            got.append((sim.now, result))

        sim.process(parent())
        sim.run()
        assert got == [(1.0, 42)]

    def test_requires_generator(self):
        sim = Simulator()
        with pytest.raises(ProcessError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_alive_flag(self):
        sim = Simulator()

        def body():
            yield Timeout(sim, 1.0)

        proc = sim.process(body())
        assert proc.alive
        sim.run()
        assert not proc.alive
        assert proc.triggered and proc.ok


class TestFailure:
    def test_exception_fails_the_process_event(self):
        sim = Simulator()

        def body():
            yield Timeout(sim, 1.0)
            raise ValueError("boom")

        proc = sim.process(body())
        sim.run()
        assert proc.triggered and not proc.ok
        assert isinstance(proc.value, ValueError)

    def test_waiting_on_failed_event_raises_inside_process(self):
        sim = Simulator()
        caught = []

        def body():
            ev = sim.event()
            sim.schedule(1.0, ev.fail, RuntimeError("bad"))
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(body())
        sim.run()
        assert caught == ["bad"]

    def test_yielding_non_waitable_raises_in_process(self):
        sim = Simulator()
        caught = []

        def body():
            try:
                yield "not an event"
            except ProcessError as exc:
                caught.append(str(exc))

        sim.process(body())
        sim.run()
        assert len(caught) == 1
        assert "non-waitable" in caught[0]

    def test_process_cannot_wait_on_itself(self):
        sim = Simulator()
        caught = []
        holder = {}

        def body():
            try:
                yield holder["proc"]
            except ProcessError:
                caught.append(True)

        holder["proc"] = sim.process(body())
        sim.run()
        assert caught == [True]


class TestInterrupt:
    def test_interrupt_reaches_body(self):
        sim = Simulator()
        log = []

        def body():
            try:
                yield Timeout(sim, 100.0)
            except Interrupt as i:
                log.append((sim.now, i.cause))

        proc = sim.process(body())
        sim.schedule(3.0, proc.interrupt, "cancelled")
        sim.run()
        assert log == [(3.0, "cancelled")]

    def test_interrupt_finished_process_rejected(self):
        sim = Simulator()

        def body():
            yield Timeout(sim, 1.0)

        proc = sim.process(body())
        sim.run()
        with pytest.raises(ProcessError):
            proc.interrupt()


class TestComposition:
    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def ticker(name, period):
            for _ in range(3):
                yield Timeout(sim, period)
                log.append((name, sim.now))

        sim.process(ticker("fast", 1.0))
        sim.process(ticker("slow", 2.5))
        sim.run()
        assert log == [
            ("fast", 1.0),
            ("fast", 2.0),
            ("slow", 2.5),
            ("fast", 3.0),
            ("slow", 5.0),
            ("slow", 7.5),
        ]

    def test_process_waits_on_all_of(self):
        sim = Simulator()
        got = []

        def body():
            values = yield sim.all_of([sim.timeout(1.0, "a"), sim.timeout(2.0, "b")])
            got.append((sim.now, values))

        sim.process(body())
        sim.run()
        assert got == [(2.0, ["a", "b"])]
