"""Tests for the discrete-event kernel: scheduling, ordering, run loop."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchedulingError, SimulationError
from repro.sim import Simulator
from repro.sim.events import HIGH, LOW


class TestScheduling:
    def test_callbacks_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "mid")
        sim.run()
        assert fired == ["early", "mid", "late"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(2.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_priority_overrides_fifo_at_same_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "normal")
        sim.schedule(1.0, fired.append, "high", priority=HIGH)
        sim.schedule(1.0, fired.append, "low", priority=LOW)
        sim.run()
        assert fired == ["high", "normal", "low"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_at_absolute(self):
        sim = Simulator(start_time=10.0)
        seen = []
        sim.schedule_at(12.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(-1.0, lambda: None)

    def test_nan_and_inf_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(float("nan"), lambda: None)
        with pytest.raises(SchedulingError):
            sim.schedule(float("inf"), lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SchedulingError):
            sim.schedule_at(4.0, lambda: None)

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            fired.append(("inner", sim.now))

        sim.schedule(2.0, outer)
        sim.run()
        assert fired == [("outer", 2.0), ("inner", 3.0)]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_events_executed_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None).cancel()
        sim.run()
        assert sim.events_executed == 1


class TestRunLoop:
    def test_run_until_stops_clock_at_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0
        # Remaining event still runs on a later resume.
        sim.run()
        assert fired == ["a", "b"]

    def test_run_until_past_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SchedulingError):
            sim.run(until=1.0)

    def test_run_with_only_cancelled_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None).cancel()
        sim.run()
        assert sim.events_executed == 0

    def test_stop_halts_loop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, sim.stop)
        sim.schedule(3.0, fired.append, "b")
        sim.run()
        assert fired == ["a"]
        assert sim.now == 2.0

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1

    def test_step_empty_queue_raises(self):
        with pytest.raises(SchedulingError):
            Simulator().step()

    def test_step_executes_exactly_one(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step() == 1.0
        assert fired == [1]

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
    def test_property_execution_order_is_sorted(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestEvents:
    def test_timeout_event_payload(self):
        sim = Simulator()
        got = []
        ev = sim.timeout(2.0, value="payload")
        ev.add_callback(lambda e: got.append((sim.now, e.value)))
        sim.run()
        assert got == [(2.0, "payload")]

    def test_event_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SchedulingError):
            ev.succeed()

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")  # type: ignore[arg-type]

    def test_late_callback_still_runs(self):
        sim = Simulator()
        got = []
        ev = sim.timeout(1.0, value=5)
        sim.run()
        ev.add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == [5]

    def test_all_of_collects_in_order(self):
        sim = Simulator()
        got = []
        evs = [sim.timeout(3.0, "c"), sim.timeout(1.0, "a"), sim.timeout(2.0, "b")]
        sim.all_of(evs).add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == [["c", "a", "b"]]

    def test_all_of_empty(self):
        sim = Simulator()
        got = []
        sim.all_of([]).add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == [[]]

    def test_any_of_first_wins(self):
        sim = Simulator()
        got = []
        evs = [sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")]
        sim.any_of(evs).add_callback(lambda e: got.append((sim.now, e.value)))
        sim.run()
        assert got == [(1.0, "fast")]

    def test_any_of_empty_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().any_of([])

    def test_all_of_propagates_failure(self):
        sim = Simulator()
        got = []
        ok = sim.timeout(1.0)
        bad = sim.event()
        sim.schedule(0.5, bad.fail, RuntimeError("boom"))
        combined = sim.all_of([ok, bad])
        combined.add_callback(lambda e: got.append(e.ok))
        sim.run()
        assert got == [False]
        assert isinstance(combined.value, RuntimeError)
