"""Server robustness: overload, disconnect cancellation, graceful drain.

These are the satellite-task guarantees: a full admission queue answers a
typed ``overload`` error instead of hanging, a client that disconnects
mid-stream has its queued query cancelled (never executed), and shutdown
drains in-flight requests before closing. The worker gate
(``QueryServer.processing``) makes each scenario deterministic: clearing
it holds the admission queue still while the test arranges the race.
"""

import asyncio

import pytest

from repro.gnutella.config import GnutellaConfig
from repro.serve.loadgen import ServeClient
from repro.serve.protocol import encode_line
from repro.serve.server import QueryServer, ServeConfig


def _config(**overrides) -> GnutellaConfig:
    base = dict(
        n_users=30,
        n_items=1000,
        horizon=12 * 3600.0,
        warmup_hours=0,
        dynamic=True,
    )
    base.update(overrides)
    return GnutellaConfig(**base)


def _serve_config(**overrides) -> ServeConfig:
    base = dict(time_rate=0.0, warmup_sim_s=1800.0, drain_timeout_s=5.0)
    base.update(overrides)
    return ServeConfig(**base)


async def _poll(predicate, timeout_s: float = 5.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout_s
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.005)


class TestBasicServing:
    def test_query_roundtrip_ranked_results(self):
        async def scenario():
            server = QueryServer(_config(), _serve_config())
            host, port = await server.start()
            client = await ServeClient.connect(host, port)
            try:
                # Query enough popular items that at least one hits.
                hits = 0
                for item in range(40):
                    reply = await client.query(item)
                    assert reply.status == "ok"
                    assert reply.done["item"] == item
                    assert reply.done["results"] == len(reply.results)
                    delays = [r["delay_ms"] for r in reply.results]
                    assert delays == sorted(delays)
                    ranks = [r["rank"] for r in reply.results]
                    assert ranks == list(range(len(reply.results)))
                    hits += bool(reply.results)
                assert hits > 0, "no query hit anything; world too cold"
                assert server.counts.ok == 40
            finally:
                await client.close()
                await server.shutdown()

        asyncio.run(scenario())

    def test_info_ping_stats(self):
        async def scenario():
            server = QueryServer(_config(), _serve_config())
            host, port = await server.start()
            client = await ServeClient.connect(host, port)
            try:
                info = await client.info()
                assert info["n_users"] == 30
                assert info["n_items"] == 1000
                assert info["online"] > 0
                assert info["sim_time"] == 1800.0
                pong = await client.ping()
                assert pong["type"] == "pong"
                await client.query(3)
                stats = await client.stats()
                assert stats["counts"]["ok"] == 1
                snapshot = stats["metrics"]
                assert snapshot["serve.requests"]["values"]["status=ok"] == 1.0
            finally:
                await client.close()
                await server.shutdown()

        asyncio.run(scenario())

    def test_bad_request_keeps_connection_usable(self):
        async def scenario():
            server = QueryServer(_config(), _serve_config())
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b"this is not json\n")
                writer.write(encode_line({"op": "query", "id": 1, "item": 99999}))
                writer.write(encode_line({"op": "ping", "id": 2}))
                await writer.drain()
                lines = [await reader.readline() for _ in range(3)]
                import json

                first, second, third = (json.loads(line) for line in lines)
                assert first["type"] == "error" and first["error"] == "bad_request"
                assert second["error"] == "bad_request"  # item out of range
                assert third["type"] == "pong"
                assert server.counts.bad_request == 2
            finally:
                writer.close()
                await server.shutdown()

        asyncio.run(scenario())

    def test_offline_node_is_a_typed_error(self):
        async def scenario():
            server = QueryServer(_config(), _serve_config())
            host, port = await server.start()
            offline = next(
                int(p.node) for p in server.engine.peers if not p.online
            )
            client = await ServeClient.connect(host, port)
            try:
                reply = await client.query(1, node=offline)
                assert reply.status == "node_offline"
                assert server.counts.node_offline == 1
            finally:
                await client.close()
                await server.shutdown()

        asyncio.run(scenario())

    def test_detailed_engine_rejected(self):
        with pytest.raises(ValueError):
            QueryServer(_config(), _serve_config(), engine="detailed")


class TestOverload:
    def test_full_queue_returns_typed_overload_not_a_hang(self):
        async def scenario():
            server = QueryServer(_config(), _serve_config(max_queue=4))
            host, port = await server.start()
            server.processing.clear()  # hold the worker still
            client = await ServeClient.connect(host, port)
            try:
                # Capacity while stalled is at most queue (4) + one request
                # in the worker's hand: six sends must overflow.
                pending = [
                    asyncio.create_task(client.query(i)) for i in range(6)
                ]
                # The typed error arrives while the worker is stalled —
                # admission control answers immediately, it does not hang.
                await asyncio.wait_for(
                    _poll(lambda: server.counts.overload >= 1), timeout=2.0
                )
                assert server.counts.ok == 0
                server.processing.set()
                replies = await asyncio.gather(*pending)
                statuses = [r.status for r in replies]
                assert "overload" in statuses
                assert statuses.count("ok") >= 4
                assert statuses.count("ok") + statuses.count("overload") == 6
                assert server.counts.overload == statuses.count("overload")
            finally:
                await client.close()
                await server.shutdown()

        asyncio.run(scenario())


class TestDisconnectCancellation:
    def test_disconnect_mid_stream_cancels_queued_query(self):
        async def scenario():
            server = QueryServer(_config(), _serve_config())
            host, port = await server.start()
            server.processing.clear()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_line({"op": "query", "id": 1, "item": 3}))
            await writer.drain()
            await _poll(lambda: server.counts.admitted >= 1)
            # Abrupt client departure while the query is still queued.
            writer.close()
            await writer.wait_closed()
            await _poll(lambda: not any(c.alive for c in server._state.connections))
            ok_before = server.counts.ok
            server.processing.set()
            await _poll(lambda: server.counts.cancelled == 1)
            assert server.counts.ok == ok_before  # never executed
            await server.shutdown()

        asyncio.run(scenario())


class TestGracefulDrain:
    def test_shutdown_drains_in_flight_requests(self):
        async def scenario():
            server = QueryServer(_config(), _serve_config(max_queue=64))
            host, port = await server.start()
            server.processing.clear()
            client = await ServeClient.connect(host, port)
            pending = [asyncio.create_task(client.query(i)) for i in range(8)]
            await _poll(lambda: server.counts.admitted >= 8)
            shutdown = asyncio.create_task(server.shutdown())
            await asyncio.sleep(0.02)
            # Drain mode: already-queued work completes...
            server.processing.set()
            replies = await asyncio.gather(*pending)
            assert [r.status for r in replies] == ["ok"] * 8
            await asyncio.wait_for(shutdown, timeout=10.0)
            assert server.counts.ok == 8
            await client.close()

        asyncio.run(scenario())

    def test_new_queries_rejected_while_draining(self):
        async def scenario():
            server = QueryServer(_config(), _serve_config())
            host, port = await server.start()
            client = await ServeClient.connect(host, port)
            server.processing.clear()
            first = asyncio.create_task(client.query(1))
            await _poll(lambda: server.counts.admitted >= 1)
            shutdown = asyncio.create_task(server.shutdown())
            await asyncio.sleep(0.02)
            reply = await asyncio.wait_for(client.query(2), timeout=2.0)
            assert reply.status == "shutting_down"
            server.processing.set()
            assert (await first).status == "ok"
            await asyncio.wait_for(shutdown, timeout=10.0)
            await client.close()

        asyncio.run(scenario())


class TestDeadlines:
    def test_expired_deadline_answers_timeout(self):
        async def scenario():
            server = QueryServer(_config(), _serve_config())
            host, port = await server.start()
            server.processing.clear()
            client = await ServeClient.connect(host, port)
            try:
                task = asyncio.create_task(client.query(1, timeout_ms=30))
                await asyncio.sleep(0.1)  # let the deadline lapse in queue
                server.processing.set()
                reply = await task
                assert reply.status == "timeout"
                assert server.counts.timeout == 1
                assert server.counts.ok == 0
            finally:
                await client.close()
                await server.shutdown()

        asyncio.run(scenario())


class TestWorldAdvancement:
    def test_paced_server_advances_simulated_time(self):
        async def scenario():
            server = QueryServer(
                _config(),
                _serve_config(time_rate=36000.0, pacer_interval_s=0.01),
            )
            host, port = await server.start()
            client = await ServeClient.connect(host, port)
            try:
                start = (await client.info())["sim_time"]
                await asyncio.sleep(0.1)
                end = (await client.info())["sim_time"]
                assert end > start
            finally:
                await client.close()
                await server.shutdown()

        asyncio.run(scenario())

    def test_frozen_server_keeps_simulated_time_still(self):
        async def scenario():
            server = QueryServer(_config(), _serve_config(time_rate=0.0))
            host, port = await server.start()
            client = await ServeClient.connect(host, port)
            try:
                start = (await client.info())["sim_time"]
                await client.query(1)
                await asyncio.sleep(0.05)
                assert (await client.info())["sim_time"] == start
            finally:
                await client.close()
                await server.shutdown()

        asyncio.run(scenario())
