"""The serve telemetry plane: metrics op, rolling stats, queue-depth
freshness, and access-log integration."""

import asyncio
import json

from repro.gnutella.config import GnutellaConfig
from repro.obs.telemetry.accesslog import ACCESS_LOG_SCHEMA
from repro.obs.telemetry.exposition import CONTENT_TYPE, parse_prometheus
from repro.serve.loadgen import ServeClient
from repro.serve.server import QueryServer, ServeConfig


def _config(**overrides) -> GnutellaConfig:
    base = dict(
        n_users=30,
        n_items=1000,
        horizon=12 * 3600.0,
        warmup_hours=0,
        dynamic=True,
    )
    base.update(overrides)
    return GnutellaConfig(**base)


def _serve_config(**overrides) -> ServeConfig:
    base = dict(time_rate=0.0, warmup_sim_s=1800.0, drain_timeout_s=5.0)
    base.update(overrides)
    return ServeConfig(**base)


async def _poll(predicate, timeout_s: float = 5.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout_s
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.005)


class TestMetricsOp:
    def test_scrape_is_parseable_and_announces_content_type(self):
        async def scenario():
            server = QueryServer(_config(), _serve_config())
            host, port = await server.start()
            client = await ServeClient.connect(host, port)
            try:
                for item in range(5):
                    await client.query(item)
                reply = await client.metrics()
                assert reply["type"] == "metrics"
                assert reply["content_type"] == CONTENT_TYPE
                parsed = parse_prometheus(reply["text"])
                totals = [
                    v
                    for labels, v in parsed["serve_requests"]["samples"]
                    if labels.get("status") == "ok"
                ]
                assert totals == [5.0]
                # Histogram exposition is spec-shaped: +Inf closes the
                # buckets and sum/count are present.
                by_le = {
                    labels["le"]: v
                    for labels, v in parsed["serve_latency_seconds_bucket"]["samples"]
                }
                assert by_le["+Inf"] == 5.0
                (_, count), = parsed["serve_latency_seconds_count"]["samples"]
                assert count == 5.0
                (_, total_sum), = parsed["serve_latency_seconds_sum"]["samples"]
                assert total_sum > 0.0
            finally:
                await client.close()
                await server.shutdown()

        asyncio.run(scenario())

    def test_request_counters_are_monotonic_across_scrapes(self):
        async def scenario():
            server = QueryServer(_config(), _serve_config())
            host, port = await server.start()
            client = await ServeClient.connect(host, port)
            try:
                await client.query(1)
                first = parse_prometheus((await client.metrics())["text"])
                for item in range(2, 6):
                    await client.query(item)
                second = parse_prometheus((await client.metrics())["text"])

                def totals(parsed):
                    return {
                        tuple(sorted(labels.items())): v
                        for labels, v in parsed["serve_requests"]["samples"]
                    }

                before, after = totals(first), totals(second)
                assert all(after[key] >= value for key, value in before.items())
                assert sum(after.values()) > sum(before.values())
            finally:
                await client.close()
                await server.shutdown()

        asyncio.run(scenario())

    def test_scrape_publishes_rolling_gauges(self):
        async def scenario():
            server = QueryServer(
                _config(), _serve_config(rolling_windows=(10.0, 60.0))
            )
            host, port = await server.start()
            client = await ServeClient.connect(host, port)
            try:
                await client.query(1)
                parsed = parse_prometheus((await client.metrics())["text"])
                windows = {
                    labels["window"]
                    for labels, _ in parsed["serve_rolling_qps"]["samples"]
                }
                assert windows == {"10s", "60s"}
                assert "serve_slo_burn_rate" in parsed
                assert "serve_rolling_latency_seconds" in parsed
            finally:
                await client.close()
                await server.shutdown()

        asyncio.run(scenario())


class TestStatsRollingBlock:
    def test_stats_carries_slo_windows(self):
        async def scenario():
            server = QueryServer(
                _config(),
                _serve_config(
                    rolling_windows=(10.0,),
                    slo_latency_ms=250.0,
                    slo_error_budget=0.05,
                ),
            )
            host, port = await server.start()
            client = await ServeClient.connect(host, port)
            try:
                await client.query(1)
                rolling = (await client.stats())["rolling"]
                assert rolling["slo_latency_s"] == 0.25
                assert rolling["slo_error_budget"] == 0.05
                window = rolling["windows"]["10s"]
                assert window["requests"] >= 1.0
                assert window["burn_rate"] == 0.0
            finally:
                await client.close()
                await server.shutdown()

        asyncio.run(scenario())


class TestQueueDepthFreshness:
    def test_gauge_tracks_admission_and_drain(self):
        async def scenario():
            server = QueryServer(_config(), _serve_config(max_queue=64))
            host, port = await server.start()
            gauge = server.registry.gauge("serve.queue_depth")
            server.processing.clear()
            client = await ServeClient.connect(host, port)
            pending = [asyncio.create_task(client.query(i)) for i in range(6)]
            await _poll(lambda: server.counts.admitted >= 6)
            # Stalled worker: admissions alone must move the gauge.
            assert gauge.get() >= 5.0
            server.processing.set()
            await asyncio.gather(*pending)
            # Every dequeue refreshes it; after the last one it reads empty
            # without any scrape in between.
            await _poll(lambda: gauge.get() == 0.0)
            await client.close()
            await server.shutdown()
            assert gauge.get() == 0.0

        asyncio.run(scenario())

    def test_gauge_not_stale_after_disconnect_cancellation(self):
        from repro.serve.protocol import encode_line

        async def scenario():
            server = QueryServer(_config(), _serve_config())
            host, port = await server.start()
            gauge = server.registry.gauge("serve.queue_depth")
            server.processing.clear()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_line({"op": "query", "id": 1, "item": 3}))
            await writer.drain()
            await _poll(lambda: server.counts.admitted >= 1)
            assert gauge.get() >= 1.0
            writer.close()
            await writer.wait_closed()
            await _poll(
                lambda: not any(c.alive for c in server._state.connections)
            )
            server.processing.set()
            await _poll(lambda: server.counts.cancelled == 1)
            # The cancelled entry left the queue and the gauge noticed.
            await _poll(lambda: gauge.get() == 0.0)
            await server.shutdown()

        asyncio.run(scenario())


class TestAccessLog:
    def test_lines_match_served_requests(self, tmp_path):
        log_path = tmp_path / "access.jsonl"

        async def scenario():
            server = QueryServer(
                _config(), _serve_config(access_log=str(log_path))
            )
            host, port = await server.start()
            client = await ServeClient.connect(host, port)
            try:
                replies = [await client.query(item) for item in range(4)]
            finally:
                await client.close()
                await server.shutdown()
            return replies

        replies = asyncio.run(scenario())
        lines = [json.loads(line) for line in log_path.read_text().splitlines()]
        assert len(lines) == 4
        by_trace = {line["trace_id"]: line for line in lines}
        for reply in replies:
            line = by_trace[reply.done["trace_id"]]
            assert line["schema"] == ACCESS_LOG_SCHEMA
            assert line["op"] == "query"
            assert line["outcome"] == "ok"
            assert line["item"] == reply.done["item"]
            assert line["queue_wait_s"] >= 0.0
            assert line["service_s"] >= 0.0

    def test_sampling_reduces_lines_deterministically(self, tmp_path):
        log_path = tmp_path / "sampled.jsonl"

        async def scenario():
            server = QueryServer(
                _config(),
                _serve_config(access_log=str(log_path), access_log_sample=0.5),
            )
            host, port = await server.start()
            client = await ServeClient.connect(host, port)
            try:
                for item in range(40):
                    await client.query(item)
                written = server.access_log.written
                seen = server.access_log.seen
            finally:
                await client.close()
                await server.shutdown()
            return written, seen

        written, seen = asyncio.run(scenario())
        assert seen == 40
        assert 0 < written < 40
        assert len(log_path.read_text().splitlines()) == written
