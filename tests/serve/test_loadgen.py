"""Load generator: statistics, query mix, and both loop modes end to end."""

import asyncio
import json

import numpy as np
import pytest

from repro.gnutella.config import GnutellaConfig
from repro.serve.loadgen import (
    KNEE_ACHIEVED_FRACTION,
    REPORT_SCHEMA,
    SWEEP_SCHEMA,
    LatencySummary,
    LoadgenConfig,
    LoadReport,
    ZipfQueryMix,
    percentile,
    run_closed_loop,
    run_open_loop,
    saturation_sweep,
)
from repro.serve.server import QueryServer, ServeConfig


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_sample(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.999) == 7.0

    def test_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]  # 1..100
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 0.95) == 95.0
        assert percentile(samples, 0.99) == 99.0
        assert percentile(samples, 1.0) == 100.0

    def test_monotone_in_q(self):
        rng = np.random.default_rng(0)
        samples = sorted(rng.exponential(1.0, size=500).tolist())
        values = [percentile(samples, q) for q in (0.5, 0.9, 0.95, 0.99, 0.999)]
        assert values == sorted(values)


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary.from_samples([])
        assert summary.p50_ms == 0.0
        assert summary.max_ms == 0.0

    def test_converts_to_milliseconds(self):
        summary = LatencySummary.from_samples([0.001, 0.002, 0.100])
        assert summary.p50_ms == pytest.approx(2.0)
        assert summary.max_ms == pytest.approx(100.0)
        assert summary.mean_ms == pytest.approx(1000.0 * (0.103 / 3))

    def test_tail_ordering(self):
        rng = np.random.default_rng(1)
        summary = LatencySummary.from_samples(rng.lognormal(-5, 1, 2000).tolist())
        assert summary.p50_ms <= summary.p95_ms <= summary.p99_ms
        assert summary.p99_ms <= summary.p999_ms <= summary.max_ms

    def test_as_dict_keys(self):
        keys = set(LatencySummary.from_samples([0.01]).as_dict())
        assert keys == {"p50_ms", "p95_ms", "p99_ms", "p999_ms", "mean_ms", "max_ms"}


class TestZipfQueryMix:
    def test_items_stay_in_range(self):
        mix = ZipfQueryMix(n_items=1000, n_categories=20, theta=0.8, seed=3)
        draws = [mix.next_item() for _ in range(2000)]
        assert min(draws) >= 0
        assert max(draws) < 1000

    def test_deterministic_per_seed(self):
        a = ZipfQueryMix(500, 10, 0.7, seed=5)
        b = ZipfQueryMix(500, 10, 0.7, seed=5)
        assert [a.next_item() for _ in range(50)] == [b.next_item() for _ in range(50)]

    def test_skew_prefers_low_ranks(self):
        mix = ZipfQueryMix(n_items=1000, n_categories=10, theta=0.95, seed=0)
        ranks = [mix.next_item() % 100 for _ in range(5000)]
        top = sum(1 for r in ranks if r < 10)
        assert top / len(ranks) > 0.2  # far above the uniform 10%

    def test_rejects_empty_catalog(self):
        with pytest.raises(ValueError):
            ZipfQueryMix(0, 10, 0.8, seed=0)


def _world() -> GnutellaConfig:
    return GnutellaConfig(
        n_users=40,
        n_items=2000,
        horizon=24 * 3600.0,
        warmup_hours=0,
        dynamic=True,
    )


async def _server() -> tuple[QueryServer, str, int]:
    server = QueryServer(
        _world(), ServeConfig(time_rate=0.0, warmup_sim_s=2 * 3600.0)
    )
    host, port = await server.start()
    return server, host, port


class TestClosedLoop:
    def test_reports_throughput_and_tail(self):
        async def scenario():
            server, host, port = await _server()
            try:
                report = await run_closed_loop(
                    LoadgenConfig(host=host, port=port, connections=2, duration_s=0.5)
                )
            finally:
                await server.shutdown()
            assert report.mode == "closed"
            assert report.offered_qps is None
            assert report.requests > 0
            assert report.ok == report.requests
            assert report.error_count == 0
            assert report.achieved_qps > 0
            assert report.latency.p50_ms > 0
            assert report.latency.p50_ms <= report.latency.p95_ms <= report.latency.p99_ms
            assert 0.0 <= report.hit_fraction <= 1.0
            payload = report.as_dict()
            assert payload["schema"] == REPORT_SCHEMA
            json.dumps(payload)  # JSON-clean
            return report

        asyncio.run(scenario())


class TestOpenLoop:
    def test_achieves_offered_rate_when_healthy(self):
        async def scenario():
            server, host, port = await _server()
            try:
                report = await run_open_loop(
                    LoadgenConfig(
                        host=host, port=port, connections=2, duration_s=0.5, qps=200.0
                    )
                )
            finally:
                await server.shutdown()
            assert report.mode == "open"
            assert report.offered_qps == 200.0
            assert report.requests == 100  # exactly qps * duration arrivals
            assert report.dropped == 0
            assert report.achieved_qps >= KNEE_ACHIEVED_FRACTION * 200.0
            assert report.error_count == 0

        asyncio.run(scenario())

    def test_rejects_nonpositive_qps(self):
        with pytest.raises(ValueError):
            asyncio.run(run_open_loop(LoadgenConfig(qps=0.0)))

    def test_inflight_cap_counts_drops(self):
        async def scenario():
            server, host, port = await _server()
            server.processing.clear()  # stall: every arrival stays in flight
            try:
                report = await run_open_loop(
                    LoadgenConfig(
                        host=host,
                        port=port,
                        connections=1,
                        duration_s=0.2,
                        qps=100.0,
                        max_inflight=4,
                        timeout_ms=200.0,
                    )
                )
            finally:
                server.processing.set()
                await server.shutdown()
            assert report.dropped > 0
            assert report.requests + report.dropped == 20

        asyncio.run(scenario())


class TestSaturationSweep:
    def test_axis_is_monotone_with_knee(self):
        async def scenario():
            server, host, port = await _server()
            try:
                sweep = await saturation_sweep(
                    LoadgenConfig(host=host, port=port, connections=2),
                    start_qps=50.0,
                    factor=2.0,
                    max_steps=3,
                    step_duration_s=0.4,
                )
            finally:
                await server.shutdown()
            axis = [step.offered_qps for step in sweep.steps]
            assert axis == sorted(axis)
            assert len(set(axis)) == len(axis)  # strictly ascending
            if sweep.degraded_at_qps is None:
                assert sweep.knee_qps == axis[-1]
            else:
                assert sweep.degraded_at_qps == axis[-1]
            payload = sweep.as_dict()
            assert payload["schema"] == SWEEP_SCHEMA
            assert payload["offered_qps_axis"] == axis
            json.dumps(payload)

        asyncio.run(scenario())

    def test_degradation_stops_the_sweep(self):
        async def scenario():
            server, host, port = await _server()
            server.processing.clear()  # nothing completes: step one degrades
            try:
                sweep = await saturation_sweep(
                    LoadgenConfig(
                        host=host,
                        port=port,
                        connections=1,
                        max_inflight=8,
                        timeout_ms=150.0,
                    ),
                    start_qps=50.0,
                    max_steps=4,
                    step_duration_s=0.2,
                )
            finally:
                server.processing.set()
                await server.shutdown()
            assert len(sweep.steps) == 1
            assert sweep.knee_qps is None
            assert sweep.degraded_at_qps == 50.0

        asyncio.run(scenario())

    def test_rejects_bad_axis_parameters(self):
        for kwargs in (
            {"start_qps": 0.0},
            {"factor": 1.0},
            {"max_steps": 0},
        ):
            with pytest.raises(ValueError):
                asyncio.run(saturation_sweep(LoadgenConfig(), **kwargs))


class TestReportShape:
    def test_error_count_sums_error_kinds(self):
        report = LoadReport(
            mode="open",
            connections=1,
            duration_s=1.0,
            offered_qps=10.0,
            requests=10,
            ok=7,
            errors={"timeout": 2, "overload": 1},
            dropped=0,
            achieved_qps=7.0,
            latency=LatencySummary.from_samples([0.01]),
            hit_fraction=0.5,
            sim_time_start=0.0,
            sim_time_end=0.0,
        )
        assert report.error_count == 3
        assert report.as_dict()["error_count"] == 3
