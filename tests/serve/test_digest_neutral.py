"""Digest neutrality: serving queries does not perturb the simulated world.

The serving front end interleaves ``engine.advance()`` with
``engine.serve_query()``. Queries execute *outside* the kernel — no RNG
draws, no scheduled events, no library mutation — so the kernel's event
stream must be bit-identical to a plain ``run_simulation`` of the same
config. This is the property that makes the service mode a trustworthy
window onto the reproduction rather than a fork of it.
"""

import asyncio

from repro.gnutella.config import GnutellaConfig
from repro.gnutella.simulation import build_engine
from repro.lint.sanitize import attach_hasher, run_hashed
from repro.serve.loadgen import ServeClient
from repro.serve.server import QueryServer, ServeConfig


def _config() -> GnutellaConfig:
    return GnutellaConfig(
        n_users=40,
        n_items=2000,
        horizon=3 * 3600.0,
        warmup_hours=0,
        dynamic=True,
    )


class TestDigestNeutrality:
    def test_advance_chunking_matches_single_run(self):
        """Chunked advancement alone replays the identical event stream."""
        config = _config()
        _, baseline = run_hashed(config, "fast", sanitize=False)

        eng = build_engine(config, "fast")
        hasher = attach_hasher(eng.sim)
        eng.start()
        for target in (600.0, 1800.0, 3600.0, 7200.0, config.horizon):
            eng.advance(target)
        assert hasher.hexdigest() == baseline

    def test_served_queries_leave_digest_unchanged(self):
        """Interleaving serve_query() between advances changes nothing."""
        config = _config()
        _, baseline = run_hashed(config, "fast", sanitize=False)

        eng = build_engine(config, "fast")
        hasher = attach_hasher(eng.sim)
        eng.start()
        served = 0
        for target in (600.0, 1800.0, 3600.0, 7200.0):
            eng.advance(target)
            for peer in eng.peers:
                if peer.online:
                    eng.serve_query(peer.node, served % config.n_items)
                    served += 1
                    if served % 7 == 0:
                        break
        eng.advance(config.horizon)
        assert served > 0
        assert hasher.hexdigest() == baseline

    def test_query_server_stream_is_digest_neutral(self):
        """The full asyncio server (warmup + live traffic) is neutral too."""
        config = _config()
        _, baseline = run_hashed(config, "fast", sanitize=False)

        async def scenario() -> str:
            server = QueryServer(
                config,
                # Frozen pacer: the test advances the world itself so the
                # interleaving is deterministic, not wall-clock-dependent.
                ServeConfig(time_rate=0.0, warmup_sim_s=1800.0),
            )
            hasher = attach_hasher(server.engine.sim)
            host, port = await server.start()
            client = await ServeClient.connect(host, port)
            try:
                for target in (3600.0, 7200.0, config.horizon):
                    for item in range(25):
                        reply = await client.query(item)
                        assert reply.status == "ok"
                    server.engine.advance(target)
            finally:
                await client.close()
                await server.shutdown()
            return hasher.hexdigest()

        assert asyncio.run(scenario()) == baseline
