"""Simulated-time pacer semantics."""

import time

import pytest

from repro.serve.pacer import SimTimePacer


class TestSimTimePacer:
    def test_target_before_start_raises(self):
        with pytest.raises(RuntimeError):
            SimTimePacer(1.0).target()

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            SimTimePacer(-1.0)

    def test_zero_rate_freezes(self):
        pacer = SimTimePacer(0.0)
        pacer.start(1234.5)
        assert pacer.target() == 1234.5
        time.sleep(0.01)
        assert pacer.target() == 1234.5

    def test_target_advances_at_rate(self):
        pacer = SimTimePacer(1000.0)
        pacer.start(0.0)
        time.sleep(0.02)
        first = pacer.target()
        assert first > 0.0
        time.sleep(0.02)
        assert pacer.target() > first  # monotone

    def test_started_flag(self):
        pacer = SimTimePacer(1.0)
        assert not pacer.started
        pacer.start(0.0)
        assert pacer.started
