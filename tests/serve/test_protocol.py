"""Wire-protocol parsing and validation."""

import pytest

from repro.serve.protocol import (
    ERR_OVERLOAD,
    ERROR_CODES,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    parse_request,
)


class TestEncodeDecode:
    def test_roundtrip(self):
        payload = {"op": "query", "id": 7, "item": 3}
        assert decode_line(encode_line(payload)) == payload

    def test_encode_is_one_newline_terminated_line(self):
        line = encode_line({"op": "ping", "id": 0})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_garbage_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{not json\n")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2]\n")

    def test_invalid_utf8_raises(self):
        with pytest.raises(ProtocolError):
            decode_line(b"\xff\xfe\n")


class TestParseRequest:
    def test_query_full(self):
        request = parse_request(
            b'{"op": "query", "id": 9, "item": 4, "node": 2, "timeout_ms": 50}'
        )
        assert request.op == "query"
        assert request.req_id == 9
        assert request.item == 4
        assert request.node == 2
        assert request.timeout_ms == 50.0

    def test_query_minimal(self):
        request = parse_request(b'{"op": "query", "id": "abc", "item": 0}')
        assert request.node is None
        assert request.timeout_ms is None

    @pytest.mark.parametrize(
        "line",
        [
            b'{"op": "nope", "id": 1}',
            b'{"op": "query", "item": 1}',  # missing id
            b'{"op": "query", "id": 1}',  # missing item
            b'{"op": "query", "id": 1, "item": -1}',
            b'{"op": "query", "id": 1, "item": true}',
            b'{"op": "query", "id": 1, "item": 1, "node": -2}',
            b'{"op": "query", "id": 1, "item": 1, "timeout_ms": 0}',
            b'{"op": "query", "id": 1, "item": 1, "timeout_ms": "fast"}',
        ],
    )
    def test_invalid_requests_raise(self, line):
        with pytest.raises(ProtocolError):
            parse_request(line)

    def test_error_carries_recovered_id(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b'{"op": "bogus", "id": 42}')
        assert excinfo.value.req_id == 42

    def test_non_query_ops_parse(self):
        for op in ("ping", "info", "stats"):
            request = parse_request(encode_line({"op": op, "id": 1}))
            assert request.op == op


class TestErrorResponse:
    def test_shape(self):
        response = error_response(3, ERR_OVERLOAD, "queue full")
        assert response == {
            "id": 3,
            "type": "error",
            "error": "overload",
            "message": "queue full",
        }

    def test_codes_are_a_closed_set(self):
        assert "overload" in ERROR_CODES
        assert "timeout" in ERROR_CODES
        assert len(ERROR_CODES) == 6
