"""Tests for JSON export."""

import json
from dataclasses import dataclass

import numpy as np

from repro.analysis.export import result_to_jsonable, write_json
from repro.gnutella.metrics import SimulationMetrics


@dataclass(frozen=True)
class Inner:
    name: str
    values: tuple[int, ...]


@dataclass(frozen=True)
class Outer:
    inner: Inner
    array: np.ndarray
    scalar: np.float64


class TestJsonable:
    def test_primitives_passthrough(self):
        assert result_to_jsonable(5) == 5
        assert result_to_jsonable("x") == "x"
        assert result_to_jsonable(None) is None
        assert result_to_jsonable(True) is True

    def test_numpy_conversion(self):
        assert result_to_jsonable(np.int64(3)) == 3
        assert result_to_jsonable(np.float32(1.5)) == 1.5
        assert result_to_jsonable(np.array([1, 2])) == [1, 2]

    def test_nested_dataclasses(self):
        obj = Outer(Inner("a", (1, 2)), np.array([3.0]), np.float64(2.5))
        data = result_to_jsonable(obj)
        assert data == {
            "inner": {"name": "a", "values": [1, 2]},
            "array": [3.0],
            "scalar": 2.5,
        }

    def test_metrics_export_via_summary(self):
        metrics = SimulationMetrics(horizon=3600.0)
        metrics.record_query(10.0, True, 5, 2, 0.3)
        data = result_to_jsonable(metrics)
        assert data["total_hits"] == 1.0
        assert data["hit_rate"] == 1.0

    def test_unknown_objects_fall_back_to_repr(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert result_to_jsonable(Weird()) == "<weird>"

    def test_dict_keys_stringified(self):
        assert result_to_jsonable({1: "a"}) == {"1": "a"}


class TestWriteJson:
    def test_roundtrip(self, tmp_path):
        path = write_json({"a": np.array([1, 2])}, tmp_path / "out.json")
        assert json.loads(path.read_text()) == {"a": [1, 2]}

    def test_creates_parent_dirs(self, tmp_path):
        path = write_json([1], tmp_path / "deep" / "dir" / "out.json")
        assert path.exists()

    def test_figure_result_serializes(self, tmp_path):
        from repro.experiments import figure1

        result = figure1.run(preset="smoke", seed=0)
        path = write_json(result, tmp_path / "fig1.json")
        data = json.loads(path.read_text())
        assert data["max_hops"] == 2
        assert len(data["hours"]) == len(data["static_hits"])
        assert data["static"]["metrics"]["total_queries"] > 0
