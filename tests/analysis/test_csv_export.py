"""Tests for CSV series export."""

import pytest

from repro.analysis import write_csv


class TestWriteCsv:
    def test_basic_roundtrip(self, tmp_path):
        path = write_csv(
            {"static": [1, 2, 3], "dynamic": [4, 5, 6]},
            tmp_path / "out.csv",
            index_label="hour",
        )
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "hour,static,dynamic"
        assert lines[1] == "0,1,4"
        assert lines[3] == "2,3,6"

    def test_without_index(self, tmp_path):
        path = write_csv({"x": [1.5, 2.5]}, tmp_path / "out.csv")
        lines = path.read_text().strip().splitlines()
        assert lines == ["x", "1.5", "2.5"]

    def test_unequal_lengths_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv({"a": [1], "b": [1, 2]}, tmp_path / "out.csv")

    def test_no_columns_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv({}, tmp_path / "out.csv")

    def test_creates_parent_dirs(self, tmp_path):
        path = write_csv({"a": [1]}, tmp_path / "deep" / "out.csv")
        assert path.exists()

    def test_figure_series_exports(self, tmp_path):
        from repro.experiments import figure1

        result = figure1.run(preset="smoke", seed=0)
        path = write_csv(
            {
                "hour": result.hours,
                "static_hits": result.static_hits,
                "dynamic_hits": result.dynamic_hits,
            },
            tmp_path / "fig1a.csv",
        )
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "hour,static_hits,dynamic_hits"
        assert len(lines) == 1 + len(result.hours)
