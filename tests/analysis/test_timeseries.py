"""Tests for time-series helpers."""

import numpy as np
import pytest

from repro.analysis import align_series, moving_average, relative_change


class TestMovingAverage:
    def test_window_one_identity(self):
        x = np.array([1.0, 5.0, 3.0])
        np.testing.assert_array_equal(moving_average(x, 1), x)

    def test_constant_preserved(self):
        x = np.full(10, 4.0)
        np.testing.assert_allclose(moving_average(x, 3), x)

    def test_smooths_spike(self):
        x = np.array([0.0, 0.0, 9.0, 0.0, 0.0])
        smoothed = moving_average(x, 3)
        assert smoothed[2] == pytest.approx(3.0)
        assert smoothed[1] == pytest.approx(3.0)

    def test_edges_not_shrunk(self):
        x = np.full(6, 2.0)
        smoothed = moving_average(x, 3)
        assert smoothed[0] == pytest.approx(2.0)
        assert smoothed[-1] == pytest.approx(2.0)

    def test_mean_preserved_roughly(self):
        rng = np.random.default_rng(0)
        x = rng.random(50)
        assert moving_average(x, 5).mean() == pytest.approx(x.mean(), rel=0.05)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average(np.array([1.0]), 0)

    def test_empty_input(self):
        assert moving_average(np.array([]), 3).size == 0


class TestAlignSeries:
    def test_common_range(self):
        idx, a, b = align_series(
            np.array([1, 2, 3]), np.array([10.0, 20.0, 30.0]),
            np.array([2, 3, 4]), np.array([200.0, 300.0, 400.0]),
        )
        np.testing.assert_array_equal(idx, [2, 3])
        np.testing.assert_array_equal(a, [20.0, 30.0])
        np.testing.assert_array_equal(b, [200.0, 300.0])

    def test_disjoint_raises(self):
        with pytest.raises(ValueError):
            align_series(
                np.array([1]), np.array([1.0]), np.array([2]), np.array([2.0])
            )


class TestRelativeChange:
    def test_basic(self):
        assert relative_change(100.0, 150.0) == pytest.approx(0.5)
        assert relative_change(100.0, 50.0) == pytest.approx(-0.5)

    def test_zero_baseline(self):
        assert relative_change(0.0, 0.0) == 0.0
        assert relative_change(0.0, 5.0) == float("inf")
