"""Focused edge-case tests that don't fit a single module's suite."""

import numpy as np
import pytest

from repro.analysis.summary import ComparisonRow
from repro.sim import Simulator, Timeout
from repro.sim.process import Interrupt
from repro.workload.catalog import MusicCatalog
from repro.workload.library import LibraryConfig, generate_libraries
from repro.workload.queries import QueryModel


class TestComparisonRow:
    def test_change_and_format(self):
        row = ComparisonRow("hits", 100.0, 125.0)
        assert row.change == pytest.approx(0.25)
        text = row.format()
        assert "hits" in text and "+25.0%" in text

    def test_zero_baseline(self):
        assert ComparisonRow("x", 0.0, 0.0).change == 0.0
        assert ComparisonRow("x", 0.0, 5.0).change == float("inf")


class TestQueryModelGiveUp:
    def test_resample_exhaustion_returns_local_item(self):
        """When a user owns an entire category, exclusion must give up
        gracefully instead of looping forever."""
        catalog = MusicCatalog(n_items=20, n_categories=2)
        pop = generate_libraries(
            catalog,
            np.random.default_rng(0),
            LibraryConfig(n_users=1, mean_size=20, std_size=0, n_secondary=1,
                          min_size=1),
        )
        # The user owns all 20 songs; every draw is a local hit.
        assert len(pop.libraries[0]) == 20
        qm = QueryModel(pop, exclude_local=True, max_resample=4)
        item = qm.sample_item(0, np.random.default_rng(1))
        assert pop.holds(0, item)  # gave up and returned an owned item


class TestProcessInterruptRecovery:
    def test_process_continues_after_catching_interrupt(self):
        sim = Simulator()
        log = []

        def body():
            try:
                yield Timeout(sim, 100.0)
            except Interrupt:
                log.append(("interrupted", sim.now))
            yield Timeout(sim, 1.0)  # life goes on
            log.append(("done", sim.now))

        proc = sim.process(body())
        sim.schedule(5.0, proc.interrupt)
        sim.run()
        assert log == [("interrupted", 5.0), ("done", 6.0)]
        assert proc.ok


class TestKernelEventOrderAcrossPriorities:
    def test_trigger_then_schedule_interleaving(self):
        """Events triggered inside a callback dispatch in trigger order even
        when mixed with plain scheduled callbacks at the same instant."""
        sim = Simulator()
        order = []
        ev1, ev2 = sim.event(), sim.event()
        ev1.add_callback(lambda e: order.append("ev1"))
        ev2.add_callback(lambda e: order.append("ev2"))

        def fire():
            ev1.succeed()
            sim.schedule(0.0, order.append, "direct")
            ev2.succeed()

        sim.schedule(1.0, fire)
        sim.run()
        assert order == ["ev1", "direct", "ev2"]


class TestStatsTableRankedStability:
    def test_exclude_and_eligible_compose(self):
        from repro.core.statistics import StatsTable

        s = StatsTable()
        for n, b in [(1, 5.0), (2, 4.0), (3, 3.0), (4, 2.0)]:
            s.add_benefit(n, b)
        ranked = s.ranked(exclude=[1], eligible=lambda n: n != 3)
        assert ranked == [2, 4]
