"""Tests for the unified metrics registry."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import (
    LabeledCounter,
    LabeledGauge,
    LabeledHistogram,
    MetricsRegistry,
    bind_simulation_metrics,
)
from repro.sim.monitor import Counter, HourlyBuckets, TimeSeries, WelfordStats


class TestLabeledCounter:
    def test_inc_and_get_by_labels(self):
        c = LabeledCounter("queries")
        c.inc(scheme="static")
        c.inc(2, scheme="static")
        c.inc(scheme="dynamic")
        assert c.get(scheme="static") == 3.0
        assert c.get(scheme="dynamic") == 1.0
        assert c.get(scheme="missing") == 0.0

    def test_label_order_is_irrelevant(self):
        c = LabeledCounter("x")
        c.inc(a=1, b=2)
        assert c.get(b=2, a=1) == 1.0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            LabeledCounter("x").inc(-1.0)

    def test_snapshot(self):
        c = LabeledCounter("x")
        c.inc(5, scheme="static")
        snap = c.snapshot()
        assert snap["type"] == "counter"
        assert snap["values"] == {"scheme=static": 5.0}


class TestLabeledGauge:
    def test_set_overwrites(self):
        g = LabeledGauge("online")
        g.set(10.0)
        g.set(7.0)
        assert g.get() == 7.0

    def test_unset_reads_nan(self):
        assert math.isnan(LabeledGauge("x").get(node=3))


class TestLabeledHistogram:
    def test_observations_fill_buckets_and_moments(self):
        h = LabeledHistogram("delay", bounds=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(100.0)
        assert h.count() == 3
        snap = h.snapshot()
        series = snap["values"][""]
        assert series["buckets"] == [1, 1, 1]  # <=1, <=10, +inf
        assert series["mean"] == pytest.approx((0.5 + 5.0 + 100.0) / 3)

    def test_labeled_series_are_independent(self):
        h = LabeledHistogram("delay")
        h.observe(1.0, scheme="static")
        assert h.count(scheme="static") == 1
        assert h.count(scheme="dynamic") == 0

    def test_bounds_must_be_ascending(self):
        with pytest.raises(ConfigurationError):
            LabeledHistogram("x", bounds=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            LabeledHistogram("x", bounds=())

    def test_sum_tracks_exact_total(self):
        h = LabeledHistogram("delay", bounds=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(100.0)
        assert h.sum() == pytest.approx(105.5)
        assert h.sum(scheme="other") == 0.0

    def test_cumulative_ends_with_explicit_inf_bucket(self):
        h = LabeledHistogram("delay", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 100.0):
            h.observe(v)
        assert h.cumulative() == [(1.0, 1), (10.0, 2), (math.inf, 3)]

    def test_cumulative_of_empty_series_keeps_full_shape(self):
        h = LabeledHistogram("delay", bounds=(1.0, 10.0))
        assert h.cumulative() == [(1.0, 0), (10.0, 0), (math.inf, 0)]

    def test_snapshot_series_carries_sum_alongside_moments(self):
        h = LabeledHistogram("delay", bounds=(1.0,))
        h.observe(0.25)
        h.observe(0.75)
        series = h.snapshot()["values"][""]
        assert series["sum"] == pytest.approx(1.0)
        # Backward-compatible: the pre-sum keys are all still present.
        assert set(series) == {"buckets", "count", "sum", "mean", "std", "min", "max"}


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ConfigurationError):
            registry.gauge("a")

    def test_register_adopts_legacy_instruments(self):
        registry = MetricsRegistry()
        counter = Counter("hits", 4)
        stats = WelfordStats()
        stats.add(2.0)
        buckets = HourlyBuckets(horizon=2 * 3600.0)
        buckets.add(10.0)
        series = TimeSeries("clustering")
        series.record(0.0, 0.5)
        registry.register("hits", counter)
        registry.register("delay", stats)
        registry.register("hourly", buckets)
        registry.register("clustering", series)
        registry.register("computed", lambda: 42)
        snap = registry.snapshot()
        assert snap["hits"] == {"type": "counter", "values": {"": 4.0}}
        assert snap["delay"]["count"] == 1
        assert snap["hourly"]["counts"] == [1, 0]
        assert snap["clustering"]["times"] == [0.0]
        assert snap["computed"] == {"type": "value", "value": 42}

    def test_register_rejects_duplicates_and_unknown_types(self):
        registry = MetricsRegistry()
        registry.register("a", lambda: 1)
        with pytest.raises(ConfigurationError):
            registry.register("a", lambda: 2)
        with pytest.raises(ConfigurationError):
            registry.register("b", object())
        registry.counter("native")
        with pytest.raises(ConfigurationError):
            registry.register("native", lambda: 3)
        with pytest.raises(ConfigurationError):
            registry.counter("a")  # adopted name can't become native

    def test_adopted_callable_may_return_nested_values(self):
        registry = MetricsRegistry()
        registry.register("nested", lambda: {"a": 1, "b": [2, 3]})
        snap = registry.snapshot()
        assert snap["nested"] == {"type": "value", "value": {"a": 1, "b": [2, 3]}}

    def test_adopted_snapshots_are_live_reads(self):
        registry = MetricsRegistry()
        state = {"n": 0}
        registry.register("live", lambda: state["n"])
        assert registry.snapshot()["live"]["value"] == 0
        state["n"] = 7
        assert registry.snapshot()["live"]["value"] == 7

    def test_duck_typed_instrument_is_rejected(self):
        class FakeCounter:
            """Looks like a Counter but isn't one (no isinstance match)."""

            name = "fake"
            value = 3

            def increment(self, amount: int = 1) -> None:
                self.value += amount

        with pytest.raises(ConfigurationError, match="unsupported instrument"):
            MetricsRegistry().register("fake", FakeCounter())

    def test_adopted_name_collisions_report_the_name(self):
        registry = MetricsRegistry()
        registry.register("sim.hits", Counter("hits", 1))
        with pytest.raises(ConfigurationError, match="sim.hits"):
            registry.register("sim.hits", Counter("hits", 2))
        registry.histogram("sim.delay")
        with pytest.raises(ConfigurationError, match="sim.delay"):
            registry.register("sim.delay", WelfordStats())

    def test_names_contains_len(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.register("a", lambda: 1)
        assert registry.names() == ("a", "b")
        assert len(registry) == 2
        assert "a" in registry and "b" in registry and "c" not in registry

    def test_snapshot_is_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc(scheme="x")
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.2)
        json.dumps(registry.snapshot())  # must not raise


class TestBindSimulationMetrics:
    def test_binds_bundle_under_prefix(self):
        from repro.gnutella.metrics import SimulationMetrics

        metrics = SimulationMetrics(2 * 3600.0)
        metrics.record_query(10.0, True, 5, 1, 0.2)
        registry = MetricsRegistry()
        bind_simulation_metrics(registry, metrics)
        snap = registry.snapshot()
        assert snap["sim.total_queries"]["value"] == 1
        assert snap["sim.total_hits"]["value"] == 1
        assert snap["sim.first_result_delay"]["count"] == 1
        assert "sim.hits" in snap and "sim.messages" in snap
