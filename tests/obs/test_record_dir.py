"""Record directories and crash safety: the trace (and topology stream)
must reach disk as valid, parseable JSONL even when the run dies mid-way."""

import json

import pytest

from repro.gnutella.config import GnutellaConfig
from repro.gnutella.fast import FastGnutellaEngine
from repro.gnutella.simulation import run_simulation
from repro.obs.record import record_run, record_run_dir
from repro.obs.trace import Tracer, read_jsonl

HOUR = 3600.0


def _config(**overrides):
    base = dict(
        n_users=40, n_items=2000, horizon=4 * HOUR, warmup_hours=0, dynamic=True
    )
    base.update(overrides)
    return GnutellaConfig(**base)


def test_record_run_dir_layout_and_summary(tmp_path):
    out = tmp_path / "run"
    summary = record_run_dir(_config(), out, topology_interval=HOUR)
    assert sorted(p.name for p in out.iterdir()) == [
        "metrics.json",
        "summary.json",
        "topology.jsonl",
        "trace.jsonl",
    ]
    on_disk = json.loads((out / "summary.json").read_text())
    assert on_disk == summary
    assert summary["files"] == [
        "metrics.json",
        "summary.json",
        "topology.jsonl",
        "trace.jsonl",
    ]
    assert summary["engine"] == "fast"
    assert summary["run"]["total_queries"] > 0
    assert summary["convergence"] is not None
    assert len(summary["series"]["hours"]) == len(summary["series"]["recall"])
    assert len(summary["event_digest"]) == 64
    # Streams parse line by line.
    assert len(read_jsonl(out / "trace.jsonl")) == summary["trace"]["events"]
    snapshots = read_jsonl(out / "topology.jsonl")
    assert len(snapshots) == 3
    # The metrics registry picked up the topology series.
    metrics = json.loads((out / "metrics.json").read_text())
    assert "topology.churn" in metrics


def test_record_run_dir_without_topology_interval(tmp_path):
    out = tmp_path / "run"
    summary = record_run_dir(_config(horizon=2 * HOUR), out, hash_events=False)
    assert summary["event_digest"] is None
    assert not (out / "topology.jsonl").exists()
    assert "topology.jsonl" not in summary["files"]


def test_record_run_attaches_snapshotter():
    recorded = record_run(_config(horizon=2 * HOUR), topology_interval=HOUR)
    assert recorded.topology is not None
    assert len(recorded.topology.snapshots) == 1
    assert recorded.summary()["topology_snapshots"] == 1


def test_tracer_flushed_writes_on_exception(tmp_path):
    tracer = Tracer()
    tracer.instant("before", "test", 1.0)
    path = tmp_path / "partial.jsonl"
    with pytest.raises(RuntimeError, match="boom"):
        with tracer.flushed(path):
            tracer.instant("during", "test", 2.0)
            raise RuntimeError("boom")
    events = read_jsonl(path)
    assert [ev["name"] for ev in events] == ["before", "during"]


class _Boom(RuntimeError):
    pass


def _crash_at(engine, time):
    """Schedule a mid-run failure inside the engine's event stream."""

    def boom() -> None:
        raise _Boom(f"injected crash at t={time}")

    engine.sim.schedule(time, boom)


def test_mid_run_crash_leaves_valid_trace_prefix(tmp_path, monkeypatch):
    """A simulation dying halfway through REPRO_TRACE recording still leaves
    a parseable JSONL trace of everything up to the failure."""
    trace_path = tmp_path / "crash-trace.jsonl"
    monkeypatch.setenv("REPRO_TRACE", str(trace_path))
    original_run = FastGnutellaEngine.run

    def crashing_run(self):
        _crash_at(self, 2 * HOUR)
        return original_run(self)

    monkeypatch.setattr(FastGnutellaEngine, "run", crashing_run)
    with pytest.raises(_Boom):
        run_simulation(_config())
    assert trace_path.is_file()
    events = read_jsonl(trace_path)
    assert len(events) > 0
    # Everything on disk predates the crash instant (trace ts is in µs).
    assert all(ev["ts"] <= 2 * HOUR * 1e6 for ev in events)


def test_record_run_dir_crash_still_writes_trace_and_topology(
    tmp_path, monkeypatch
):
    out = tmp_path / "crashed"
    original_run = FastGnutellaEngine.run

    def crashing_run(self):
        _crash_at(self, 2 * HOUR + 1.0)
        return original_run(self)

    monkeypatch.setattr(FastGnutellaEngine, "run", crashing_run)
    with pytest.raises(_Boom):
        record_run_dir(_config(), out, topology_interval=HOUR)
    # summary.json never materialized (the run died), but both streams did,
    # holding everything up to the failure.
    assert not (out / "summary.json").exists()
    events = read_jsonl(out / "trace.jsonl")
    assert len(events) > 0
    snapshots = read_jsonl(out / "topology.jsonl")
    assert len(snapshots) == 2  # the 1h and 2h snapshots fired before t=2h+1
