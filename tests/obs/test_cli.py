"""Tests for the ``repro-trace`` CLI."""

import json

import pytest

from repro.obs.cli import main, summarize_events
from repro.obs.trace import Tracer


@pytest.fixture()
def jsonl_trace(tmp_path):
    tracer = Tracer()
    tracer.complete("query", "query", 1.0, 0.5, tid=3)
    tracer.instant("hop1", "query", 1.1, tid=3)
    tracer.instant("login", "churn", 0.0, pid=3, tid=9)
    return tracer.write_jsonl(tmp_path / "trace.jsonl")


class TestSummarizeEvents:
    def test_counts_match_tracer_summary(self):
        tracer = Tracer()
        tracer.complete("query", "query", 0.0, 1.0)
        tracer.instant("login", "churn", 0.0)
        rendered = summarize_events(ev.as_dict() for ev in tracer.events)
        assert rendered == tracer.summary()


class TestSummarizeCommand:
    def test_prints_summary_json(self, jsonl_trace, capsys):
        assert main(["summarize", str(jsonl_trace)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["events"] == 3
        assert out["spans"] == 1
        assert out["by_category"] == {"churn": 1, "query": 2}

    def test_summarizes_chrome_json_without_metadata(self, jsonl_trace, tmp_path, capsys):
        chrome = tmp_path / "trace.json"
        assert main(["convert", str(jsonl_trace), "--out", str(chrome)]) == 0
        capsys.readouterr()
        assert main(["summarize", str(chrome)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["events"] == 3  # metadata events excluded


class TestConvertCommand:
    def test_writes_valid_chrome_document(self, jsonl_trace, tmp_path, capsys):
        chrome = tmp_path / "out.json"
        assert main(["convert", str(jsonl_trace), "--out", str(chrome)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["events"] == 3
        from repro.obs.chrome import validate_chrome

        assert validate_chrome(json.loads(chrome.read_text())) == []

    def test_empty_trace_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["convert", str(empty), "--out", str(tmp_path / "o.json")]) == 1
        assert "no events" in capsys.readouterr().err


class TestRecordCommand:
    def test_record_produces_trace_and_digest(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "record",
                "--preset",
                "smoke",
                "--seed",
                "0",
                "--out",
                str(tmp_path / "t.jsonl"),
                "--chrome",
                str(tmp_path / "t.json"),
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["event_digest"]
        assert report["trace"]["spans"] > 0
        assert (tmp_path / "t.jsonl").exists()
        from repro.obs.chrome import validate_chrome

        assert validate_chrome(json.loads((tmp_path / "t.json").read_text())) == []


class TestSummarizeTolerance:
    """`repro-trace summarize` on damaged traces: degrade, never crash."""

    def test_empty_trace_summarizes_to_zero_events(self, tmp_path, capsys):
        empty = tmp_path / "trace.jsonl"
        empty.write_text("")
        assert main(["summarize", str(empty)]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out)["events"] == 0
        assert "holds no events" in captured.err

    def test_truncated_final_line_is_skipped_with_warning(self, jsonl_trace, capsys):
        # Simulate a crash mid-write: chop the last line in half.
        text = jsonl_trace.read_text()
        lines = text.splitlines()
        jsonl_trace.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        assert main(["summarize", str(jsonl_trace)]) == 0
        captured = capsys.readouterr()
        summary = json.loads(captured.out)
        assert summary["events"] == 2  # the intact prefix
        assert summary["skipped_lines"] == 1
        assert "truncated" in captured.err

    def test_non_object_lines_are_skipped(self, jsonl_trace, capsys):
        with jsonl_trace.open("a") as handle:
            handle.write("[1, 2, 3]\n")
        assert main(["summarize", str(jsonl_trace)]) == 0
        captured = capsys.readouterr()
        summary = json.loads(captured.out)
        assert summary["events"] == 3
        assert summary["skipped_lines"] == 1

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["summarize", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such trace" in capsys.readouterr().err

    def test_unparseable_chrome_json_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "trace.json"
        bad.write_text("{definitely not json")
        assert main(["summarize", str(bad)]) == 1
        assert "error" in capsys.readouterr().err
