"""Tests for the tracer: buffering, export, env switch, query emission."""

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    PID_CHURN,
    PID_QUERY,
    TRACE_ENV,
    Tracer,
    emit_flood_query,
    read_jsonl,
    trace_env_path,
)
from repro.types import NodeId, QueryOutcome, QueryResult


def _outcome(n_results: int = 2, issued_at: float = 100.0) -> QueryOutcome:
    results = tuple(
        QueryResult(responder=NodeId(10 + i), item=7, hops=i + 1, delay=0.1 * (i + 1))
        for i in range(n_results)
    )
    return QueryOutcome(
        initiator=NodeId(3),
        item=7,
        issued_at=issued_at,
        results=results,
        messages=12,
        nodes_contacted=9,
    )


class TestTracer:
    def test_instant_converts_seconds_to_microseconds(self):
        tracer = Tracer()
        tracer.instant("login", "churn", 2.5, pid=PID_CHURN, tid=4)
        (ev,) = tracer.events
        assert ev.ph == "i"
        assert ev.ts == pytest.approx(2.5e6)
        assert (ev.pid, ev.tid) == (PID_CHURN, 4)

    def test_complete_span_carries_duration(self):
        tracer = Tracer()
        tracer.complete("query", "query", 1.0, 0.25, tid=2)
        (ev,) = tracer.events
        assert ev.ph == "X"
        assert ev.dur == pytest.approx(0.25e6)

    def test_as_dict_shapes(self):
        tracer = Tracer()
        tracer.complete("q", "query", 0.0, 1.0)
        tracer.instant("i", "query", 0.5)
        span, instant = (ev.as_dict() for ev in tracer.events)
        assert "dur" in span and "s" not in span
        assert instant["s"] == "t" and "dur" not in instant

    def test_by_category_and_summary(self):
        tracer = Tracer()
        tracer.instant("login", "churn", 0.0)
        tracer.complete("query", "query", 0.0, 1.0)
        assert len(tracer.by_category("churn")) == 1
        summary = tracer.summary()
        assert summary["events"] == 2
        assert summary["spans"] == 1
        assert summary["by_name"]["churn/login"] == 1

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.instant("login", "churn", 1.0, tid=5, args={"x": 1})
        tracer.complete("query", "query", 2.0, 0.5, tid=6)
        path = tracer.write_jsonl(tmp_path / "trace.jsonl")
        events = read_jsonl(path)
        assert len(events) == 2
        assert events[0]["name"] == "login"
        assert events[0]["args"] == {"x": 1}
        assert events[1]["dur"] == pytest.approx(0.5e6)


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.instant("x", "query", 0.0)
        NULL_TRACER.complete("x", "query", 0.0, 1.0)
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.events == ()


class TestTraceEnvPath:
    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert trace_env_path() is None

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", ""])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(TRACE_ENV, value)
        assert trace_env_path() is None

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes"])
    def test_truthy_switches_use_default_path(self, monkeypatch, value):
        monkeypatch.setenv(TRACE_ENV, value)
        assert trace_env_path() == "repro-trace.jsonl"

    def test_other_values_are_the_path(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "/tmp/my-trace.jsonl")
        assert trace_env_path() == "/tmp/my-trace.jsonl"


class TestEmitFloodQuery:
    def test_span_covers_issue_to_last_reply(self):
        tracer = Tracer()
        emit_flood_query(tracer, _outcome())
        span = next(ev for ev in tracer.events if ev.ph == "X")
        assert span.name == "query"
        assert span.ts == pytest.approx(100.0e6)
        assert span.dur == pytest.approx(0.2e6)  # max result delay
        assert span.args["hit"] is True
        assert span.args["messages"] == 12

    def test_empty_query_gets_nominal_duration(self):
        tracer = Tracer()
        emit_flood_query(tracer, _outcome(n_results=0))
        span = next(ev for ev in tracer.events if ev.ph == "X")
        assert span.dur == pytest.approx(1e-3 * 1e6)
        assert span.args["hit"] is False

    def test_level_ends_become_hop_children_inside_span(self):
        tracer = Tracer()
        emit_flood_query(tracer, _outcome(), level_ends=[4, 9])
        span = next(ev for ev in tracer.events if ev.ph == "X")
        hops = [ev for ev in tracer.events if ev.name.startswith("hop")]
        assert [h.args["contacted"] for h in hops] == [4, 5]
        assert [h.args["cumulative"] for h in hops] == [4, 9]
        for hop in hops:
            assert span.ts < hop.ts < span.ts + span.dur
            assert hop.tid == span.tid

    def test_without_level_ends_single_propagation_instant(self):
        tracer = Tracer()
        emit_flood_query(tracer, _outcome())
        names = [ev.name for ev in tracer.events]
        assert "propagation" in names
        assert not any(n.startswith("hop") for n in names)

    def test_hit_and_reply_instants_per_result(self):
        tracer = Tracer()
        emit_flood_query(tracer, _outcome(n_results=2))
        hits = [ev for ev in tracer.events if ev.name == "hit"]
        replies = [ev for ev in tracer.events if ev.name == "reply"]
        assert len(hits) == len(replies) == 2
        # hit at one-way delay, reply at round trip
        assert hits[0].ts == pytest.approx((100.0 + 0.05) * 1e6)
        assert replies[0].ts == pytest.approx((100.0 + 0.1) * 1e6)
        assert all(ev.pid == PID_QUERY for ev in hits + replies)
