"""Profiler neutrality: the perf plane is pure host observation.

Same gate style as ``tests/obs/telemetry/test_live_digest.py``: a run with
the stack sampler (or counting profiler), per-event-type cost accounting,
and tracemalloc snapshots all enabled must produce an event-stream digest
bit-identical to a plain run's, on every engine.
"""

import pytest

from repro.gnutella.config import GnutellaConfig
from repro.gnutella.simulation import simulate_task
from repro.obs.record import record_run


def _config(**overrides) -> GnutellaConfig:
    base = dict(
        n_users=25,
        n_items=1000,
        horizon=2 * 3600.0,
        warmup_hours=0,
        dynamic=True,
    )
    base.update(overrides)
    return GnutellaConfig(**base)


@pytest.mark.parametrize("engine", ["fast", "fast-reference", "detailed"])
def test_sampled_run_digest_matches_plain(engine):
    config = _config()
    _, plain = simulate_task(config, engine, hash_events=True)
    recorded = record_run(config, engine, perf="sampler")
    assert recorded.event_digest == plain
    # And the plane actually observed the run, not an empty world: event
    # classes were attributed even if the sampler happened to miss a short
    # run's stacks.
    perf = recorded.perf
    assert perf is not None
    assert perf.counters.total_events > 0
    assert perf.counters.total_seconds > 0.0
    assert "engine.run" in perf.alloc.snapshots


@pytest.mark.parametrize("engine", ["fast", "fast-reference", "detailed"])
def test_counting_run_digest_matches_plain(engine):
    config = _config()
    _, plain = simulate_task(config, engine, hash_events=True)
    recorded = record_run(config, engine, perf="counting")
    assert recorded.event_digest == plain
    perf = recorded.perf
    assert perf.unit == "calls"
    assert perf.folds.total > 0


def test_fast_engine_attributes_fastpath_and_event_classes():
    recorded = record_run(_config(), "fast", perf="sampler")
    table = recorded.perf.counters.as_dict()
    assert "fastpath.search" in table
    # Engine event handlers resolve to qualified names, not raw repr()s.
    assert any("." in label and "bound method" not in label for label in table)
    assert all(entry["events"] > 0 for entry in table.values())


def test_perf_summary_block():
    recorded = record_run(_config(), "fast", perf="sampler", perf_hz=50.0)
    summary = recorded.summary()
    perf = summary["perf"]
    assert perf["mode"] == "sampler"
    assert perf["unit"] == "samples"
    assert perf["hz"] == 50.0
    assert perf["event_types"] > 0


def test_unprofiled_run_has_no_perf_block():
    recorded = record_run(_config(), "fast")
    assert recorded.perf is None
    assert "perf" not in recorded.summary()
