"""PerfRecorder lifecycle, artifacts, and diff_profiles attribution."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.perf.recorder import PERF_SCHEMA, PerfRecorder, diff_profiles


def _spin(n: int = 20000) -> int:
    return sum(i * i for i in range(n))


def test_rejects_unknown_mode():
    with pytest.raises(ConfigurationError):
        PerfRecorder(mode="cprofile")


def test_counting_report_shape():
    recorder = PerfRecorder(mode="counting", alloc=False)
    with recorder:
        _spin()
    recorder.counters.record_named("fake.event", 0.25)
    report = recorder.report()
    assert report["schema"] == PERF_SCHEMA
    assert report["mode"] == "counting"
    assert report["unit"] == "calls"
    assert report["hz"] == 0.0
    assert report["samples"] > 0
    assert "alloc" not in report
    assert report["event_types"]["fake.event"]["events"] == 1
    # Counting mode has no time base: counts carry the table.
    for entry in report["frames"].values():
        assert entry["self_seconds"] == 0.0
        assert entry["self_count"] >= 1.0


def test_sampler_report_includes_alloc_phases():
    recorder = PerfRecorder(mode="sampler", hz=50.0)
    with recorder:
        _spin()
        recorder.boundary("engine.run")
    report = recorder.report()
    assert report["mode"] == "sampler"
    assert report["hz"] == 50.0
    assert list(report["alloc"]["phases"]) == ["engine.run"]


def test_write_produces_round_trippable_artifacts(tmp_path):
    recorder = PerfRecorder(mode="counting", alloc=False)
    with recorder:
        _spin()
    files = recorder.write(tmp_path)
    assert files == ["perf.collapsed", "perf.json"]
    from repro.obs.perf.collapse import FoldedStacks

    folds = FoldedStacks.parse_collapsed(
        (tmp_path / "perf.collapsed").read_text(encoding="utf-8")
    )
    assert folds.as_dict() == recorder.folds.as_dict()
    doc = json.loads((tmp_path / "perf.json").read_text(encoding="utf-8"))
    assert doc["schema"] == PERF_SCHEMA


def test_attach_sets_the_opt_in_hooks():
    class Sim:
        perf = None

    class Fastpath:
        perf = None

    class Engine:
        sim = Sim()
        _fastpath = Fastpath()

    recorder = PerfRecorder(alloc=False)
    engine = Engine()
    recorder.attach(engine)
    assert engine.sim.perf is recorder.counters
    assert engine._fastpath.perf is recorder.counters


def test_diff_profiles_ranks_by_absolute_self_seconds_move():
    old = {"frames": {
        "m:hot": {"self_seconds": 0.5},
        "m:cold": {"self_seconds": 0.2},
        "m:same": {"self_seconds": 0.1},
    }}
    new = {"frames": {
        "m:hot": {"self_seconds": 1.4},
        "m:cold": {"self_seconds": 0.1},
        "m:same": {"self_seconds": 0.1},
        "m:born": {"self_seconds": 0.3},
    }}
    movers = diff_profiles(old, new)
    assert [m["frame"] for m in movers] == ["m:hot", "m:born", "m:cold"]
    assert movers[0] == {
        "frame": "m:hot",
        "metric": "self_seconds",
        "old": 0.5,
        "new": 1.4,
        "delta": pytest.approx(0.9),
    }


def test_diff_profiles_stable_under_frame_order_permutation():
    frames = {
        "m:a": {"self_seconds": 1.0},
        "m:b": {"self_seconds": 2.0},
        "m:c": {"self_seconds": 3.0},
    }
    old = {"frames": dict(frames)}
    bumped = {name: {"self_seconds": entry["self_seconds"] + 1.0}
              for name, entry in frames.items()}
    forward = {"frames": dict(bumped)}
    backward = {"frames": dict(reversed(list(bumped.items())))}
    assert diff_profiles(old, forward) == diff_profiles(old, backward)
    # Equal deltas tie-break alphabetically on the frame name.
    assert [m["frame"] for m in diff_profiles(old, forward)] == [
        "m:a", "m:b", "m:c"
    ]


def test_diff_profiles_falls_back_to_counts_without_a_time_base():
    old = {"frames": {"m:f": {"self_seconds": 0.0, "self_count": 10.0}}}
    new = {"frames": {"m:f": {"self_seconds": 0.0, "self_count": 25.0}}}
    (mover,) = diff_profiles(old, new)
    assert mover["metric"] == "self_count"
    assert mover["delta"] == 15.0


def test_diff_profiles_empty_when_nothing_moved():
    block = {"frames": {"m:f": {"self_seconds": 1.0}}}
    assert diff_profiles(block, block) == []
    assert diff_profiles({}, {}) == []
