"""StackSampler and CountingProfiler behaviour."""

import time

import pytest

from repro.obs.perf.stack_sampler import CountingProfiler, StackSampler


def _busy_beacon(deadline: float) -> int:
    """A distinctive hot function for the sampler to catch."""
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


def test_sampler_catches_the_hot_frame():
    sampler = StackSampler(hz=250.0)
    with sampler:
        _busy_beacon(time.perf_counter() + 0.4)
    assert sampler.samples > 0
    assert sampler.wall_seconds > 0.3
    cum = sampler.folds.cum_counts()
    beacon = [frame for frame in cum if "_busy_beacon" in frame]
    # The beacon burned essentially all the wall time, so essentially all
    # samples land under it (pytest's own frames sit above it, tied).
    assert beacon and cum[beacon[0]] > sampler.samples * 0.8


def test_sampler_rejects_bad_hz():
    with pytest.raises(ValueError):
        StackSampler(hz=0)


def test_sampler_cannot_start_twice():
    sampler = StackSampler(hz=50.0)
    sampler.start()
    try:
        with pytest.raises(RuntimeError):
            sampler.start()
    finally:
        sampler.stop()


def test_sampler_stop_is_idempotent():
    sampler = StackSampler(hz=50.0)
    sampler.start()
    sampler.stop()
    sampler.stop()
    assert sampler.effective_hz >= 0.0


def test_seconds_per_sample():
    sampler = StackSampler(hz=200.0)
    with sampler:
        _busy_beacon(time.perf_counter() + 0.2)
    if sampler.samples:
        per = sampler.seconds_per_sample()
        assert per * sampler.samples == pytest.approx(sampler.wall_seconds)


def _call_tree(n: int) -> int:
    return sum(_leaf(i) for i in range(n))


def _leaf(i: int) -> int:
    return i * i


def test_counting_profiler_counts_calls():
    profiler = CountingProfiler()
    with profiler:
        _call_tree(25)
    assert profiler.calls > 0
    self_counts = profiler.folds.self_counts()
    leaf = [frame for frame in self_counts if frame.endswith("_leaf")]
    assert leaf and self_counts[leaf[0]] == 25


def test_counting_profiler_is_deterministic():
    def run() -> str:
        profiler = CountingProfiler()
        with profiler:
            _call_tree(40)
        return profiler.folds.render_collapsed()

    assert run() == run()


def test_counting_profiler_survives_preexisting_frames():
    # "return" events for frames entered before start() must not underflow.
    def outer():
        profiler = CountingProfiler()
        profiler.start()
        return profiler

    profiler = outer()  # outer's frame returns while profiling is active
    _call_tree(3)
    profiler.stop()
    assert profiler.calls > 0
