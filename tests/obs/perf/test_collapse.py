"""FoldedStacks: accumulation, rendering, parsing, aggregation."""

import pytest

from repro.obs.perf.collapse import FoldedStacks


def test_add_accumulates_counts():
    folds = FoldedStacks()
    folds.add(("a", "b"))
    folds.add(("a", "b"), 2)
    folds.add(("a",))
    assert folds.total == 4
    assert len(folds) == 2


def test_add_rejects_nonpositive_count():
    folds = FoldedStacks()
    with pytest.raises(ValueError):
        folds.add(("a",), 0)
    with pytest.raises(ValueError):
        folds.add(("a",), -1)


def test_empty_stack_is_a_noop():
    folds = FoldedStacks()
    folds.add(())
    assert folds.total == 0


def test_frame_labels_are_sanitized():
    folds = FoldedStacks()
    folds.add(("bad;name", "multi\nline", ""))
    (stack, _), = list(folds)
    assert stack == ("bad:name", "multi line", "?")


def test_render_collapsed_is_deterministic():
    a = FoldedStacks()
    a.add(("main", "work", "inner"), 3)
    a.add(("main", "other"), 1)
    b = FoldedStacks()
    b.add(("main", "other"), 1)
    b.add(("main", "work", "inner"), 2)
    b.add(("main", "work", "inner"), 1)
    assert a.render_collapsed() == b.render_collapsed()
    assert "main;work;inner 3" in a.render_collapsed()


def test_parse_round_trips_render():
    folds = FoldedStacks()
    folds.add(("main", "work", "inner"), 3)
    folds.add(("main", "other"), 7)
    parsed = FoldedStacks.parse_collapsed(folds.render_collapsed())
    assert parsed.as_dict() == folds.as_dict()


def test_parse_skips_malformed_lines():
    text = "a;b 3\nnot a fold line\nc;d nan\n\na 2"
    folds = FoldedStacks.parse_collapsed(text)
    assert folds.as_dict() == {"a": 2, "a;b": 3}


def test_self_and_cum_counts():
    folds = FoldedStacks()
    folds.add(("main", "work", "inner"), 3)
    folds.add(("main", "work"), 2)
    folds.add(("main",), 1)
    assert folds.self_counts() == {"inner": 3, "work": 2, "main": 1}
    cum = folds.cum_counts()
    assert cum["main"] == 6
    assert cum["work"] == 5
    assert cum["inner"] == 3


def test_recursion_counts_once_per_fold():
    folds = FoldedStacks()
    folds.add(("f", "f", "f"), 4)
    assert folds.cum_counts() == {"f": 4}
    assert folds.self_counts() == {"f": 4}


def test_merge_folds_other_in():
    a = FoldedStacks()
    a.add(("x",), 1)
    b = FoldedStacks()
    b.add(("x",), 2)
    b.add(("y", "z"), 3)
    a.merge(b)
    assert a.as_dict() == {"x": 3, "y;z": 3}


def test_top_frames_stable_under_permutation():
    a = FoldedStacks()
    b = FoldedStacks()
    entries = [("alpha", 5), ("beta", 5), ("gamma", 2)]
    for name, count in entries:
        a.add((name,), count)
    for name, count in reversed(entries):
        b.add((name,), count)
    assert a.top_frames(3) == b.top_frames(3)
    # Equal counts tie-break on the name.
    assert a.top_frames(2) == [("alpha", 5), ("beta", 5)]


def test_top_frames_rejects_bad_key():
    with pytest.raises(ValueError):
        FoldedStacks().top_frames(1, key="nope")


def test_from_dict_round_trip():
    folds = FoldedStacks()
    folds.add(("a", "b"), 2)
    again = FoldedStacks.from_dict(folds.as_dict())
    assert again.as_dict() == folds.as_dict()
