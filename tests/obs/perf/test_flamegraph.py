"""Flame-graph SVG rendering: self-containment, structure, CLI."""

import json
import xml.etree.ElementTree as ET

from repro.obs.perf.collapse import FoldedStacks
from repro.obs.perf.flamegraph import main, render_flamegraph_svg


def _folds() -> FoldedStacks:
    folds = FoldedStacks()
    folds.add(("main", "engine.run", "flood"), 60)
    folds.add(("main", "engine.run", "route"), 30)
    folds.add(("main", "report"), 10)
    return folds


def test_embedded_svg_has_no_external_references():
    svg = render_flamegraph_svg(_folds(), title="t")
    assert svg.startswith("<svg")
    assert "http" not in svg
    assert "url(" not in svg
    assert "<script" not in svg


def test_embedded_svg_parses_and_represents_folds():
    svg = render_flamegraph_svg(_folds(), title="Hot paths", unit="samples")
    root = ET.fromstring(svg)
    assert root.tag == "svg"
    text = svg
    for frame in ("engine.run", "flood", "route", "report"):
        assert frame in text
    # Hover titles carry the unit and percentages.
    assert "100.00%" in text
    assert "samples" in text


def test_standalone_svg_declares_the_namespace():
    svg = render_flamegraph_svg(_folds(), standalone=True)
    assert 'xmlns="http://www.w3.org/2000/svg"' in svg
    # Namespaced parse: the tag resolves inside the SVG namespace.
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")


def test_empty_folds_render_a_placeholder():
    svg = render_flamegraph_svg(FoldedStacks(), title="empty")
    assert "no samples recorded" in svg
    assert "http" not in svg
    ET.fromstring(svg)


def test_widths_are_proportional_to_counts():
    svg = render_flamegraph_svg(_folds(), width=1000)
    root = ET.fromstring(svg)
    rects = {title.text.split(" — ")[0]: rect
             for g in root.iter("g")
             for title, rect in [(g.find("title"), g.find("rect"))]}
    flood_w = float(rects["flood"].get("width"))
    route_w = float(rects["route"].get("width"))
    assert flood_w / route_w == 60 / 30


def test_frame_names_are_escaped():
    folds = FoldedStacks()
    folds.add(("<evil>&frame",), 1)
    svg = render_flamegraph_svg(folds)
    assert "<evil>" not in svg
    ET.fromstring(svg)


def test_cli_writes_standalone_svg(tmp_path, capsys):
    collapsed = tmp_path / "perf.collapsed"
    collapsed.write_text(_folds().render_collapsed(), encoding="utf-8")
    out = tmp_path / "graph.svg"
    assert main([str(collapsed), "--out", str(out), "--title", "cli run"]) == 0
    svg = out.read_text(encoding="utf-8")
    assert 'xmlns="http://www.w3.org/2000/svg"' in svg
    assert "cli run" in svg
    summary = json.loads(capsys.readouterr().out)
    assert summary == {"svg": str(out), "folds": 3, "total": 100}


def test_cli_missing_file(tmp_path, capsys):
    assert main([str(tmp_path / "nope.collapsed")]) == 1
    assert "no such file" in capsys.readouterr().err


def test_cli_empty_folds_warns(tmp_path, capsys):
    collapsed = tmp_path / "empty.collapsed"
    collapsed.write_text("", encoding="utf-8")
    out = tmp_path / "graph.svg"
    assert main([str(collapsed), "--out", str(out)]) == 0
    captured = capsys.readouterr()
    assert "placeholder" in captured.err
    assert "no samples recorded" in out.read_text(encoding="utf-8")
