"""Profiled record directories and the report's flamegraph panel."""

import json

import pytest

from repro.gnutella.config import GnutellaConfig
from repro.obs.perf.collapse import FoldedStacks
from repro.obs.record import record_run_dir
from repro.obs.report import render_report

HOUR = 3600.0


def _config(**overrides):
    base = dict(
        n_users=30, n_items=1500, horizon=3 * HOUR, warmup_hours=0, dynamic=True
    )
    base.update(overrides)
    return GnutellaConfig(**base)


@pytest.fixture(scope="module")
def perf_record_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("rec") / "run"
    summary = record_run_dir(_config(), out, perf="counting")
    return out, summary


def test_record_run_dir_writes_perf_artifacts(perf_record_dir):
    out, summary = perf_record_dir
    assert (out / "perf.collapsed").is_file()
    assert (out / "perf.json").is_file()
    assert "perf.collapsed" in summary["files"]
    assert "perf.json" in summary["files"]
    perf = summary["perf"]
    assert perf["mode"] == "counting"
    assert perf["unit"] == "calls"
    assert perf["samples"] > 0
    assert perf["event_types"] > 0


def test_perf_json_and_collapsed_agree(perf_record_dir):
    out, _ = perf_record_dir
    doc = json.loads((out / "perf.json").read_text(encoding="utf-8"))
    folds = FoldedStacks.parse_collapsed(
        (out / "perf.collapsed").read_text(encoding="utf-8")
    )
    assert doc["samples"] == folds.total
    assert doc["event_types"]
    # The engine.run boundary snapshot made it into the alloc block.
    assert "engine.run" in doc["alloc"]["phases"]


def test_report_renders_profiling_panel(perf_record_dir):
    out, _ = perf_record_dir
    html_text = render_report(out)
    assert "Profiling" in html_text
    assert "Host flame graph" in html_text
    assert "Per-event-type cost" in html_text
    assert "Hot frames" in html_text
    # Still fully self-contained with the flamegraph SVG embedded.
    assert "http://" not in html_text
    assert "https://" not in html_text
    assert "<script" not in html_text


def test_unprofiled_record_has_no_panel(tmp_path):
    out = tmp_path / "plain"
    summary = record_run_dir(_config(horizon=2 * HOUR), out)
    assert summary["perf"] is None
    assert "perf.json" not in summary["files"]
    html_text = render_report(out)
    assert "Host flame graph" not in html_text
