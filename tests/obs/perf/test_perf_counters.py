"""EventTypeCounters: labeling, accumulation, stable rendering."""

from repro.obs.perf.perf_counters import EventTypeCounters


class _Engine:
    def fire(self):
        pass

    def toggle(self):
        pass


def test_record_resolves_bound_methods_to_one_label():
    counters = EventTypeCounters()
    engine = _Engine()
    # Fresh bound-method objects each time, like ScheduledCallback handles.
    counters.record(engine.fire, 0.1)
    counters.record(engine.fire, 0.2)
    counters.record(engine.toggle, 0.1)
    table = counters.as_dict()
    assert table["_Engine.fire"]["events"] == 2
    assert table["_Engine.fire"]["seconds"] == 0.30000000000000004
    assert table["_Engine.toggle"]["events"] == 1


def test_record_plain_function_and_unnamed_callable():
    counters = EventTypeCounters()

    def tick():
        pass

    class Cb:
        def __call__(self):
            pass

    counters.record(tick, 0.5)
    counters.record(Cb(), 0.5)
    labels = set(counters.as_dict())
    assert any(label.endswith("tick") for label in labels)
    # A callable instance labels via its __call__ qualname or type name.
    assert len(labels) == 2


def test_record_named_sub_account():
    counters = EventTypeCounters()
    counters.record_named("fastpath.search", 0.25)
    counters.record_named("fastpath.search", 0.25)
    entry = counters.as_dict()["fastpath.search"]
    assert entry["events"] == 2
    assert entry["seconds"] == 0.5
    assert entry["events_per_sec"] == 4.0


def test_as_dict_sorted_by_descending_seconds():
    counters = EventTypeCounters()
    counters.record_named("cheap", 0.1)
    counters.record_named("expensive", 2.0)
    counters.record_named("middle", 0.5)
    assert list(counters.as_dict()) == ["expensive", "middle", "cheap"]


def test_rows_top_n():
    counters = EventTypeCounters()
    for i in range(5):
        counters.record_named(f"label{i}", float(i + 1))
    rows = counters.rows(2)
    assert [r[0] for r in rows] == ["label4", "label3"]
    label, events, seconds, per_sec = rows[0]
    assert (events, seconds, per_sec) == (1, 5.0, 0.2)


def test_merge_and_totals():
    a = EventTypeCounters()
    b = EventTypeCounters()
    a.record_named("x", 1.0)
    b.record_named("x", 2.0)
    b.record_named("y", 3.0)
    a.merge(b)
    assert a.total_events == 3
    assert a.total_seconds == 6.0
    assert len(a) == 2


def test_zero_seconds_is_safe():
    counters = EventTypeCounters()
    counters.record_named("instant", 0.0)
    assert counters.as_dict()["instant"]["events_per_sec"] == 0.0
