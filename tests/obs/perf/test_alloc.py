"""AllocSnapshots: tracemalloc lifecycle and snapshot shape."""

import tracemalloc

import pytest

from repro.obs.perf.alloc import AllocSnapshots, _short_site


def test_rejects_bad_top_n():
    with pytest.raises(ValueError):
        AllocSnapshots(top_n=0)


def test_snapshot_requires_start():
    snaps = AllocSnapshots()
    if tracemalloc.is_tracing():  # pragma: no cover - depends on env
        pytest.skip("tracemalloc already active in this process")
    with pytest.raises(RuntimeError):
        snaps.snapshot("phase")


def test_snapshot_shape_and_phase_ordering():
    snaps = AllocSnapshots(top_n=3)
    with snaps:
        ballast = [bytearray(4096) for _ in range(50)]
        first = snaps.snapshot("build")
        more = [bytearray(4096) for _ in range(50)]
        snaps.snapshot("run")
        del ballast, more
    assert list(snaps.snapshots) == ["build", "run"]
    assert first["phase"] == "build"
    assert first["traced_kb"] > 0.0
    assert first["peak_kb"] >= first["traced_kb"]
    assert len(first["sites"]) <= 3
    site = first["sites"][0]
    assert set(site) == {"site", "size_kb", "blocks"}
    assert ":" in site["site"]


def test_stop_releases_tracing_only_when_owned():
    if tracemalloc.is_tracing():  # pragma: no cover - depends on env
        pytest.skip("tracemalloc already active in this process")
    snaps = AllocSnapshots()
    snaps.start()
    assert tracemalloc.is_tracing()
    snaps.stop()
    assert not tracemalloc.is_tracing()
    # Pre-existing tracing survives a start/stop cycle.
    tracemalloc.start()
    try:
        inner = AllocSnapshots()
        inner.start()
        inner.stop()
        assert tracemalloc.is_tracing()
    finally:
        tracemalloc.stop()


def test_as_dict_holds_top_n_and_phases():
    snaps = AllocSnapshots(top_n=2)
    with snaps:
        snaps.snapshot("only")
    doc = snaps.as_dict()
    assert doc["top_n"] == 2
    assert list(doc["phases"]) == ["only"]


def test_short_site_repro_relative():
    assert (
        _short_site("/home/x/repo/src/repro/sim/kernel.py", 42)
        == "repro/sim/kernel.py:42"
    )
    assert _short_site("/usr/lib/python3.12/json/decoder.py", 7) == "decoder.py:7"
    assert _short_site("C:\\work\\src\\repro\\core\\fastpath.py", 9) == (
        "repro/core/fastpath.py:9"
    )
