"""Tests for the wall-clock phase timers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.profile import PhaseTimers


class TestPhaseTimers:
    def test_add_accumulates_seconds_and_counts(self):
        timers = PhaseTimers()
        timers.add("kernel.run", 0.25)
        timers.add("kernel.run", 0.75)
        assert timers.seconds("kernel.run") == pytest.approx(1.0)
        assert timers.count("kernel.run") == 2
        assert len(timers) == 1

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimers().add("x", -0.1)

    def test_unknown_phase_reads_zero(self):
        timers = PhaseTimers()
        assert timers.seconds("never") == 0.0
        assert timers.count("never") == 0

    def test_phase_context_manager_times_block(self):
        timers = PhaseTimers()
        with timers.phase("setup"):
            pass
        assert timers.count("setup") == 1
        assert timers.seconds("setup") >= 0.0

    def test_phase_records_even_on_exception(self):
        timers = PhaseTimers()
        with pytest.raises(RuntimeError):
            with timers.phase("boom"):
                raise RuntimeError("x")
        assert timers.count("boom") == 1

    def test_total_seconds_sums_phases(self):
        timers = PhaseTimers()
        timers.add("a", 1.0)
        timers.add("b", 2.0)
        assert timers.total_seconds == pytest.approx(3.0)

    def test_as_dict_is_sorted_and_json_ready(self):
        timers = PhaseTimers()
        timers.add("b", 2.0)
        timers.add("a", 1.0)
        rendered = timers.as_dict()
        assert list(rendered) == ["a", "b"]
        assert rendered["a"] == {"seconds": 1.0, "count": 1}

    def test_merge_timers(self):
        a, b = PhaseTimers(), PhaseTimers()
        a.add("run", 1.0)
        b.add("run", 2.0)
        b.add("setup", 0.5)
        a.merge(b)
        assert a.seconds("run") == pytest.approx(3.0)
        assert a.count("run") == 2
        assert a.seconds("setup") == pytest.approx(0.5)

    def test_merge_accepts_as_dict_rendering(self):
        a, b = PhaseTimers(), PhaseTimers()
        a.add("run", 1.0)
        b.add("run", 2.0)
        a.merge(b.as_dict())
        assert a.seconds("run") == pytest.approx(3.0)
        assert a.count("run") == 2


_phase_events = st.lists(
    st.tuples(
        st.sampled_from(["setup", "run", "teardown", "kernel", "flush"]),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    ),
    max_size=40,
)


def _filled(events) -> PhaseTimers:
    timers = PhaseTimers()
    for name, seconds in events:
        timers.add(name, seconds)
    return timers


class TestPhaseTimersMergeProperties:
    """Merging a timer set and merging its ``as_dict`` rendering must be the
    same operation — the cross-process aggregation path (JSON over the wire)
    may not drift from the in-process one."""

    @given(_phase_events, _phase_events)
    def test_merge_of_rendering_equals_merge_of_timers(self, base, extra):
        via_timers = _filled(base)
        via_timers.merge(_filled(extra))
        via_dict = _filled(base)
        via_dict.merge(_filled(extra).as_dict())
        assert via_timers.as_dict() == via_dict.as_dict()

    @given(_phase_events)
    def test_as_dict_round_trips_through_merge(self, events):
        original = _filled(events)
        rebuilt = PhaseTimers()
        rebuilt.merge(original.as_dict())
        assert rebuilt.as_dict() == original.as_dict()
        assert rebuilt.total_seconds == pytest.approx(original.total_seconds)

    @given(_phase_events, _phase_events)
    def test_merge_conserves_totals_and_counts(self, base, extra):
        merged = _filled(base)
        merged.merge(_filled(extra))
        everything = _filled(base + extra)
        rendered, expected = merged.as_dict(), everything.as_dict()
        assert list(rendered) == list(expected)
        for name, entry in expected.items():
            assert rendered[name]["count"] == entry["count"]
            # Merging pre-summed groups reassociates float addition, so
            # seconds agree to rounding, not bit for bit.
            assert rendered[name]["seconds"] == pytest.approx(entry["seconds"])
