"""Telemetry neutrality: the live-telemetry plane is pure observation.

Same gate style as ``tests/gnutella/test_trace_digest.py``: a run with the
exposition sidecar, rolling windows, and access logging all enabled must
produce an event-stream digest bit-identical to a plain run's, on every
engine.
"""

import json
import urllib.request

import pytest

from repro.gnutella.config import GnutellaConfig
from repro.gnutella.simulation import simulate_task
from repro.obs.record import record_run, record_run_dir
from repro.obs.telemetry.accesslog import ACCESS_LOG_SCHEMA
from repro.obs.telemetry.exposition import parse_prometheus


def _config(**overrides) -> GnutellaConfig:
    base = dict(
        n_users=25,
        n_items=1000,
        horizon=2 * 3600.0,
        warmup_hours=0,
        dynamic=True,
    )
    base.update(overrides)
    return GnutellaConfig(**base)


@pytest.mark.parametrize("engine", ["fast", "fast-reference", "detailed"])
def test_telemetered_run_digest_matches_plain(engine, tmp_path):
    config = _config()
    _, plain = simulate_task(config, engine, hash_events=True)
    recorded = record_run(
        config,
        engine,
        telemetry_port=0,
        access_log=tmp_path / "access.jsonl",
        access_log_sample=0.5,
    )
    assert recorded.event_digest == plain
    # And the plane actually observed the run, not an empty world.
    snapshot = recorded.registry.snapshot()
    queries = snapshot["telemetry.queries"]["values"]
    assert sum(queries.values()) > 0
    assert recorded.telemetry_port not in (None, 0)
    assert recorded.access_log_lines is not None


def test_live_telemetry_populates_rolling_and_histogram():
    recorded = record_run(_config(), "fast", telemetry_port=0)
    snapshot = recorded.registry.snapshot()
    hist = snapshot["telemetry.query_seconds"]["values"][""]
    assert hist["count"] > 0
    assert hist["sum"] >= 0.0
    # Rolling gauges published under the default serve prefix, keyed by
    # simulated seconds (windows stay meaningful without a wall clock).
    rolling = snapshot["serve.rolling_qps"]["values"]
    assert any("window=" in label for label in rolling)


def test_sidecar_scrape_during_run_is_parseable():
    """The exposition sidecar serves a valid document while bound."""
    from repro.obs.telemetry.exposition import render_prometheus
    from repro.obs.telemetry.httpd import TelemetrySidecar

    recorded = record_run(_config(), "fast", telemetry_port=0)
    # The run's sidecar is torn down with the run; re-serve its registry
    # to exercise the exact scrape path repro-top uses.
    with TelemetrySidecar(
        lambda: render_prometheus(recorded.registry.snapshot())
    ) as sidecar:
        with urllib.request.urlopen(sidecar.url, timeout=5.0) as response:
            parsed = parse_prometheus(response.read().decode("utf-8"))
    assert "telemetry_queries" in parsed
    assert "telemetry_query_seconds_bucket" in parsed


def test_access_log_lines_are_schema_valid(tmp_path):
    log_path = tmp_path / "access.jsonl"
    recorded = record_run(_config(), "fast", access_log=log_path)
    lines = [json.loads(line) for line in log_path.read_text().splitlines()]
    assert len(lines) == recorded.access_log_lines > 0
    for line in lines:
        assert line["schema"] == ACCESS_LOG_SCHEMA
        assert line["op"] == "query"
        assert line["trace_id"].startswith("q-")
        assert line["outcome"] in ("hit", "miss")
        assert line["service_s"] >= 0.0


def test_sampled_access_log_is_a_stable_subset(tmp_path):
    """Hash-based sampling: a sampled run logs a subset of the full run's
    trace ids, identically on every repetition."""
    config = _config()
    full = tmp_path / "full.jsonl"
    half_a = tmp_path / "half-a.jsonl"
    half_b = tmp_path / "half-b.jsonl"
    record_run(config, "fast", access_log=full, access_log_sample=1.0)
    record_run(config, "fast", access_log=half_a, access_log_sample=0.5)
    record_run(config, "fast", access_log=half_b, access_log_sample=0.5)

    def ids(path):
        return [json.loads(line)["trace_id"] for line in path.read_text().splitlines()]

    assert ids(half_a) == ids(half_b)
    assert set(ids(half_a)) <= set(ids(full))
    assert 0 < len(ids(half_a)) < len(ids(full))


def test_record_run_dir_writes_telemetry_block_and_access_log(tmp_path):
    out = tmp_path / "record"
    summary = record_run_dir(
        _config(),
        out,
        "fast",
        telemetry_port=0,
        access_log="access.jsonl",
    )
    telemetry = summary["telemetry"]
    assert telemetry["port"] not in (None, 0)
    assert telemetry["access_log"] == str(out / "access.jsonl")
    assert telemetry["access_log_lines"] > 0
    assert "access.jsonl" in summary["files"]
    # The relative access-log path landed inside the record directory.
    assert (out / "access.jsonl").exists()
    assert len((out / "access.jsonl").read_text().splitlines()) == (
        telemetry["access_log_lines"]
    )
