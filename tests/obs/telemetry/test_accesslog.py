"""Access log: deterministic sampling, line schema, and stream ownership."""

import io
import json

from repro.obs.telemetry.accesslog import (
    ACCESS_LOG_FIELDS,
    ACCESS_LOG_SCHEMA,
    AccessLogger,
    sampled_in,
)


def _record(trace_id: str = "t-00000001") -> dict:
    return {
        "trace_id": trace_id,
        "op": "query",
        "initiator": 7,
        "item": 123,
        "deadline_s": 0.5,
        "queue_wait_s": 0.001,
        "service_s": 0.02,
        "outcome": "ok",
    }


class TestSampledIn:
    def test_full_rate_keeps_everything(self):
        assert sampled_in("anything", 1.0)
        assert sampled_in("anything", 2.0)

    def test_zero_rate_keeps_nothing(self):
        assert not sampled_in("anything", 0.0)
        assert not sampled_in("anything", -0.5)

    def test_decision_is_deterministic(self):
        ids = [f"t-{i:08x}" for i in range(200)]
        first = [sampled_in(t, 0.3) for t in ids]
        second = [sampled_in(t, 0.3) for t in ids]
        assert first == second

    def test_fraction_roughly_matches_rate(self):
        ids = [f"t-{i:08x}" for i in range(2000)]
        kept = sum(sampled_in(t, 0.25) for t in ids)
        assert 0.15 < kept / len(ids) < 0.35

    def test_raising_the_rate_never_drops_a_kept_id(self):
        ids = [f"t-{i:08x}" for i in range(500)]
        low = {t for t in ids if sampled_in(t, 0.1)}
        high = {t for t in ids if sampled_in(t, 0.5)}
        assert low <= high


class TestAccessLogger:
    def test_writes_schema_stamped_sorted_json_lines(self):
        stream = io.StringIO()
        logger = AccessLogger(stream)
        assert logger.log(_record())
        logger.close()
        line = json.loads(stream.getvalue())
        assert line["schema"] == ACCESS_LOG_SCHEMA
        assert all(field in line for field in ACCESS_LOG_FIELDS)
        # Sorted keys: byte-stable output for identical records.
        raw = stream.getvalue().strip()
        assert raw == json.dumps(line, sort_keys=True)

    def test_sampling_filters_lines_and_counts_both_sides(self):
        stream = io.StringIO()
        logger = AccessLogger(stream, sample=0.3)
        ids = [f"t-{i:08x}" for i in range(100)]
        for trace_id in ids:
            logger.log(_record(trace_id))
        expected = sum(sampled_in(t, 0.3) for t in ids)
        assert logger.seen == 100
        assert logger.written == expected
        assert len(stream.getvalue().splitlines()) == expected

    def test_path_target_appends_and_creates_parents(self, tmp_path):
        target = tmp_path / "logs" / "access.jsonl"
        logger = AccessLogger(target)
        logger.log(_record("t-aa"))
        logger.close()
        # Reopening appends rather than truncating.
        logger = AccessLogger(target)
        logger.log(_record("t-bb"))
        logger.close()
        lines = target.read_text().splitlines()
        assert [json.loads(line)["trace_id"] for line in lines] == ["t-aa", "t-bb"]

    def test_close_leaves_borrowed_streams_open(self):
        stream = io.StringIO()
        logger = AccessLogger(stream)
        logger.log(_record())
        logger.close()
        assert not stream.closed

    def test_close_closes_owned_files(self, tmp_path):
        target = tmp_path / "access.jsonl"
        logger = AccessLogger(target)
        logger.log(_record())
        logger.close()
        assert logger._fh.closed
