"""Snapshot merging: per-type semantics and equivalence to single-process runs."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry.aggregate import merge_snapshots
from repro.obs.telemetry.exposition import parse_prometheus, render_prometheus
from repro.sim.monitor import HourlyBuckets, TimeSeries, WelfordStats


def _counter_snapshot(**values: float) -> dict:
    registry = MetricsRegistry()
    counter = registry.counter("requests")
    for status, amount in values.items():
        counter.inc(amount, status=status)
    return registry.snapshot()


class TestCounterAndGauge:
    def test_counters_sum_per_label(self):
        merged = merge_snapshots(
            [_counter_snapshot(ok=3.0, timeout=1.0), _counter_snapshot(ok=2.0)]
        )
        assert merged["requests"]["type"] == "counter"
        assert merged["requests"]["values"] == {
            "status=ok": 5.0,
            "status=timeout": 1.0,
        }

    def test_gauges_last_write_wins_in_input_order(self):
        def gauge_snapshot(value: float) -> dict:
            registry = MetricsRegistry()
            registry.gauge("depth").set(value)
            return registry.snapshot()

        merged = merge_snapshots([gauge_snapshot(3.0), gauge_snapshot(7.0)])
        assert merged["depth"]["values"][""] == 7.0

    def test_empty_input_merges_to_empty(self):
        assert merge_snapshots([]) == {}


class TestHistogram:
    def test_merge_equals_single_histogram_over_combined_data(self):
        bounds = (0.01, 0.1, 1.0)
        batches = ([0.005, 0.05, 0.5], [0.02, 0.2, 2.0, 0.08])

        def snapshot(values) -> dict:
            registry = MetricsRegistry()
            hist = registry.histogram("latency", bounds=bounds)
            for v in values:
                hist.observe(v)
            return registry.snapshot()

        merged = merge_snapshots([snapshot(b) for b in batches])
        combined = snapshot([v for batch in batches for v in batch])
        got = merged["latency"]["values"][""]
        want = combined["latency"]["values"][""]
        assert got["buckets"] == want["buckets"]
        assert got["count"] == want["count"]
        assert got["sum"] == pytest.approx(want["sum"])
        assert got["mean"] == pytest.approx(want["mean"])
        assert got["std"] == pytest.approx(want["std"])
        assert got["min"] == want["min"]
        assert got["max"] == want["max"]
        assert merged["latency"]["bounds"] == list(bounds)

    def test_bounds_mismatch_raises(self):
        def snapshot(bounds) -> dict:
            registry = MetricsRegistry()
            registry.histogram("latency", bounds=bounds).observe(0.05)
            return registry.snapshot()

        with pytest.raises(ConfigurationError, match="bounds differ"):
            merge_snapshots([snapshot((0.01, 0.1)), snapshot((0.01, 1.0))])


class TestAdoptedTypes:
    def test_welford_merge_matches_direct_accumulation(self):
        def snapshot(values) -> dict:
            stats = WelfordStats()
            for v in values:
                stats.add(v)
            registry = MetricsRegistry()
            registry.register("delay", stats)
            return registry.snapshot()

        batches = ([1.0, 2.0, 3.0], [10.0, 20.0])
        merged = merge_snapshots([snapshot(b) for b in batches])
        direct = WelfordStats()
        for batch in batches:
            for v in batch:
                direct.add(v)
        block = merged["delay"]
        assert block["type"] == "welford"
        assert block["count"] == direct.count
        assert block["mean"] == pytest.approx(direct.mean)
        assert block["std"] == pytest.approx(direct.std)
        assert block["min"] == direct.min
        assert block["max"] == direct.max

    def test_numeric_values_sum(self):
        def snapshot(n: int) -> dict:
            registry = MetricsRegistry()
            registry.register("total", lambda: n)
            return registry.snapshot()

        merged = merge_snapshots([snapshot(3), snapshot(4)])
        assert merged["total"] == {"type": "value", "value": 7}

    def test_non_numeric_values_last_win(self):
        merged = merge_snapshots(
            [
                {"engine": {"type": "value", "value": "fast"}},
                {"engine": {"type": "value", "value": "detailed"}},
            ]
        )
        assert merged["engine"]["value"] == "detailed"

    def test_buckets_pad_to_longer_horizon(self):
        def snapshot(horizon: float, times) -> dict:
            buckets = HourlyBuckets(horizon=horizon, width=3600.0)
            for t in times:
                buckets.add(t)
            registry = MetricsRegistry()
            registry.register("hits", buckets)
            return registry.snapshot()

        merged = merge_snapshots(
            [snapshot(7200.0, [100.0, 4000.0]), snapshot(10800.0, [8000.0])]
        )
        assert merged["hits"]["counts"] == [1, 1, 1]

    def test_bucket_width_mismatch_raises(self):
        a = {"hits": {"type": "buckets", "width": 3600.0, "counts": [1]}}
        b = {"hits": {"type": "buckets", "width": 1800.0, "counts": [1]}}
        with pytest.raises(ConfigurationError, match="widths differ"):
            merge_snapshots([a, b])

    def test_timeseries_interleave_sorted_by_time(self):
        def snapshot(points) -> dict:
            series = TimeSeries("peers")
            for t, v in points:
                series.record(t, v)
            registry = MetricsRegistry()
            registry.register("peers", series)
            return registry.snapshot()

        merged = merge_snapshots(
            [snapshot([(1.0, 10.0), (3.0, 30.0)]), snapshot([(2.0, 20.0)])]
        )
        assert merged["peers"]["times"] == [1.0, 2.0, 3.0]
        assert merged["peers"]["values"] == [10.0, 20.0, 30.0]


class TestErrors:
    def test_type_change_across_snapshots_raises(self):
        a = _counter_snapshot(ok=1.0)
        b = {"requests": {"type": "gauge", "values": {"": 1.0}}}
        with pytest.raises(ConfigurationError, match="type changed"):
            merge_snapshots([a, b])

    def test_unmergeable_type_raises(self):
        with pytest.raises(ConfigurationError, match="unmergeable"):
            merge_snapshots([{"x": {"type": "mystery"}}])


class TestExpositionCompatibility:
    def test_merged_snapshot_renders_like_a_single_process_one(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(5.0, status="ok")
        hist = registry.histogram("latency", bounds=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        merged = merge_snapshots([registry.snapshot(), registry.snapshot()])
        parsed = parse_prometheus(render_prometheus(merged))
        (_, total), = parsed["requests"]["samples"]
        assert total == 10.0
        by_le = {labels["le"]: v for labels, v in parsed["latency_bucket"]["samples"]}
        assert by_le["+Inf"] == 4.0
        (_, total_sum), = parsed["latency_sum"]["samples"]
        assert total_sum == pytest.approx(2 * (0.05 + 0.5))
        assert not math.isnan(total_sum)
