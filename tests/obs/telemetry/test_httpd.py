"""The exposition sidecar: a /metrics listener over a render callable."""

import urllib.error
import urllib.request

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry.exposition import (
    CONTENT_TYPE,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.telemetry.httpd import TelemetrySidecar


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers, response.read().decode("utf-8")


class TestTelemetrySidecar:
    def test_serves_metrics_with_the_exposition_content_type(self):
        registry = MetricsRegistry()
        registry.counter("demo.requests").inc(3.0, status="ok")
        with TelemetrySidecar(lambda: render_prometheus(registry.snapshot())) as sidecar:
            status, headers, body = _get(sidecar.url)
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        parsed = parse_prometheus(body)
        assert parsed["demo_requests"]["samples"] == [({"status": "ok"}, 3.0)]

    def test_scrapes_see_live_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("demo.ticks")
        with TelemetrySidecar(lambda: render_prometheus(registry.snapshot())) as sidecar:
            counter.inc()
            _, _, first = _get(sidecar.url)
            counter.inc()
            _, _, second = _get(sidecar.url)
        assert parse_prometheus(first)["demo_ticks"]["samples"] == [({}, 1.0)]
        assert parse_prometheus(second)["demo_ticks"]["samples"] == [({}, 2.0)]

    def test_unknown_path_is_404(self):
        with TelemetrySidecar(lambda: "") as sidecar:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"http://{sidecar.host}:{sidecar.port}/nope")
            assert err.value.code == 404

    def test_ephemeral_port_is_bound_on_start(self):
        sidecar = TelemetrySidecar(lambda: "")
        assert sidecar.port == 0
        try:
            port = sidecar.start()
            assert port != 0
            assert sidecar.port == port
            assert sidecar.url.endswith(f":{port}/metrics")
        finally:
            sidecar.stop()

    def test_stop_refuses_further_connections(self):
        sidecar = TelemetrySidecar(lambda: "")
        sidecar.start()
        url = sidecar.url
        sidecar.stop()
        with pytest.raises(urllib.error.URLError):
            _get(url)

    def test_stop_is_idempotent(self):
        sidecar = TelemetrySidecar(lambda: "")
        sidecar.start()
        sidecar.stop()
        sidecar.stop()
