"""repro-top: scrape target validation and dashboard rendering."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry.exposition import parse_prometheus, render_prometheus
from repro.obs.telemetry.httpd import TelemetrySidecar
from repro.obs.telemetry.rolling import RollingTelemetry
from repro.obs.telemetry.top import main, render_dashboard, scrape


def _metrics(ok: float, timeout: float, depth: float, now: float) -> dict:
    registry = MetricsRegistry()
    requests = registry.counter("serve.requests")
    requests.inc(ok, status="ok")
    requests.inc(timeout, status="timeout")
    registry.gauge("serve.queue_depth").set(depth)
    latency = registry.histogram("serve.latency_seconds")
    rolling = RollingTelemetry((10.0,), slo_latency_s=0.5)
    for i in range(int(ok)):
        latency.observe(0.02)
        rolling.observe(now - 1.0, 0.02, ok=True)
    rolling.publish(registry, now)
    return parse_prometheus(render_prometheus(registry.snapshot()))


class TestScrape:
    def test_requires_exactly_one_target(self):
        with pytest.raises(ValueError):
            scrape()
        with pytest.raises(ValueError):
            scrape(port=1234, url="http://localhost:1/metrics")

    def test_scrapes_an_http_endpoint(self):
        registry = MetricsRegistry()
        registry.counter("demo.polls").inc()
        with TelemetrySidecar(lambda: render_prometheus(registry.snapshot())) as sidecar:
            metrics = scrape(url=sidecar.url)
        assert metrics["demo_polls"]["samples"] == [({}, 1.0)]


class TestRenderDashboard:
    def test_first_frame_has_totals_but_no_rate(self):
        frame = render_dashboard(None, _metrics(10, 2, 3, now=5.0), dt=0.0)
        assert "requests         12 total" in frame
        assert "ok" in frame and "timeout" in frame
        assert "queue depth       3" in frame
        # No previous scrape: interval QPS is unknowable, shown as '-'.
        assert "interval QPS        -" in frame

    def test_delta_frame_computes_interval_qps(self):
        prev = _metrics(10, 2, 3, now=5.0)
        curr = _metrics(30, 2, 1, now=7.0)
        frame = render_dashboard(prev, curr, dt=2.0)
        # (32 - 12) requests over 2 seconds.
        assert "interval QPS     10.0" in frame
        assert "(+20)" in frame

    def test_window_table_and_lifetime_mean(self):
        frame = render_dashboard(None, _metrics(5, 0, 0, now=5.0), dt=0.0)
        assert "window" in frame and "burn" in frame
        assert "10s" in frame
        assert "lifetime mean service latency 20.000 ms over 5 requests" in frame

    def test_empty_scrape_renders_without_crashing(self):
        frame = render_dashboard(None, {}, dt=0.0)
        assert "requests" in frame


class TestMain:
    def test_one_plain_poll_against_a_sidecar(self, capsys):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(4.0, status="ok")
        with TelemetrySidecar(lambda: render_prometheus(registry.snapshot())) as sidecar:
            code = main(["--url", sidecar.url, "--iterations", "1", "--plain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro-top poll 1" in out
        assert "requests          4 total" in out

    def test_unreachable_target_exits_2(self, capsys):
        sidecar = TelemetrySidecar(lambda: "")
        sidecar.start()
        url = sidecar.url
        sidecar.stop()
        code = main(["--url", url, "--iterations", "1", "--plain"])
        assert code == 2
        assert "scrape failed" in capsys.readouterr().err

    def test_requires_exactly_one_of_port_and_url(self, capsys):
        with pytest.raises(SystemExit):
            main(["--iterations", "1"])
        with pytest.raises(SystemExit):
            main(["--port", "1", "--url", "http://x/metrics"])
