"""Rolling windows: pruning, quantiles, SLO burn, and gauge publication."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry.rolling import DEFAULT_WINDOWS, RollingTelemetry, RollingWindow


class TestRollingWindow:
    def test_rejects_non_positive_window(self):
        with pytest.raises(ConfigurationError):
            RollingWindow(0.0)
        with pytest.raises(ConfigurationError):
            RollingWindow(-1.0)

    def test_count_prunes_old_observations(self):
        window = RollingWindow(10.0)
        window.observe(0.0, 0.1)
        window.observe(5.0, 0.1)
        window.observe(9.0, 0.1)
        assert window.count(9.0) == 3
        # At t=12 the t=0 observation (older than 12 - 10) has aged out.
        assert window.count(12.0) == 2
        assert window.count(100.0) == 0

    def test_rate_is_count_over_window(self):
        window = RollingWindow(10.0)
        for t in range(5):
            window.observe(float(t), 0.01)
        assert window.rate(5.0) == 0.5

    def test_percentile_nearest_rank(self):
        window = RollingWindow(60.0)
        for i, latency in enumerate((0.1, 0.2, 0.3, 0.4)):
            window.observe(float(i), latency)
        assert window.percentile(4.0, 0.5) == 0.2
        assert window.percentile(4.0, 0.99) == 0.4

    def test_percentile_of_empty_window_is_nan(self):
        assert math.isnan(RollingWindow(10.0).percentile(0.0, 0.5))

    def test_bad_fraction(self):
        window = RollingWindow(60.0)
        window.observe(0.0, 0.1, ok=True)
        window.observe(1.0, 0.1, ok=False)
        window.observe(2.0, 0.1, ok=False)
        window.observe(3.0, 0.1, ok=True)
        assert window.bad_fraction(3.0) == 0.5
        assert RollingWindow(10.0).bad_fraction(0.0) == 0.0

    def test_burn_rate_scales_bad_fraction_by_budget(self):
        window = RollingWindow(60.0)
        window.observe(0.0, 0.1, ok=False)
        window.observe(1.0, 0.1, ok=True)
        assert window.burn_rate(1.0, 0.01) == pytest.approx(50.0)

    def test_burn_rate_rejects_non_positive_budget(self):
        with pytest.raises(ConfigurationError):
            RollingWindow(10.0).burn_rate(0.0, 0.0)


class TestRollingTelemetry:
    def test_rejects_empty_window_list(self):
        with pytest.raises(ConfigurationError):
            RollingTelemetry(())

    def test_default_windows(self):
        telemetry = RollingTelemetry()
        assert set(telemetry.windows) == set(DEFAULT_WINDOWS)

    def test_slow_ok_request_burns_the_budget(self):
        # A request that succeeded but blew the latency objective is bad
        # for SLO purposes — the whole point of a latency SLO.
        telemetry = RollingTelemetry((10.0,), slo_latency_s=0.1, slo_error_budget=0.5)
        telemetry.observe(0.0, latency_s=5.0, ok=True)
        telemetry.observe(0.0, latency_s=0.05, ok=True)
        assert telemetry.windows[10.0].bad_fraction(0.0) == 0.5
        assert telemetry.windows[10.0].burn_rate(0.0, 0.5) == pytest.approx(1.0)

    def test_failed_fast_request_is_still_bad(self):
        telemetry = RollingTelemetry((10.0,), slo_latency_s=1.0)
        telemetry.observe(0.0, latency_s=0.001, ok=False)
        assert telemetry.windows[10.0].bad_fraction(0.0) == 1.0

    def test_publish_sets_labeled_gauges(self):
        registry = MetricsRegistry()
        telemetry = RollingTelemetry((10.0, 60.0), prefix="serve")
        for t in range(5):
            telemetry.observe(float(t), 0.02, ok=True)
        telemetry.publish(registry, 4.0)
        latency = registry.gauge("serve.rolling_latency_seconds")
        assert latency.get(window="10s", quantile="0.5") == 0.02
        assert latency.get(window="60s", quantile="0.99") == 0.02
        qps = registry.gauge("serve.rolling_qps")
        assert qps.get(window="10s") == 0.5
        burn = registry.gauge("serve.slo_burn_rate")
        assert burn.get(window="10s") == 0.0

    def test_as_dict_shape(self):
        telemetry = RollingTelemetry(
            (10.0,), slo_latency_s=0.25, slo_error_budget=0.02
        )
        telemetry.observe(0.0, 0.05)
        block = telemetry.as_dict(0.0)
        assert block["slo_latency_s"] == 0.25
        assert block["slo_error_budget"] == 0.02
        window = block["windows"]["10s"]
        assert window["requests"] == 1.0
        assert window["qps"] == 0.1
        assert set(window) == {
            "requests", "qps", "p50_s", "p95_s", "p99_s", "p999_s", "burn_rate",
        }
        assert window["p50_s"] == 0.05
        assert window["burn_rate"] == 0.0
