"""Prometheus exposition: rendering rules, escaping, and the parser round-trip."""

import math

from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry.exposition import (
    CONTENT_TYPE,
    parse_prometheus,
    render_prometheus,
    sanitize_name,
)
from repro.sim.monitor import HourlyBuckets, TimeSeries, WelfordStats


class TestSanitizeName:
    def test_dots_become_underscores(self):
        assert sanitize_name("serve.latency_seconds") == "serve_latency_seconds"

    def test_leading_digit_is_replaced(self):
        assert sanitize_name("9lives") == "_lives"

    def test_interior_digits_and_colons_survive(self):
        assert sanitize_name("engine:v2.count") == "engine:v2_count"

    def test_empty_name_maps_to_underscore(self):
        assert sanitize_name("") == "_"


class TestContentType:
    def test_announces_v0_0_4(self):
        assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def _registry_with_traffic() -> MetricsRegistry:
    registry = MetricsRegistry()
    requests = registry.counter("serve.requests")
    requests.inc(status="ok")
    requests.inc(status="ok")
    requests.inc(status="timeout")
    registry.gauge("serve.queue_depth").set(3.0)
    latency = registry.histogram("serve.latency_seconds", bounds=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.05, 0.5, 5.0):
        latency.observe(value)
    return registry


class TestRenderRoundTrip:
    def test_counter_samples_round_trip(self):
        parsed = parse_prometheus(render_prometheus(_registry_with_traffic().snapshot()))
        family = parsed["serve_requests"]
        assert family["type"] == "counter"
        samples = {tuple(sorted(labels.items())): v for labels, v in family["samples"]}
        assert samples[(("status", "ok"),)] == 2.0
        assert samples[(("status", "timeout"),)] == 1.0

    def test_gauge_round_trips(self):
        parsed = parse_prometheus(render_prometheus(_registry_with_traffic().snapshot()))
        family = parsed["serve_queue_depth"]
        assert family["type"] == "gauge"
        assert family["samples"] == [({}, 3.0)]

    def test_histogram_buckets_are_cumulative_with_explicit_inf(self):
        parsed = parse_prometheus(render_prometheus(_registry_with_traffic().snapshot()))
        buckets = parsed["serve_latency_seconds_bucket"]
        # The TYPE line names the family; sample names fall back to it.
        assert buckets["type"] == "histogram"
        by_le = {labels["le"]: v for labels, v in buckets["samples"]}
        assert by_le["0.01"] == 1.0
        assert by_le["0.1"] == 3.0
        assert by_le["1"] == 4.0
        assert by_le["+Inf"] == 5.0

    def test_histogram_sum_and_count_round_trip(self):
        parsed = parse_prometheus(render_prometheus(_registry_with_traffic().snapshot()))
        (_, total_sum), = parsed["serve_latency_seconds_sum"]["samples"]
        (_, count), = parsed["serve_latency_seconds_count"]["samples"]
        assert total_sum == sum((0.005, 0.05, 0.05, 0.5, 5.0))
        assert count == 5.0

    def test_legacy_snapshot_without_sum_reconstructs_from_mean(self):
        snapshot = _registry_with_traffic().snapshot()
        series = snapshot["serve.latency_seconds"]["values"][""]
        expected = series["mean"] * series["count"]
        del series["sum"]
        parsed = parse_prometheus(render_prometheus(snapshot))
        (_, total_sum), = parsed["serve_latency_seconds_sum"]["samples"]
        assert total_sum == expected


class TestAdoptedRendering:
    def test_welford_renders_moment_gauges(self):
        stats = WelfordStats()
        for v in (1.0, 2.0, 3.0):
            stats.add(v)
        registry = MetricsRegistry()
        registry.register("sim.delay", stats)
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        assert parsed["sim_delay_count"]["samples"] == [({}, 3.0)]
        assert parsed["sim_delay_mean"]["samples"] == [({}, 2.0)]
        assert parsed["sim_delay_min"]["samples"] == [({}, 1.0)]
        assert parsed["sim_delay_max"]["samples"] == [({}, 3.0)]

    def test_numeric_value_renders_as_gauge_and_non_numeric_is_skipped(self):
        registry = MetricsRegistry()
        registry.register("sim.total_queries", lambda: 17)
        registry.register("sim.engine_name", lambda: "fast")
        text = render_prometheus(registry.snapshot())
        parsed = parse_prometheus(text)
        assert parsed["sim_total_queries"]["samples"] == [({}, 17.0)]
        assert "sim_engine_name" not in parsed

    def test_hourly_buckets_render_as_total_counter(self):
        buckets = HourlyBuckets(horizon=7200.0, width=3600.0)
        buckets.add(100.0)
        buckets.add(4000.0)
        buckets.add(4100.0)
        registry = MetricsRegistry()
        registry.register("sim.hits", buckets)
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        assert parsed["sim_hits_total"]["type"] == "counter"
        assert parsed["sim_hits_total"]["samples"] == [({}, 3.0)]

    def test_timeseries_renders_last_value(self):
        series = TimeSeries("peers")
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        registry = MetricsRegistry()
        registry.register("sim.peers", series)
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        assert parsed["sim_peers"]["samples"] == [({}, 20.0)]


class TestEdgeCases:
    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""
        assert parse_prometheus("") == {}

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("odd.labels").inc(path='a"b\\c', note="line\nbreak")
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        (labels, value), = parsed["odd_labels"]["samples"]
        assert value == 1.0
        assert labels["path"] == 'a"b\\c'
        assert labels["note"] == "line\nbreak"

    def test_unset_gauge_renders_nan(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("maybe.value")
        gauge.set(math.nan)
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        (_, value), = parsed["maybe_value"]["samples"]
        assert math.isnan(value)

    def test_parser_handles_inf_values(self):
        parsed = parse_prometheus("x 0\ny +Inf\nz -Inf\n")
        assert parsed["y"]["samples"] == [({}, math.inf)]
        assert parsed["z"]["samples"] == [({}, -math.inf)]
