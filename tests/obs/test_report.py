"""``repro-report``: self-contained HTML from record directories and run
manifests — no external references, convergence in the headline, charts
drawn from the recorded series."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.gnutella.config import GnutellaConfig
from repro.obs.record import record_run_dir
from repro.obs.report import main, render_report, write_report

HOUR = 3600.0


@pytest.fixture(scope="module")
def record_dir(tmp_path_factory):
    config = GnutellaConfig(
        n_users=40, n_items=2000, horizon=4 * HOUR, warmup_hours=0, dynamic=True
    )
    out = tmp_path_factory.mktemp("rec") / "run"
    record_run_dir(config, out, topology_interval=HOUR)
    return out


def test_record_report_is_self_contained(record_dir):
    html_text = render_report(record_dir)
    assert "http://" not in html_text
    assert "https://" not in html_text
    assert "<script" not in html_text
    assert "<link" not in html_text
    assert "src=" not in html_text


def test_record_report_has_charts_and_convergence(record_dir):
    html_text = render_report(record_dir)
    assert html_text.startswith("<!DOCTYPE html>")
    assert "time to convergence" in html_text
    assert "Convergence detector" in html_text
    assert "<svg" in html_text and "polyline" in html_text
    # Topology was recorded, so degree bars and the churn chart render.
    assert "degree distribution" in html_text
    assert "neighbor churn" in html_text
    assert "Wall-clock phases" in html_text
    assert "Event-stream digest" in html_text


def test_write_report_and_cli_on_record_dir(record_dir, capsys):
    out = record_dir / "report.html"
    assert write_report(record_dir, out) == out
    assert out.stat().st_size > 1000
    assert main([str(record_dir)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "record"
    assert payload["report"] == str(record_dir / "report.html")


def test_manifest_report(tmp_path, capsys):
    manifest = {
        "schema": "repro.orchestrate/manifest/v1",
        "version": "0.0-test",
        "grid": {"preset": "tiny", "seeds": [0, 1]},
        "jobs": 2,
        "tasks": [
            {
                "task_id": "fig1/seed=0/static",
                "engine": "fast",
                "cache_hit": False,
                "result_digest": "a" * 64,
                "error": None,
                "convergence": {"converged": True, "time": 2.0},
            },
            {
                "task_id": "fig1/seed=0/dynamic",
                "engine": "fast",
                "cache_hit": True,
                "result_digest": "b" * 64,
                "error": None,
                "convergence": {"converged": False, "time": None},
            },
        ],
        "obs": {"phases": {"engine.run": {"seconds": 1.25, "count": 2}}},
        "cache": {"hits": 1, "executed": 1, "errors": 0},
    }
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(manifest))
    html_text = render_report(path)
    assert "http://" not in html_text and "https://" not in html_text
    assert "repro grid report" in html_text
    assert "fig1/seed=0/static" in html_text
    assert "2 h" in html_text  # converged task
    assert "did not converge" in html_text  # the other one
    assert "engine.run" in html_text
    assert main([str(path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "manifest"
    assert payload["report"] == str(tmp_path / "manifest.report.html")


def test_report_rejects_non_manifest_json(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(ConfigurationError):
        render_report(path)
    assert main([str(path)]) == 1


def test_report_rejects_missing_source(tmp_path):
    with pytest.raises(ConfigurationError):
        render_report(tmp_path / "nope")
    assert main([str(tmp_path / "nope")]) == 1


def test_report_rejects_dir_without_summary(tmp_path):
    (tmp_path / "empty").mkdir()
    with pytest.raises(ConfigurationError):
        render_report(tmp_path / "empty")


@pytest.fixture(scope="module")
def trial_report_dict():
    from repro.serve.loadgen import LatencySummary, LoadReport

    return LoadReport(
        mode="closed",
        connections=4,
        duration_s=2.0,
        offered_qps=None,
        requests=1000,
        ok=995,
        errors={"timeout": 5},
        dropped=0,
        achieved_qps=497.5,
        latency=LatencySummary.from_samples([0.001 * (i % 20 + 1) for i in range(200)]),
        hit_fraction=0.8,
        sim_time_start=7200.0,
        sim_time_end=7200.0,
    ).as_dict()


def test_serving_trial_report(tmp_path, trial_report_dict):
    path = tmp_path / "load.json"
    path.write_text(json.dumps(trial_report_dict))
    html_text = render_report(path)
    assert html_text.startswith("<!DOCTYPE html>")
    assert "serving report" in html_text
    assert "Latency tail" in html_text
    assert "<svg" in html_text
    assert "timeout" in html_text  # the error table names the error kind
    # Self-contained like every other report.
    assert "http://" not in html_text and "<script" not in html_text


def test_serving_sweep_report(tmp_path, trial_report_dict):
    from repro.serve.loadgen import SWEEP_SCHEMA

    steps = []
    for qps in (50.0, 100.0, 200.0):
        step = dict(trial_report_dict)
        step["mode"] = "open"
        step["offered_qps"] = qps
        step["achieved_qps"] = qps
        steps.append(step)
    sweep = {
        "schema": SWEEP_SCHEMA,
        "steps": steps,
        "offered_qps_axis": [50.0, 100.0, 200.0],
        "knee_qps": 200.0,
        "degraded_at_qps": None,
    }
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(sweep))
    html_text = render_report(path)
    assert "saturation sweep" in html_text
    assert "knee" in html_text.lower()
    assert "polyline" in html_text  # offered-vs-achieved line chart
    assert html_text.count("<svg") >= 2  # throughput + p99 charts
