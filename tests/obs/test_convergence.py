"""The convergence detector: suffix semantics (dropped AND stayed down),
threshold derivation, edge cases, and the metrics-driven entry point."""

import pytest

from repro.errors import ConfigurationError
from repro.gnutella.metrics import SimulationMetrics
from repro.obs.convergence import (
    ConvergenceReport,
    convergence_from_metrics,
    detect_convergence,
)

HOUR = 3600.0


def test_converges_at_start_of_trailing_quiet_run():
    # threshold = 0.1 * 10 = 1.0; qualifying suffix starts at t=3.
    report = detect_convergence([0, 1, 2, 3, 4, 5], [10, 8, 4, 1, 0, 1])
    assert report.converged
    assert report.time == 3.0
    assert report.threshold == pytest.approx(1.0)
    assert report.peak == 10.0
    assert report.final == 1.0
    assert report.n_intervals == 6


def test_mid_run_lull_does_not_count():
    # Quiet hours 2-4, but the rate comes back up: not converged.
    report = detect_convergence([0, 1, 2, 3, 4, 5], [30, 20, 1, 0, 1, 25])
    assert not report.converged
    assert report.time is None


def test_never_settling_series_does_not_converge():
    report = detect_convergence([0, 1, 2], [50, 60, 55])
    assert not report.converged
    assert report.final == 55.0


def test_all_zero_series_converges_immediately_with_zero_threshold():
    report = detect_convergence([0, 1, 2, 3], [0, 0, 0, 0])
    assert report.converged
    assert report.time == 0.0
    assert report.threshold == 0.0


def test_short_series_converges_only_if_every_interval_qualifies():
    ok = detect_convergence([0, 1], [0, 0], window=3)
    assert ok.converged and ok.time == 0.0
    bad = detect_convergence([0, 1], [9, 0], window=3)
    assert not bad.converged


def test_window_must_be_sustained():
    # Only the last 2 intervals qualify; window=3 demands 3.
    report = detect_convergence([0, 1, 2, 3, 4], [10, 10, 10, 0, 0], window=3)
    assert not report.converged
    report = detect_convergence([0, 1, 2, 3, 4], [10, 10, 0, 0, 0], window=3)
    assert report.converged and report.time == 2.0


def test_absolute_threshold_overrides_relative():
    report = detect_convergence([0, 1, 2, 3, 4], [10, 5, 4, 4, 3], threshold=4.0)
    assert report.converged
    assert report.time == 2.0
    assert report.threshold == 4.0


def test_empty_series_reports_not_converged():
    report = detect_convergence([], [])
    assert not report.converged
    assert report.n_intervals == 0
    assert report.time is None


def test_validation_errors():
    with pytest.raises(ConfigurationError):
        detect_convergence([0, 1], [1])
    with pytest.raises(ConfigurationError):
        detect_convergence([0], [1], window=0)
    with pytest.raises(ConfigurationError):
        detect_convergence([0], [1], rel_threshold=1.5)


def test_as_dict_is_json_ready():
    report = detect_convergence([0, 1, 2], [4, 0, 0], window=2)
    assert report.as_dict() == {
        "converged": True,
        "time": 1.0,
        "threshold": pytest.approx(0.4),
        "window": 2,
        "peak": 4.0,
        "final": 0.0,
        "n_intervals": 3,
    }
    assert isinstance(report, ConvergenceReport)


def test_convergence_from_metrics_uses_hourly_reconfigurations():
    metrics = SimulationMetrics(horizon=5 * HOUR)
    # 20 reconfigurations in hour 0, 10 in hour 1, then quiet.
    for _ in range(20):
        metrics.record_reconfiguration(30 * 60.0)
    for _ in range(10):
        metrics.record_reconfiguration(HOUR + 10.0)
    metrics.record_reconfiguration(3 * HOUR + 1.0)
    report = convergence_from_metrics(metrics)
    # threshold = 0.1 * 20 = 2; suffix [0, 1, 0] from hour 2 qualifies.
    assert report.converged
    assert report.time == 2.0
    assert report.peak == 20.0


def test_convergence_from_metrics_static_run_converges_at_zero():
    metrics = SimulationMetrics(horizon=4 * HOUR)
    report = convergence_from_metrics(metrics)
    assert report.converged
    assert report.time == 0.0
    assert report.threshold == 0.0
