"""Tests for the Chrome trace-event export and its validator."""

import json

from repro.obs.chrome import (
    CHROME_SCHEMA_VERSION,
    to_chrome,
    validate_chrome,
    write_chrome,
)
from repro.obs.trace import PID_CHURN, PID_QUERY, Tracer


def _tracer() -> Tracer:
    tracer = Tracer()
    tracer.complete("query", "query", 1.0, 0.5, pid=PID_QUERY, tid=3)
    tracer.instant("hop1", "query", 1.1, pid=PID_QUERY, tid=3)
    tracer.instant("login", "churn", 0.0, pid=PID_CHURN, tid=9)
    return tracer


class TestToChrome:
    def test_document_shape(self):
        document = to_chrome(_tracer().events)
        assert set(document) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert document["otherData"]["schema"] == CHROME_SCHEMA_VERSION

    def test_metadata_labels_each_pid(self):
        document = to_chrome(_tracer().events)
        meta = [ev for ev in document["traceEvents"] if ev["ph"] == "M"]
        names = {
            ev["pid"]: ev["args"]["name"]
            for ev in meta
            if ev["name"] == "process_name"
        }
        assert names == {PID_QUERY: "queries", PID_CHURN: "churn"}

    def test_accepts_dicts_for_jsonl_roundtrip(self, tmp_path):
        tracer = _tracer()
        jsonl = tracer.write_jsonl(tmp_path / "t.jsonl")
        from repro.obs.trace import read_jsonl

        document = to_chrome(read_jsonl(jsonl))
        assert validate_chrome(document) == []

    def test_exported_document_is_valid(self):
        assert validate_chrome(to_chrome(_tracer().events)) == []


class TestWriteChrome:
    def test_writes_loadable_json(self, tmp_path):
        path = write_chrome(_tracer().events, tmp_path / "trace.json")
        document = json.loads(path.read_text())
        assert validate_chrome(document) == []


class TestValidateChrome:
    def test_rejects_non_object(self):
        assert validate_chrome([]) != []
        assert validate_chrome(None) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome({}) == ["'traceEvents' must be a list"]

    def test_flags_empty_trace(self):
        assert "'traceEvents' is empty" in validate_chrome({"traceEvents": []})

    def test_flags_missing_keys(self):
        problems = validate_chrome({"traceEvents": [{"name": "x"}]})
        assert any("missing key" in p for p in problems)

    def test_flags_unknown_phase(self):
        ev = {"name": "x", "ph": "Z", "ts": 0, "pid": 1, "tid": 0}
        assert any("unknown phase" in p for p in validate_chrome({"traceEvents": [ev]}))

    def test_flags_span_without_duration(self):
        ev = {"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 0}
        problems = validate_chrome({"traceEvents": [ev]})
        assert any("'dur'" in p for p in problems)

    def test_flags_negative_timestamp(self):
        ev = {"name": "x", "ph": "i", "ts": -1, "pid": 1, "tid": 0, "s": "t"}
        assert any("negative ts" in p for p in validate_chrome({"traceEvents": [ev]}))

    def test_flags_metadata_without_args(self):
        ev = {"name": "process_name", "ph": "M", "ts": 0, "pid": 1, "tid": 0}
        problems = validate_chrome({"traceEvents": [ev]})
        assert any("metadata" in p for p in problems)
