"""Topology-observatory metrics vs hand-computed graphs and brute-force
oracles (pure Python, no networkx), plus snapshotter behavior on a live
engine — churn must be exactly zero when nothing in the overlay can move."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gnutella.config import GnutellaConfig
from repro.gnutella.simulation import build_engine
from repro.obs.registry import MetricsRegistry
from repro.obs.topology import (
    OverlayView,
    TopologySnapshotter,
    degree_distribution,
    gini,
    mean_reachability,
    neighbor_churn,
    reachable_within,
    snapshot_overlay,
    symmetric_consistency_ratio,
    top_k_share,
    walk_overlay,
)
from repro.obs.trace import Tracer

HOUR = 3600.0


# ----------------------------------------------------------------------
# Brute-force oracles
# ----------------------------------------------------------------------
def gini_oracle(values):
    """Mean-absolute-difference definition: sum |xi - xj| / (2 n^2 mean)."""
    n = len(values)
    total = sum(values)
    if n < 2 or total == 0:
        return 0.0
    diff_sum = sum(abs(a - b) for a in values for b in values)
    return diff_sum / (2 * n * total)


def reachable_oracle(outgoing, source, ttl):
    """Set-based hop expansion, independent of the BFS implementation."""
    if ttl <= 0 or source not in outgoing:
        return 0
    frontier = {source}
    seen = {source}
    for _ in range(ttl):
        frontier = {
            j for i in frontier for j in outgoing.get(i, ())
        } - seen
        seen |= frontier
    return len(seen) - 1


# ----------------------------------------------------------------------
# Hand-computed graphs
# ----------------------------------------------------------------------
def test_gini_hand_computed():
    assert gini([1, 1, 1, 1]) == 0.0
    # one holder has everything: sorted [0,0,0,4], oracle gives 0.75
    assert gini([0, 0, 0, 4]) == pytest.approx(0.75)
    assert gini([]) == 0.0
    assert gini([5]) == 0.0
    assert gini([0, 0, 0]) == 0.0


def test_gini_matches_brute_force_oracle():
    samples = [
        [1, 2, 3, 4, 5],
        [0, 0, 1, 9],
        [3, 3, 3],
        [7, 1, 1, 1, 1, 1],
        [0.5, 2.5, 2.5, 10.0],
    ]
    for values in samples:
        assert gini(values) == pytest.approx(gini_oracle(values), abs=1e-12)


def test_top_k_share_hand_computed():
    assert top_k_share([0, 0, 0, 4], 1) == 1.0
    assert top_k_share([1, 1, 1, 1], 2) == pytest.approx(0.5)
    assert top_k_share([3, 1], 0) == 0.0
    assert top_k_share([], 5) == 0.0
    assert top_k_share([0, 0], 1) == 0.0
    with pytest.raises(ConfigurationError):
        top_k_share([1], -1)


def test_degree_distribution_sorted_histogram():
    assert degree_distribution([2, 1, 2, 0]) == {0: 1, 1: 1, 2: 2}
    assert degree_distribution([]) == {}
    assert list(degree_distribution([9, 0, 9, 4])) == [0, 4, 9]


def test_symmetric_consistency_ratio_hand_computed():
    outgoing = {1: (2,), 2: (1, 3), 3: ()}
    # 1->2 mirrored (2's incoming has 1); 2->1 mirrored; 2->3 NOT mirrored.
    incoming = {1: (2,), 2: (1,), 3: ()}
    assert symmetric_consistency_ratio(outgoing, incoming) == pytest.approx(2 / 3)
    # Fully consistent overlay.
    incoming_ok = {1: (2,), 2: (1,), 3: (2,)}
    assert symmetric_consistency_ratio(outgoing, incoming_ok) == 1.0
    # No edges is vacuously consistent.
    assert symmetric_consistency_ratio({1: ()}, {1: ()}) == 1.0
    # Nodes missing from incoming count as empty.
    assert symmetric_consistency_ratio({1: (2,)}, {}) == 0.0


def test_neighbor_churn_hand_computed():
    a = {1: (2, 3), 2: (1,)}
    b = {1: (2, 4), 2: (1,)}
    # edges: a={12,13,21} b={12,14,21}; symm diff {13,14}, union 4 -> 0.5
    assert neighbor_churn(a, b) == pytest.approx(0.5)
    assert neighbor_churn(a, a) == 0.0
    assert neighbor_churn({}, {}) == 0.0
    assert neighbor_churn(a, {1: (), 2: ()}) == 1.0


def test_reachable_within_hand_computed():
    chain = {1: (2,), 2: (3,), 3: (4,), 4: ()}
    assert reachable_within(chain, 1, 1) == 1
    assert reachable_within(chain, 1, 2) == 2
    assert reachable_within(chain, 1, 99) == 3
    assert reachable_within(chain, 4, 2) == 0
    assert reachable_within(chain, 1, 0) == 0
    assert reachable_within(chain, 99, 2) == 0
    # A cycle never revisits nodes.
    ring = {1: (2,), 2: (3,), 3: (1,)}
    assert reachable_within(ring, 1, 10) == 2


def test_reachable_within_matches_oracle():
    graph = {
        0: (1, 2),
        1: (3,),
        2: (3, 4),
        3: (0,),
        4: (),
        5: (0,),
    }
    for source in graph:
        for ttl in range(0, 5):
            assert reachable_within(graph, source, ttl) == reachable_oracle(
                graph, source, ttl
            )


def test_mean_reachability_complete_graph_is_one():
    nodes = range(5)
    complete = {i: tuple(j for j in nodes if j != i) for i in nodes}
    assert mean_reachability(complete, 1) == 1.0
    assert mean_reachability({0: ()}, 2) == 0.0
    # Source truncation stays deterministic: lowest ids first.
    assert mean_reachability(complete, 1, max_sources=2) == 1.0


# ----------------------------------------------------------------------
# Property: churn of identical snapshots is zero; ranges hold
# ----------------------------------------------------------------------
edge_maps = st.dictionaries(
    st.integers(min_value=0, max_value=20),
    st.lists(st.integers(min_value=0, max_value=20), max_size=5, unique=True),
    max_size=10,
)


@settings(max_examples=60, deadline=None)
@given(edge_maps)
def test_churn_of_identical_snapshots_is_zero(edges):
    snapshot = {node: tuple(outs) for node, outs in edges.items()}
    assert neighbor_churn(snapshot, snapshot) == 0.0


@settings(max_examples=60, deadline=None)
@given(edge_maps, edge_maps)
def test_churn_is_a_fraction_and_symmetric(a, b):
    churn = neighbor_churn(a, b)
    assert 0.0 <= churn <= 1.0
    assert churn == pytest.approx(neighbor_churn(b, a))


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=20))
def test_gini_property_matches_oracle_and_range(values):
    value = gini(values)
    assert 0.0 <= value <= 1.0
    assert value == pytest.approx(gini_oracle(values), abs=1e-9)
    assert not math.isnan(value)


# ----------------------------------------------------------------------
# Overlay walk + snapshot assembly
# ----------------------------------------------------------------------
class _FakePeer:
    class _Lists:
        def __init__(self, outgoing, incoming):
            self.outgoing = _FakeList(outgoing)
            self.incoming = _FakeList(incoming)

    def __init__(self, node, online, outgoing, incoming):
        self.node = node
        self.online = online
        self.neighbors = self._Lists(outgoing, incoming)


class _FakeList:
    def __init__(self, items):
        self._items = tuple(items)

    def as_tuple(self):
        return self._items


def test_walk_overlay_skips_offline_and_sorts():
    peers = [
        _FakePeer(2, True, (1,), ()),
        _FakePeer(0, False, (1, 2), (1,)),
        _FakePeer(1, True, (2,), (2,)),
    ]
    view = walk_overlay(peers)
    assert view.online == (1, 2)
    assert view.n_online == 2
    assert view.n_edges == 2
    assert 0 not in view.outgoing
    assert view.out_degrees() == [1, 1]


def test_snapshot_overlay_first_snapshot_has_zero_churn():
    view = OverlayView((1, 2), {1: (2,), 2: (1,)}, {1: (2,), 2: (1,)})
    snap = snapshot_overlay(view, 7.0, ttl=2)
    assert snap.churn == 0.0
    assert snap.consistency_ratio == 1.0
    assert snap.mean_out_degree == 1.0
    assert snap.reachability == 1.0
    # Degree-dist keys become strings in the JSONL rendering.
    rendered = snap.to_jsonable()
    assert rendered["out_degree_distribution"] == {"1": 2}
    json.dumps(rendered)


# ----------------------------------------------------------------------
# Snapshotter on a live engine
# ----------------------------------------------------------------------
def _engine(**overrides):
    base = dict(
        n_users=40, n_items=2000, horizon=4 * HOUR, warmup_hours=0, dynamic=True
    )
    base.update(overrides)
    return build_engine(GnutellaConfig(**base))


def test_snapshotter_records_hourly_series_in_registry():
    eng = _engine()
    registry = MetricsRegistry()
    snapshotter = TopologySnapshotter(eng, HOUR, registry)
    eng.run()
    # Hourly firing over a 4h horizon: snapshots at 1h, 2h, 3h (the 4h one
    # would land on the horizon boundary and is not scheduled).
    assert len(snapshotter.snapshots) == 3
    assert [s.time for s in snapshotter.snapshots] == [HOUR, 2 * HOUR, 3 * HOUR]
    snap = registry.snapshot()
    assert "topology.churn" in snap
    assert "topology.reachability" in snap
    first = snapshotter.snapshots[0]
    assert first.churn == 0.0  # no previous snapshot to differ from
    assert 0.0 <= first.in_degree_gini <= 1.0
    assert 0.0 < first.consistency_ratio <= 1.0
    assert first.benefit["count"] >= 0.0


def test_snapshotter_validates_interval_and_timing():
    eng = _engine()
    with pytest.raises(ConfigurationError):
        TopologySnapshotter(eng, 0.0)
    eng.run()
    with pytest.raises(ConfigurationError):
        TopologySnapshotter(eng, HOUR)


def test_churn_is_zero_when_overlay_cannot_move():
    """Static scheme + sessions far longer than the horizon: no logins, no
    logoffs, no reconfigurations — every snapshot-to-snapshot churn is 0."""
    eng = _engine(
        dynamic=False,
        mean_online=10_000 * HOUR,
        mean_offline=10_000 * HOUR,
        seed=5,
    )
    tracer = Tracer()
    eng.attach_tracer(tracer)
    snapshotter = TopologySnapshotter(eng, HOUR)
    eng.run()
    # Premise: no session transitions after the initial t=0 logins.
    assert all(ev.ts == 0.0 for ev in tracer.by_category("churn"))
    assert eng.metrics.reconfigurations == 0
    assert len(snapshotter.snapshots) == 3
    assert all(s.churn == 0.0 for s in snapshotter.snapshots)
    # The edge set itself is frozen, snapshot to snapshot.
    assert (
        snapshotter.snapshots[0].out_degree_distribution
        == snapshotter.snapshots[-1].out_degree_distribution
    )


def test_snapshotter_write_jsonl_round_trips(tmp_path):
    eng = _engine(horizon=2 * HOUR)
    snapshotter = TopologySnapshotter(eng, HOUR)
    eng.run()
    path = tmp_path / "topology.jsonl"
    snapshotter.write_jsonl(path)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == len(snapshotter.snapshots) == 1
    assert lines[0]["n_online"] == snapshotter.snapshots[0].n_online
