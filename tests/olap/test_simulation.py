"""Tests for the OLAP-caching simulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.olap import OlapConfig, Warehouse, run_olap_simulation
from repro.workload.olap_workload import OlapWorkloadConfig


class TestWarehouse:
    def test_compute_counts_and_cost(self):
        wh = Warehouse(100, np.random.default_rng(0))
        cost = wh.compute(5)
        assert cost >= 0.3 + 0.2
        assert wh.computations == 1
        assert cost == pytest.approx(wh.processing_cost(5) + wh.round_trip)

    def test_invalid_chunk(self):
        wh = Warehouse(10, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            wh.compute(10)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            Warehouse(0, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            Warehouse(10, np.random.default_rng(0), mean_cost=0)


def quick_config(**overrides):
    defaults = dict(
        workload=OlapWorkloadConfig(n_peers=15, n_chunks=800, n_regions=10),
        cache_capacity=80,
        n_rounds=120,
        seed=4,
    )
    defaults.update(overrides)
    return OlapConfig(**defaults)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cache_capacity": 0},
            {"out_slots": 0},
            {"in_slots": 0},
            {"n_rounds": 0},
            {"explore_every": 0},
            {"update_every": 0},
            {"explore_ttl": 0},
            {"peer_round_trip": 0},
            {"hot_probe_chunks": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            quick_config(**kwargs)


class TestSimulation:
    def test_accounting_adds_up(self):
        r = run_olap_simulation(quick_config())
        assert r.queries == 15 * 120
        assert r.local_chunks + r.peer_chunks + r.warehouse_chunks == r.chunks_requested
        assert r.total_latency > 0
        assert 0 <= r.warehouse_offload <= 1
        assert r.saved_processing_time >= 0

    def test_deterministic(self):
        a = run_olap_simulation(quick_config())
        b = run_olap_simulation(quick_config())
        assert a == b

    def test_adaptation_improves_offload(self):
        static = run_olap_simulation(quick_config(adaptive=False, n_rounds=250))
        adaptive = run_olap_simulation(quick_config(adaptive=True, n_rounds=250))
        assert adaptive.warehouse_offload > static.warehouse_offload
        assert adaptive.mean_query_latency < static.mean_query_latency
        assert adaptive.saved_processing_time > static.saved_processing_time

    def test_saved_time_only_with_peer_hits(self):
        r = run_olap_simulation(quick_config(n_rounds=50))
        if r.peer_chunks == 0:
            assert r.saved_processing_time == 0.0
        else:
            assert r.saved_processing_time > 0.0
