"""Tests for multi-seed replication."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import multiseed
from repro.experiments.multiseed import MetricReplication


class TestMetricReplication:
    def test_ci_shrinks_with_agreement(self):
        tight = MetricReplication("m", (10.0, 10.1, 9.9), (12.0, 12.1, 11.9), True)
        loose = MetricReplication("m", (5.0, 15.0, 10.0), (12.0, 12.1, 11.9), True)
        assert tight.static_mean_ci[1] < loose.static_mean_ci[1]

    def test_single_sample_zero_halfwidth(self):
        m = MetricReplication("m", (10.0,), (12.0,), True)
        assert m.static_mean_ci == (10.0, 0.0)

    def test_identical_samples_zero_halfwidth(self):
        m = MetricReplication("m", (10.0, 10.0), (12.0, 12.0), True)
        assert m.static_mean_ci == (10.0, 0.0)

    def test_win_fraction_higher_better(self):
        m = MetricReplication("m", (10.0, 10.0), (12.0, 8.0), True)
        assert m.dynamic_win_fraction == 0.5

    def test_win_fraction_lower_better(self):
        m = MetricReplication("m", (10.0, 10.0), (8.0, 9.0), False)
        assert m.dynamic_win_fraction == 1.0


class TestRun:
    def test_needs_two_seeds(self):
        with pytest.raises(ConfigurationError):
            multiseed.run(preset="smoke", seeds=(0,))

    def test_replication_structure(self):
        result = multiseed.run(preset="smoke", seeds=(0, 1))
        assert result.seeds == (0, 1)
        names = [m.metric for m in result.metrics]
        assert "total hits" in names
        for metric in result.metrics:
            assert len(metric.static_samples) == 2
            assert len(metric.dynamic_samples) == 2

    def test_report_prints(self, capsys):
        result = multiseed.run(preset="smoke", seeds=(0, 1))
        multiseed.print_report(result)
        out = capsys.readouterr().out
        assert "replication across 2 seeds" in out
        assert "wins" in out


class TestCliIntegration:
    def test_replicate_figure_choice(self):
        from repro.experiments.runner import build_parser

        args = build_parser().parse_args(["replicate", "--preset", "smoke"])
        assert args.figure == "replicate"

    def test_json_flag(self, tmp_path, capsys):
        from repro.experiments.runner import main

        target = tmp_path / "fig1.json"
        assert main(["fig1", "--preset", "smoke", "--json", str(target)]) == 0
        assert target.exists()
        assert "json written" in capsys.readouterr().out

    def test_all_excludes_replicate(self, capsys):
        from repro.experiments.runner import main

        assert main(["all", "--preset", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "replication across" not in out
        assert "Figure 3(b)" in out
