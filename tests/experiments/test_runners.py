"""Tests for the figure runners and the CLI (smoke scale)."""

import pytest

from repro.analysis import compare_runs
from repro.errors import ConfigurationError
from repro.experiments import figure1, figure2, figure3a, figure3b, preset_config
from repro.experiments.common import PRESETS, paired_run
from repro.experiments.runner import build_parser, main


class TestPresets:
    def test_known_presets(self):
        assert {"paper", "scaled", "smoke"} <= set(PRESETS)

    def test_paper_preset_matches_section_42(self):
        cfg = PRESETS["paper"]
        assert cfg.n_users == 2000
        assert cfg.n_items == 200_000
        assert cfg.horizon == 4 * 24 * 3600.0
        assert cfg.warmup_hours == 12

    def test_preset_config_overrides(self):
        cfg = preset_config("smoke", seed=9, max_hops=4)
        assert cfg.seed == 9
        assert cfg.max_hops == 4

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError):
            preset_config("gigantic")


class TestPairedRun:
    def test_returns_both_schemes(self):
        static, dynamic = paired_run(preset_config("smoke", seed=1))
        assert not static.config.dynamic
        assert dynamic.config.dynamic
        assert static.metrics.total_queries == dynamic.metrics.total_queries

    def test_compare_runs_rows(self):
        static, dynamic = paired_run(preset_config("smoke", seed=1))
        rows = compare_runs(static, dynamic)
        metrics = [r.metric for r in rows]
        assert "total hits" in metrics
        assert all(isinstance(r.format(), str) for r in rows)


@pytest.fixture(scope="module")
def fig1_result():
    return figure1.run(preset="smoke", seed=0)


class TestFigure1:
    def test_series_shapes(self, fig1_result):
        r = fig1_result
        n = len(r.hours)
        assert n == r.static.config.horizon_hours - r.static.config.warmup_hours
        for series in (r.static_hits, r.dynamic_hits, r.static_messages,
                       r.dynamic_messages):
            assert len(series) == n

    def test_dynamic_wins_hits(self, fig1_result):
        assert fig1_result.dynamic_hits.sum() > fig1_result.static_hits.sum()

    def test_report_prints(self, fig1_result, capsys):
        figure1.print_report(fig1_result)
        out = capsys.readouterr().out
        assert "panel (a)" in out and "panel (b)" in out
        assert "Dynamic_Gnutella" in out


class TestFigure2:
    def test_uses_ttl4(self):
        r = figure2.run(preset="smoke", seed=0)
        assert r.max_hops == 4
        assert r.static.config.max_hops == 4

    def test_report_prints(self, capsys):
        figure2.print_report(figure2.run(preset="smoke", seed=0))
        assert "hops = 4" in capsys.readouterr().out


class TestFigure3a:
    def test_sweep_and_shape(self, capsys):
        r = figure3a.run(preset="smoke", seed=0, hops_sweep=(1, 2))
        assert r.hops == (1, 2)
        assert r.static_delay_ms[0] < r.static_delay_ms[1]
        figure3a.print_report(r)
        assert "hops=1" in capsys.readouterr().out


class TestFigure3b:
    def test_sweep_and_baseline(self, capsys):
        r = figure3b.run(preset="smoke", seed=0, thresholds=(2, 16))
        assert r.thresholds == (2, 16)
        assert r.static_hits > 0
        assert max(r.dynamic_hits) > r.static_hits
        assert r.best_threshold in (2, 16)
        figure3b.print_report(r)
        assert "static baseline hits" in capsys.readouterr().out


class TestCli:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig1", "--preset", "smoke", "--seed", "3"])
        assert args.figure == "fig1"
        assert args.preset == "smoke"
        assert args.seed == 3
        assert args.jobs == 1
        assert args.replicates == 5
        assert not args.no_cache

    def test_main_runs_single_figure(self, capsys):
        code = main(["fig1", "--preset", "smoke", "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "completed in" in out

    def test_main_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["fig9"])

    def test_main_uses_cache_dir(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = ["fig1", "--preset", "smoke", "--cache-dir", str(cache_dir)]
        assert main(argv) == 0
        stored = list(cache_dir.glob("*/*.pkl"))
        assert len(stored) == 2  # the static/dynamic pair was memoized
        capsys.readouterr()
        # Re-running the same figure is served entirely from the cache.
        assert main(argv) == 0
        assert "Figure 1" in capsys.readouterr().out
        assert len(list(cache_dir.glob("*/*.pkl"))) == 2

    def test_replicates_flag_sets_seed_count(self, capsys):
        code = main(
            ["replicate", "--preset", "smoke", "--replicates", "3", "--no-cache"]
        )
        assert code == 0
        assert "replication across 3 seeds" in capsys.readouterr().out

    def test_manifest_written(self, tmp_path, capsys):
        import json

        manifest_path = tmp_path / "manifest.json"
        code = main(
            [
                "fig1",
                "--preset",
                "smoke",
                "--no-cache",
                "--manifest",
                str(manifest_path),
            ]
        )
        assert code == 0
        manifest = json.loads(manifest_path.read_text())
        assert manifest["grid"]["figures"] == ["fig1"]
        assert manifest["cache"]["enabled"] is False
        assert len(manifest["tasks"]) == 2

    def test_failed_figure_reports_nonzero_without_crashing(
        self, monkeypatch, capsys
    ):
        """One broken figure must not abort the rest of an 'all' run."""
        from repro.experiments import figure1

        def explode(results, **kwargs):
            raise RuntimeError("panel machinery broke")

        monkeypatch.setattr(figure1, "assemble", explode)
        code = main(["all", "--preset", "smoke", "--no-cache"])
        captured = capsys.readouterr()
        assert code == 1
        assert "fig1 FAILED" in captured.err
        assert "panel machinery broke" in captured.err
        # The sibling figures still rendered their reports.
        assert "Figure 3(b)" in captured.out or "static baseline hits" in captured.out
