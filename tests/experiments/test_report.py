"""Tests for ASCII report rendering."""

from repro.experiments.report import (
    format_series_table,
    format_sparkline,
    header,
    kv_table,
)


class TestSparkline:
    def test_monotone(self):
        line = format_sparkline([1, 2, 3, 4])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_constant(self):
        assert format_sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert format_sparkline([]) == ""


class TestSeriesTable:
    def test_contains_all_columns_and_sparklines(self):
        text = format_series_table(
            [1, 2, 3], {"alpha": [10, 20, 30], "beta": [3, 2, 1]}
        )
        assert "alpha" in text and "beta" in text
        assert "shape:" in text
        assert "10" in text and "30" in text

    def test_subsampling_caps_rows(self):
        text = format_series_table(
            list(range(100)), {"x": list(range(100))}, max_rows=10
        )
        data_rows = [
            line for line in text.splitlines()
            if line.strip() and line.lstrip()[0].isdigit()
        ]
        assert len(data_rows) <= 11


class TestHeaderAndKv:
    def test_header_boxed(self):
        text = header("Title")
        lines = text.splitlines()
        assert lines[0] == "=" * 78
        assert lines[1] == "Title"

    def test_kv_alignment(self):
        text = kv_table({"a": 1, "long_key": 2})
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_kv_empty(self):
        assert kv_table({}) == ""
