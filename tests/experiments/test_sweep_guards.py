"""Guards on degenerate sweep arguments."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import figure3a, figure3b


def test_figure3a_rejects_empty_sweep():
    with pytest.raises(ConfigurationError):
        figure3a.run(preset="smoke", hops_sweep=())


def test_figure3b_rejects_empty_thresholds():
    with pytest.raises(ConfigurationError):
        figure3b.run(preset="smoke", thresholds=())
