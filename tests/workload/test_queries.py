"""Tests for the query model."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.types import HOUR
from repro.workload.catalog import MusicCatalog
from repro.workload.library import LibraryConfig, generate_libraries
from repro.workload.queries import QueryModel


@pytest.fixture(scope="module")
def population():
    catalog = MusicCatalog(n_items=5000, n_categories=50)
    cfg = LibraryConfig(n_users=100, mean_size=40, std_size=8)
    return generate_libraries(catalog, np.random.default_rng(0), cfg)


class TestValidation:
    def test_invalid_rate(self, population):
        with pytest.raises(WorkloadError):
            QueryModel(population, rate_per_hour=0)

    def test_invalid_favorite_probability(self, population):
        with pytest.raises(WorkloadError):
            QueryModel(population, favorite_probability=1.5)

    def test_invalid_max_resample(self, population):
        with pytest.raises(WorkloadError):
            QueryModel(population, max_resample=-1)


class TestInterarrival:
    def test_mean_interarrival(self, population):
        qm = QueryModel(population, rate_per_hour=8.0)
        assert qm.mean_interarrival == pytest.approx(HOUR / 8.0)

    def test_draws_match_rate(self, population):
        qm = QueryModel(population, rate_per_hour=4.0)
        rng = np.random.default_rng(1)
        draws = [qm.next_interarrival(rng) for _ in range(5000)]
        assert np.mean(draws) == pytest.approx(HOUR / 4.0, rel=0.05)
        assert min(draws) > 0


class TestCategorySelection:
    def test_favorite_probability_respected(self, population):
        qm = QueryModel(population, favorite_probability=0.5)
        rng = np.random.default_rng(2)
        user = 0
        fav = int(population.favorite[user])
        hits = sum(qm.sample_category(user, rng) == fav for _ in range(4000))
        assert abs(hits / 4000 - 0.5) < 0.03

    def test_non_favorite_uniform_over_secondary(self, population):
        qm = QueryModel(population, favorite_probability=0.0)
        rng = np.random.default_rng(3)
        user = 1
        secs = population.secondary[user]
        counts = {c: 0 for c in secs}
        for _ in range(5000):
            counts[qm.sample_category(user, rng)] += 1
        for c in secs:
            assert abs(counts[c] / 5000 - 0.2) < 0.03

    def test_no_secondary_falls_back_to_favorite(self):
        catalog = MusicCatalog(n_items=100, n_categories=2)
        pop = generate_libraries(
            catalog,
            np.random.default_rng(0),
            LibraryConfig(n_users=3, mean_size=10, std_size=0, n_secondary=0),
        )
        qm = QueryModel(pop, favorite_probability=0.0)
        rng = np.random.default_rng(1)
        assert qm.sample_category(0, rng) == int(pop.favorite[0])


class TestItemSelection:
    def test_items_in_preferred_categories(self, population):
        qm = QueryModel(population)
        rng = np.random.default_rng(4)
        catalog = population.catalog
        for user in range(0, 100, 13):
            allowed = set(population.preferred_categories(user))
            for _ in range(50):
                item = qm.sample_item(user, rng)
                assert catalog.category_of(item) in allowed

    def test_exclude_local_avoids_own_library(self, population):
        qm = QueryModel(population, exclude_local=True)
        rng = np.random.default_rng(5)
        local_hits = sum(
            population.holds(0, qm.sample_item(0, rng)) for _ in range(300)
        )
        # Rarely, max_resample attempts all land in the library; nearly all
        # draws must avoid it.
        assert local_hits <= 2

    def test_include_local_allows_own_library(self):
        # Tiny catalog where the user owns nearly everything, so local hits
        # are guaranteed when not excluded.
        catalog = MusicCatalog(n_items=20, n_categories=2)
        pop = generate_libraries(
            catalog,
            np.random.default_rng(0),
            LibraryConfig(n_users=2, mean_size=10, std_size=0, n_secondary=1, min_size=1),
        )
        qm = QueryModel(pop, exclude_local=False)
        rng = np.random.default_rng(1)
        assert any(pop.holds(0, qm.sample_item(0, rng)) for _ in range(100))

    def test_popular_items_queried_more(self, population):
        qm = QueryModel(population, exclude_local=False)
        rng = np.random.default_rng(6)
        catalog = population.catalog
        rank_lt_10 = rank_ge_half = 0
        for _ in range(3000):
            item = qm.sample_item(0, rng)
            rank = catalog.rank_of(item)
            if rank < 10:
                rank_lt_10 += 1
            elif rank >= catalog.items_per_category // 2:
                rank_ge_half += 1
        assert rank_lt_10 > rank_ge_half

    def test_deterministic(self, population):
        qm = QueryModel(population)
        a = [qm.sample_item(3, np.random.default_rng(7)) for _ in range(5)]
        b = [qm.sample_item(3, np.random.default_rng(7)) for _ in range(5)]
        assert a == b
