"""Tests for the music catalog layout."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.catalog import MusicCatalog


@pytest.fixture
def catalog():
    return MusicCatalog(n_items=1000, n_categories=10, theta=0.9)


class TestLayout:
    def test_paper_defaults(self):
        c = MusicCatalog()
        assert c.n_items == 200_000
        assert c.n_categories == 50
        assert c.items_per_category == 4000
        assert c.theta == 0.9

    def test_category_of_contiguous_blocks(self, catalog):
        assert catalog.category_of(0) == 0
        assert catalog.category_of(99) == 0
        assert catalog.category_of(100) == 1
        assert catalog.category_of(999) == 9

    def test_rank_of(self, catalog):
        assert catalog.rank_of(0) == 0
        assert catalog.rank_of(105) == 5

    def test_item_at_inverts_category_and_rank(self, catalog):
        assert catalog.item_at(3, 7) == 307
        assert catalog.category_of(307) == 3
        assert catalog.rank_of(307) == 7

    def test_category_range(self, catalog):
        r = catalog.category_range(2)
        assert list(r)[:3] == [200, 201, 202]
        assert len(r) == 100

    def test_divisibility_enforced(self):
        with pytest.raises(WorkloadError):
            MusicCatalog(n_items=1001, n_categories=10)

    def test_invalid_sizes(self):
        with pytest.raises(WorkloadError):
            MusicCatalog(n_items=0, n_categories=1)
        with pytest.raises(WorkloadError):
            MusicCatalog(n_items=10, n_categories=0)

    def test_out_of_range_lookups(self, catalog):
        with pytest.raises(WorkloadError):
            catalog.category_of(1000)
        with pytest.raises(WorkloadError):
            catalog.rank_of(-1)
        with pytest.raises(WorkloadError):
            catalog.item_at(10, 0)
        with pytest.raises(WorkloadError):
            catalog.item_at(0, 100)
        with pytest.raises(WorkloadError):
            catalog.category_range(10)

    @given(st.integers(0, 999))
    def test_property_roundtrip(self, item):
        c = MusicCatalog(n_items=1000, n_categories=10)
        assert c.item_at(c.category_of(item), c.rank_of(item)) == item


def test_popularity_support_matches_category_size(catalog):
    assert catalog.popularity.n == catalog.items_per_category
