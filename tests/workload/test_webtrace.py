"""Tests for the synthetic web workload."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.webtrace import WebTraceConfig, WebWorkload


@pytest.fixture(scope="module")
def workload():
    return WebWorkload(WebTraceConfig(), np.random.default_rng(0))


class TestConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            WebTraceConfig(n_proxies=0)
        with pytest.raises(WorkloadError):
            WebTraceConfig(n_objects=101, n_sites=50)
        with pytest.raises(WorkloadError):
            WebTraceConfig(locality=1.5)


class TestSampling:
    def test_objects_in_range(self, workload):
        rng = np.random.default_rng(1)
        for _ in range(500):
            obj = workload.sample_request(0, rng)
            assert 0 <= obj < workload.config.n_objects

    def test_site_of(self, workload):
        per = workload.objects_per_site
        assert workload.site_of(0) == 0
        assert workload.site_of(per) == 1
        with pytest.raises(WorkloadError):
            workload.site_of(workload.config.n_objects)

    def test_locality_concentrates_on_primary_site(self, workload):
        rng = np.random.default_rng(2)
        proxy = 0
        primary = int(workload.primary_site[proxy])
        hits = sum(
            workload.site_of(workload.sample_request(proxy, rng)) == primary
            for _ in range(3000)
        )
        # locality=0.6 plus uniform background that sometimes lands there too.
        assert hits / 3000 > 0.55

    def test_zero_locality_uniform_sites(self):
        wl = WebWorkload(WebTraceConfig(locality=0.0), np.random.default_rng(0))
        rng = np.random.default_rng(3)
        sites = [wl.site_of(wl.sample_request(0, rng)) for _ in range(5000)]
        counts = np.bincount(sites, minlength=wl.config.n_sites)
        assert counts.min() > 0  # every site hit at least once

    def test_shared_interest_groups_exist(self):
        # Zipf site assignment must give at least two proxies the same
        # primary site for a reasonably sized population.
        wl = WebWorkload(WebTraceConfig(n_proxies=30), np.random.default_rng(4))
        counts = np.bincount(wl.primary_site, minlength=wl.config.n_sites)
        assert counts.max() >= 2

    def test_invalid_proxy(self, workload):
        with pytest.raises(WorkloadError):
            workload.sample_request(999, np.random.default_rng(0))

    def test_trace_shape_and_determinism(self, workload):
        a = workload.trace(1, 50, np.random.default_rng(5))
        b = workload.trace(1, 50, np.random.default_rng(5))
        assert a.shape == (50,)
        np.testing.assert_array_equal(a, b)

    def test_trace_negative_length(self, workload):
        with pytest.raises(WorkloadError):
            workload.trace(0, -1, np.random.default_rng(0))
