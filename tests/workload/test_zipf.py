"""Tests for the bounded Zipf sampler, with scipy's zipfian as the oracle."""

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.zipf import ZipfSampler, zipf_pmf


class TestPmf:
    def test_sums_to_one(self):
        assert zipf_pmf(1000, 0.9).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        pmf = zipf_pmf(500, 0.9)
        assert (np.diff(pmf) <= 0).all()

    def test_theta_zero_is_uniform(self):
        np.testing.assert_allclose(zipf_pmf(10, 0.0), np.full(10, 0.1))

    def test_matches_scipy_zipfian(self):
        n, theta = 200, 0.9
        ours = zipf_pmf(n, theta)
        scipys = scipy.stats.zipfian.pmf(np.arange(1, n + 1), theta, n)
        np.testing.assert_allclose(ours, scipys, rtol=1e-12)

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            zipf_pmf(0, 0.9)
        with pytest.raises(WorkloadError):
            zipf_pmf(10, -0.1)


class TestSampling:
    def test_scalar_and_vector_shapes(self):
        s = ZipfSampler(100, 0.9)
        rng = np.random.default_rng(0)
        assert isinstance(s.sample(rng), int)
        assert s.sample(rng, size=7).shape == (7,)

    def test_ranks_in_range(self):
        s = ZipfSampler(50, 0.9)
        ranks = s.sample(np.random.default_rng(1), size=10_000)
        assert ranks.min() >= 0
        assert ranks.max() < 50

    def test_empirical_distribution_matches_pmf(self):
        n, theta = 30, 0.9
        s = ZipfSampler(n, theta)
        draws = s.sample(np.random.default_rng(2), size=200_000)
        counts = np.bincount(draws, minlength=n)
        # Chi-squared goodness of fit against the exact pmf.
        chi2, p = scipy.stats.chisquare(counts, s.pmf * len(draws))
        assert p > 0.001, f"chi2={chi2}, p={p}"

    def test_rank_zero_most_frequent(self):
        s = ZipfSampler(100, 0.9)
        draws = s.sample(np.random.default_rng(3), size=50_000)
        counts = np.bincount(draws, minlength=100)
        assert counts[0] == counts.max()

    def test_deterministic_given_rng(self):
        s = ZipfSampler(100, 0.9)
        a = s.sample(np.random.default_rng(5), size=10)
        b = s.sample(np.random.default_rng(5), size=10)
        np.testing.assert_array_equal(a, b)

    def test_rank_probability(self):
        s = ZipfSampler(10, 0.9)
        assert s.rank_probability(0) == pytest.approx(s.pmf[0])
        with pytest.raises(WorkloadError):
            s.rank_probability(10)

    @given(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=25)
    def test_property_samples_always_in_support(self, n, theta):
        s = ZipfSampler(n, theta)
        draws = s.sample(np.random.default_rng(0), size=50)
        assert ((draws >= 0) & (draws < n)).all()


class TestSampleDistinct:
    def test_distinctness(self):
        s = ZipfSampler(100, 0.9)
        picks = s.sample_distinct(np.random.default_rng(0), 60)
        assert len(set(picks.tolist())) == 60

    def test_full_support(self):
        s = ZipfSampler(20, 0.9)
        picks = s.sample_distinct(np.random.default_rng(0), 20)
        assert sorted(picks.tolist()) == list(range(20))

    def test_k_zero(self):
        s = ZipfSampler(10, 0.9)
        assert s.sample_distinct(np.random.default_rng(0), 0).size == 0

    def test_k_too_large_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(5, 0.9).sample_distinct(np.random.default_rng(0), 6)

    def test_negative_k_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(5, 0.9).sample_distinct(np.random.default_rng(0), -1)

    def test_popular_ranks_overrepresented(self):
        # Rank 0 should appear in far more draws-of-10 than rank 99.
        s = ZipfSampler(100, 0.9)
        rng = np.random.default_rng(7)
        hits0 = hits99 = 0
        for _ in range(400):
            picks = set(s.sample_distinct(rng, 10).tolist())
            hits0 += 0 in picks
            hits99 += 99 in picks
        assert hits0 > 2 * hits99
