"""Tests for the chunked OLAP workload."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.olap_workload import OlapWorkload, OlapWorkloadConfig


@pytest.fixture(scope="module")
def workload():
    return OlapWorkload(OlapWorkloadConfig(), np.random.default_rng(0))


class TestConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            OlapWorkloadConfig(n_peers=0)
        with pytest.raises(WorkloadError):
            OlapWorkloadConfig(n_chunks=2001, n_regions=20)
        with pytest.raises(WorkloadError):
            OlapWorkloadConfig(mean_query_span=0.5)
        with pytest.raises(WorkloadError):
            OlapWorkloadConfig(locality=-0.1)


class TestSampling:
    def test_query_chunks_contiguous_and_in_range(self, workload):
        rng = np.random.default_rng(1)
        for _ in range(300):
            q = workload.sample_query(0, rng)
            chunks = q.chunks
            assert len(chunks) >= 1
            assert all(b == a + 1 for a, b in zip(chunks, chunks[1:]))
            assert 0 <= chunks[0] and chunks[-1] < workload.config.n_chunks

    def test_mean_span_roughly_configured(self, workload):
        rng = np.random.default_rng(2)
        spans = [len(workload.sample_query(0, rng).chunks) for _ in range(4000)]
        assert np.mean(spans) == pytest.approx(workload.config.mean_query_span, rel=0.15)

    def test_locality_concentrates_on_hot_region(self, workload):
        rng = np.random.default_rng(3)
        peer = 0
        hot = int(workload.hot_region[peer])
        hits = 0
        n = 2000
        for _ in range(n):
            q = workload.sample_query(peer, rng)
            mid = q.chunks[len(q.chunks) // 2]
            hits += workload.region_of(mid) == hot
        assert hits / n > 0.6

    def test_region_of(self, workload):
        per = workload.chunks_per_region
        assert workload.region_of(0) == 0
        assert workload.region_of(per) == 1
        with pytest.raises(WorkloadError):
            workload.region_of(workload.config.n_chunks)

    def test_invalid_peer(self, workload):
        with pytest.raises(WorkloadError):
            workload.sample_query(999, np.random.default_rng(0))

    def test_query_records_peer(self, workload):
        q = workload.sample_query(3, np.random.default_rng(4))
        assert q.peer == 3

    def test_shared_hot_regions_exist(self):
        wl = OlapWorkload(OlapWorkloadConfig(n_peers=30), np.random.default_rng(5))
        counts = np.bincount(wl.hot_region, minlength=wl.config.n_regions)
        assert counts.max() >= 2

    def test_deterministic(self):
        cfg = OlapWorkloadConfig()
        a = OlapWorkload(cfg, np.random.default_rng(6))
        b = OlapWorkload(cfg, np.random.default_rng(6))
        np.testing.assert_array_equal(a.hot_region, b.hot_region)
        qa = a.sample_query(0, np.random.default_rng(7))
        qb = b.sample_query(0, np.random.default_rng(7))
        assert qa == qb
