"""Tests for the synthetic user-library generator."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.catalog import MusicCatalog
from repro.workload.library import LibraryConfig, generate_libraries


@pytest.fixture(scope="module")
def population():
    catalog = MusicCatalog(n_items=10_000, n_categories=50, theta=0.9)
    cfg = LibraryConfig(n_users=300, mean_size=60.0, std_size=15.0)
    return generate_libraries(catalog, np.random.default_rng(0), cfg)


class TestConfigValidation:
    def test_defaults_match_paper(self):
        cfg = LibraryConfig()
        assert cfg.n_users == 2000
        assert cfg.mean_size == 200.0
        assert cfg.std_size == 50.0
        assert cfg.favorite_fraction == 0.5
        assert cfg.n_secondary == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_users": 0},
            {"mean_size": 0},
            {"std_size": -1},
            {"min_size": 0},
            {"favorite_fraction": 0.0},
            {"favorite_fraction": 1.5},
            {"n_secondary": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            LibraryConfig(**kwargs)

    def test_too_few_categories_rejected(self):
        catalog = MusicCatalog(n_items=100, n_categories=4)
        with pytest.raises(WorkloadError):
            generate_libraries(
                catalog, np.random.default_rng(0), LibraryConfig(n_users=5)
            )


class TestStructure:
    def test_population_size(self, population):
        assert population.n_users == 300
        assert len(population.secondary) == 300
        assert population.favorite.shape == (300,)

    def test_secondary_distinct_and_exclude_favorite(self, population):
        for user in range(population.n_users):
            fav = int(population.favorite[user])
            secs = population.secondary[user]
            assert len(secs) == 5
            assert len(set(secs)) == 5
            assert fav not in secs

    def test_library_sizes_near_mean(self, population):
        sizes = population.library_sizes()
        assert abs(sizes.mean() - 60.0) < 5.0
        assert (sizes >= 10).all()

    def test_half_library_in_favorite_category(self, population):
        catalog = population.catalog
        for user in range(0, population.n_users, 17):
            fav = int(population.favorite[user])
            lib = population.libraries[user]
            in_fav = sum(1 for item in lib if catalog.category_of(item) == fav)
            assert abs(in_fav / len(lib) - 0.5) < 0.05

    def test_items_only_from_preferred_categories(self, population):
        catalog = population.catalog
        for user in range(0, population.n_users, 23):
            allowed = set(population.preferred_categories(user))
            for item in population.libraries[user]:
                assert catalog.category_of(item) in allowed

    def test_favorite_assignment_zipf_skewed(self, population):
        # Category 0 must have more fans than the median category.
        counts = np.bincount(population.favorite, minlength=50)
        assert counts[0] > np.median(counts)

    def test_popular_songs_widely_held(self, population):
        catalog = population.catalog
        owners = population.owners_index()
        # Compare holders of the top-popularity song vs the bottom song of
        # the most-fans category.
        top_item = catalog.item_at(0, 0)
        bottom_item = catalog.item_at(0, catalog.items_per_category - 1)
        assert len(owners.get(top_item, [])) > len(owners.get(bottom_item, []))

    def test_holds(self, population):
        lib0 = population.libraries[0]
        some_item = next(iter(lib0))
        assert population.holds(0, some_item)
        assert not population.holds(0, -1)

    def test_total_songs(self, population):
        assert population.total_songs() == population.library_sizes().sum()


class TestDeterminism:
    def test_same_seed_same_population(self):
        catalog = MusicCatalog(n_items=1000, n_categories=10)
        cfg = LibraryConfig(n_users=50, mean_size=30, std_size=5)
        a = generate_libraries(catalog, np.random.default_rng(9), cfg)
        b = generate_libraries(catalog, np.random.default_rng(9), cfg)
        assert a.libraries == b.libraries
        np.testing.assert_array_equal(a.favorite, b.favorite)

    def test_different_seed_differs(self):
        catalog = MusicCatalog(n_items=1000, n_categories=10)
        cfg = LibraryConfig(n_users=50, mean_size=30, std_size=5)
        a = generate_libraries(catalog, np.random.default_rng(1), cfg)
        b = generate_libraries(catalog, np.random.default_rng(2), cfg)
        assert a.libraries != b.libraries


class TestEdgeCases:
    def test_library_capped_by_available_songs(self):
        catalog = MusicCatalog(n_items=60, n_categories=6)
        cfg = LibraryConfig(
            n_users=10, mean_size=1000, std_size=0, n_secondary=5, min_size=1
        )
        pop = generate_libraries(catalog, np.random.default_rng(0), cfg)
        # 6 categories x 10 items each = at most 60 songs per library.
        assert (pop.library_sizes() <= 60).all()

    def test_no_secondary_categories(self):
        catalog = MusicCatalog(n_items=100, n_categories=2)
        cfg = LibraryConfig(n_users=5, mean_size=20, std_size=0, n_secondary=0)
        pop = generate_libraries(catalog, np.random.default_rng(0), cfg)
        for user in range(5):
            assert pop.secondary[user] == ()
            fav = int(pop.favorite[user])
            for item in pop.libraries[user]:
                assert catalog.category_of(item) == fav
