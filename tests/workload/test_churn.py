"""Tests for the exponential on/off churn model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.types import HOUR
from repro.workload.churn import ChurnModel, SessionSchedule


class TestChurnModel:
    def test_paper_defaults(self):
        m = ChurnModel()
        assert m.mean_online == 3 * HOUR
        assert m.mean_offline == 3 * HOUR
        assert m.stationary_online_probability == 0.5

    def test_asymmetric_stationary_probability(self):
        m = ChurnModel(mean_online=HOUR, mean_offline=3 * HOUR)
        assert m.stationary_online_probability == pytest.approx(0.25)

    def test_invalid_means(self):
        with pytest.raises(WorkloadError):
            ChurnModel(mean_online=0)
        with pytest.raises(WorkloadError):
            ChurnModel(mean_offline=-1)

    def test_duration_means(self):
        m = ChurnModel()
        rng = np.random.default_rng(0)
        durations = [m.online_duration(rng) for _ in range(4000)]
        assert np.mean(durations) == pytest.approx(3 * HOUR, rel=0.05)

    def test_initial_online_roughly_half(self):
        m = ChurnModel()
        rng = np.random.default_rng(1)
        online = sum(m.initial_online(rng) for _ in range(4000))
        assert abs(online / 4000 - 0.5) < 0.03


class TestSessionSchedule:
    def test_transitions_increasing_and_within_horizon(self):
        m = ChurnModel()
        s = SessionSchedule.generate(0, m, horizon=96 * HOUR, rng=np.random.default_rng(2))
        times = s.transitions
        assert all(a < b for a, b in zip(times, times[1:]))
        assert all(0 < t < 96 * HOUR for t in times)

    def test_state_at_alternates(self):
        s = SessionSchedule(user=0, initially_online=True, transitions=(10.0, 20.0, 30.0))
        # online [0,10), offline [10,20), online [20,30), offline [30,...)
        assert s.state_at(5.0) is True
        assert s.state_at(10.0) is False
        assert s.state_at(15.0) is False
        assert s.state_at(25.0) is True
        assert s.state_at(35.0) is False

    def test_state_at_initially_offline(self):
        s = SessionSchedule(user=0, initially_online=False, transitions=(10.0,))
        assert s.state_at(0.0) is False
        assert s.state_at(10.0) is True

    def test_intervals_online_first(self):
        s = SessionSchedule(user=0, initially_online=True, transitions=(10.0, 20.0))
        assert s.intervals(horizon=30.0) == [(0.0, 10.0), (20.0, 30.0)]

    def test_intervals_offline_first(self):
        s = SessionSchedule(user=0, initially_online=False, transitions=(10.0, 20.0))
        assert s.intervals(horizon=30.0) == [(10.0, 20.0)]

    def test_no_transitions(self):
        always_on = SessionSchedule(0, True, ())
        assert always_on.intervals(50.0) == [(0.0, 50.0)]
        always_off = SessionSchedule(0, False, ())
        assert always_off.intervals(50.0) == []

    def test_invalid_horizon(self):
        with pytest.raises(WorkloadError):
            SessionSchedule.generate(0, ChurnModel(), horizon=0, rng=np.random.default_rng(0))

    def test_stationary_online_fraction(self):
        # Average online time fraction across many users should be ~ 1/2.
        m = ChurnModel()
        rng = np.random.default_rng(3)
        horizon = 96 * HOUR
        total_online = 0.0
        n_users = 300
        for u in range(n_users):
            s = SessionSchedule.generate(u, m, horizon, rng)
            total_online += sum(e - s_ for s_, e in s.intervals(horizon))
        fraction = total_online / (n_users * horizon)
        assert abs(fraction - 0.5) < 0.03

    def test_deterministic(self):
        m = ChurnModel()
        a = SessionSchedule.generate(0, m, 10 * HOUR, np.random.default_rng(4))
        b = SessionSchedule.generate(0, m, 10 * HOUR, np.random.default_rng(4))
        assert a == b

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20)
    def test_property_intervals_cover_state_at(self, seed):
        m = ChurnModel(mean_online=100.0, mean_offline=100.0)
        s = SessionSchedule.generate(0, m, 1000.0, np.random.default_rng(seed))
        intervals = s.intervals(1000.0)
        for probe in np.linspace(0.0, 999.0, 23):
            in_interval = any(start <= probe < end for start, end in intervals)
            assert in_interval == s.state_at(probe)
