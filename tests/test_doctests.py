"""Run the doctest examples embedded in module docstrings.

Keeps the documentation honest: if an API example in a docstring drifts from
the implementation, this test fails.
"""

import doctest

import pytest

import repro.rng
import repro.sim.kernel
import repro.workload.zipf

MODULES_WITH_EXAMPLES = [
    repro.rng,
    repro.sim.kernel,
    repro.workload.zipf,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_EXAMPLES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False, optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"


def test_at_least_one_example_per_module():
    for module in MODULES_WITH_EXAMPLES:
        finder = doctest.DocTestFinder()
        examples = sum(len(t.examples) for t in finder.find(module))
        assert examples > 0, f"{module.__name__} lists no runnable examples"
