"""Convergence series: adaptation must *learn* over the run, not just win on
totals, in both non-Gnutella instantiations."""

import numpy as np

from repro.olap import OlapConfig, run_olap_simulation
from repro.webcache import WebCacheConfig, run_webcache_simulation
from repro.workload.olap_workload import OlapWorkloadConfig
from repro.workload.webtrace import WebTraceConfig


def halves(series):
    arr = np.asarray(series, dtype=float)
    mid = len(arr) // 2
    return arr[:mid].mean(), arr[mid:].mean()


class TestWebCacheConvergence:
    def test_series_length_matches_rounds(self):
        cfg = WebCacheConfig(
            trace=WebTraceConfig(n_proxies=12, n_objects=2000, n_sites=20),
            n_rounds=100,
            seed=2,
        )
        result = run_webcache_simulation(cfg)
        assert len(result.neighbor_hits_per_round) == 100
        assert sum(result.neighbor_hits_per_round) == result.neighbor_hits

    def test_adaptive_second_half_beats_first(self):
        cfg = WebCacheConfig(n_rounds=400, seed=2, adaptive=True)
        result = run_webcache_simulation(cfg)
        early, late = halves(result.neighbor_hits_per_round)
        assert late > early, "cooperation must improve as updates accumulate"

    def test_adaptive_outlearns_static_late(self):
        base = WebCacheConfig(n_rounds=400, seed=2)
        adaptive = run_webcache_simulation(base)
        from dataclasses import replace

        static = run_webcache_simulation(replace(base, adaptive=False))
        _, adaptive_late = halves(adaptive.neighbor_hits_per_round)
        _, static_late = halves(static.neighbor_hits_per_round)
        assert adaptive_late > static_late


class TestOlapConvergence:
    def test_series_length_matches_rounds(self):
        cfg = OlapConfig(
            workload=OlapWorkloadConfig(n_peers=15, n_chunks=800, n_regions=10),
            n_rounds=80,
            seed=4,
        )
        result = run_olap_simulation(cfg)
        assert len(result.peer_chunks_per_round) == 80
        assert sum(result.peer_chunks_per_round) == result.peer_chunks

    def test_adaptive_outlearns_static_late(self):
        from dataclasses import replace

        base = OlapConfig(n_rounds=300, seed=4)
        adaptive = run_olap_simulation(base)
        static = run_olap_simulation(replace(base, adaptive=False))
        _, adaptive_late = halves(adaptive.peer_chunks_per_round)
        _, static_late = halves(static.peer_chunks_per_round)
        assert adaptive_late > static_late
