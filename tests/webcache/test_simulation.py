"""Tests for the cooperative web-caching simulation."""

import pytest

from repro.errors import ConfigurationError
from repro.webcache import WebCacheConfig, run_webcache_simulation
from repro.webcache.origin import OriginServer
from repro.workload.webtrace import WebTraceConfig

import numpy as np


class TestOrigin:
    def test_fetch_counts_and_latency(self):
        origin = OriginServer(100, np.random.default_rng(0))
        lat = origin.fetch(5)
        assert lat >= 0.2
        assert origin.fetches == 1
        assert origin.latency_of(5) == lat

    def test_invalid_object(self):
        origin = OriginServer(10, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            origin.fetch(10)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            OriginServer(0, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            OriginServer(10, np.random.default_rng(0), mean_latency=0)


def quick_config(**overrides):
    defaults = dict(
        trace=WebTraceConfig(n_proxies=12, n_objects=2000, n_sites=20),
        cache_capacity=80,
        n_rounds=150,
        seed=2,
    )
    defaults.update(overrides)
    return WebCacheConfig(**defaults)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cache_capacity": 0},
            {"neighbor_slots": 0},
            {"n_rounds": 0},
            {"explore_every": 0},
            {"update_every": 0},
            {"explore_ttl": 0},
            {"proxy_delay": 0},
            {"recent_misses_tracked": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            quick_config(**kwargs)


class TestSimulation:
    def test_accounting_adds_up(self):
        r = run_webcache_simulation(quick_config())
        assert r.requests == 12 * 150
        assert r.local_hits + r.neighbor_hits + r.origin_fetches == r.requests
        assert r.total_latency > 0
        assert 0 <= r.local_hit_rate <= 1
        assert 0 <= r.neighbor_hit_rate <= 1

    def test_static_never_explores(self):
        r = run_webcache_simulation(quick_config(adaptive=False))
        assert r.exploration_messages == 0

    def test_adaptive_explores(self):
        r = run_webcache_simulation(quick_config(adaptive=True))
        assert r.exploration_messages > 0

    def test_deterministic(self):
        a = run_webcache_simulation(quick_config())
        b = run_webcache_simulation(quick_config())
        assert a == b

    def test_adaptation_improves_cooperation(self):
        static = run_webcache_simulation(quick_config(adaptive=False, n_rounds=400))
        adaptive = run_webcache_simulation(quick_config(adaptive=True, n_rounds=400))
        assert adaptive.neighbor_hit_rate > static.neighbor_hit_rate
        assert adaptive.mean_latency < static.mean_latency

    def test_search_one_hop_only(self):
        # TTL-1 search: per missed request at most `neighbor_slots` messages.
        cfg = quick_config(neighbor_slots=3)
        r = run_webcache_simulation(cfg)
        non_local = r.requests - r.local_hits
        assert r.search_messages <= 3 * non_local


class TestCacheDigests:
    def test_digests_slash_search_messages(self):
        plain = run_webcache_simulation(quick_config())
        guided = run_webcache_simulation(quick_config(use_digests=True))
        assert guided.search_messages < 0.3 * plain.search_messages
        # Staleness costs some neighbor hits but most survive.
        assert guided.neighbor_hits > 0.6 * plain.neighbor_hits
        assert guided.digest_refreshes > 0

    def test_digest_refresh_cadence(self):
        r = run_webcache_simulation(
            quick_config(use_digests=True, digest_refresh_every=50, n_rounds=150)
        )
        # Publishes at rounds 1, 50, 100, 150 for 12 proxies.
        assert r.digest_refreshes == 4 * 12

    def test_digest_config_validation(self):
        with pytest.raises(ConfigurationError):
            quick_config(use_digests=True, digest_refresh_every=0)
        with pytest.raises(ConfigurationError):
            quick_config(digest_fp_rate=0.0)

    def test_digests_deterministic(self):
        a = run_webcache_simulation(quick_config(use_digests=True))
        b = run_webcache_simulation(quick_config(use_digests=True))
        assert a == b
