"""Tests for the LRU cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.webcache.cache import LRUCache


class TestBasics:
    def test_put_get(self):
        c = LRUCache(2)
        c.put(1)
        assert c.get(1)
        assert not c.get(2)
        assert c.hits == 1 and c.misses == 1

    def test_lru_eviction_order(self):
        c = LRUCache(2)
        c.put(1)
        c.put(2)
        evicted = c.put(3)
        assert evicted == 1
        assert 1 not in c and 2 in c and 3 in c
        assert c.evictions == 1

    def test_get_refreshes_recency(self):
        c = LRUCache(2)
        c.put(1)
        c.put(2)
        c.get(1)
        assert c.put(3) == 2  # 2 was least recently used

    def test_put_refreshes_recency(self):
        c = LRUCache(2)
        c.put(1)
        c.put(2)
        c.put(1)  # refresh, no eviction
        assert c.put(3) == 2

    def test_reinsert_present_no_eviction(self):
        c = LRUCache(1)
        c.put(1)
        assert c.put(1) is None
        assert c.evictions == 0

    def test_keys_order(self):
        c = LRUCache(3)
        for i in (1, 2, 3):
            c.put(i)
        c.get(1)
        assert c.keys() == (2, 3, 1)

    def test_hit_rate(self):
        c = LRUCache(2)
        assert c.hit_rate == 0.0
        c.put(1)
        c.get(1)
        c.get(9)
        assert c.hit_rate == 0.5

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            LRUCache(0)


class TestMirror:
    def test_mirror_tracks_contents(self):
        mirror = set()
        c = LRUCache(2, mirror=mirror)
        c.put(1)
        c.put(2)
        assert mirror == {1, 2}
        c.put(3)
        assert mirror == {2, 3}

    @given(st.lists(st.integers(0, 12), max_size=60))
    def test_property_mirror_always_equals_keys(self, items):
        mirror = set()
        c = LRUCache(4, mirror=mirror)
        for item in items:
            c.put(item)
            assert mirror == set(c.keys())
            assert len(c) <= 4
