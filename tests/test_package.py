"""Package-level sanity: public API surface, exception hierarchy, version."""

import importlib

import pytest

import repro
from repro import errors

PUBLIC_MODULES = [
    "repro.sim",
    "repro.net",
    "repro.workload",
    "repro.core",
    "repro.gnutella",
    "repro.webcache",
    "repro.olap",
    "repro.experiments",
    "repro.analysis",
]


class TestPublicSurface:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_module_importable(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"

    def test_top_level_exports(self):
        for symbol in repro.__all__:
            assert hasattr(repro, symbol)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.SimulationError,
            errors.SchedulingError,
            errors.ProcessError,
            errors.NetworkError,
            errors.TopologyError,
            errors.WorkloadError,
            errors.FrameworkError,
            errors.NeighborListError,
            errors.ConfigurationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.SchedulingError, errors.SimulationError)
        assert issubclass(errors.ProcessError, errors.SimulationError)
        assert issubclass(errors.TopologyError, errors.NetworkError)
        assert issubclass(errors.NeighborListError, errors.FrameworkError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(errors.ReproError):
            raise errors.TopologyError("boom")
