"""End-to-end tests for the repro-lint command line."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.lint.cli import main

FIXTURE = Path(__file__).parent / "fixtures" / "violations.py"
SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_clean_tree_exits_zero(capsys):
    assert main([str(SRC_REPRO)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_fixture_exits_nonzero_with_located_findings(capsys):
    assert main([str(FIXTURE)]) == 1
    out = capsys.readouterr().out
    # every rule code appears, attributed to the fixture path with a line
    for code in ("R001", "R002", "R003", "R004", "R005"):
        assert code in out
    assert f"{FIXTURE}:" in out


def test_json_format_is_machine_readable(capsys):
    assert main([str(FIXTURE), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["checked_files"] == 1
    codes = {f["code"] for f in payload["findings"]}
    assert codes == {
        "R001", "R002", "R003", "R004", "R005",
        "R006", "R007", "R008", "R010", "R011", "R012",
    }
    assert all(f["line"] > 0 and f["path"] for f in payload["findings"])
    assert [f["code"] for f in payload["suppressed"]] == ["R001"]
    assert payload["baselined"] == []


def test_select_restricts_rules(capsys):
    assert main([str(FIXTURE), "--select", "R004"]) == 1
    out = capsys.readouterr().out
    assert "R004" in out and "R001" not in out


def test_usage_errors_exit_two(capsys):
    assert main([]) == 2
    assert main(["/no/such/path.py"]) == 2
    assert main([str(FIXTURE), "--select", "R999"]) == 2


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("R001", "R002", "R003", "R004", "R005"):
        assert code in out


def test_explain_renders_rationale_example_and_fix(capsys):
    assert main(["--explain", "r007"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("R007 — ")
    assert "rationale:" in out
    assert "Minimal failing example:" in out
    assert "Sanctioned fix:" in out


def test_explain_unknown_code_exits_two(capsys):
    assert main(["--explain", "R999"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_explain_covers_every_registered_rule(capsys):
    from repro.lint import PROJECT_RULES, RULES

    for code in sorted({**RULES, **PROJECT_RULES}):
        assert main(["--explain", code]) == 0, code
        out = capsys.readouterr().out
        assert "Minimal failing example:" in out, code
        assert "Sanctioned fix:" in out, code


def test_sarif_output_is_valid_and_locates_findings(tmp_path, capsys):
    target = tmp_path / "lint.sarif"
    assert main([str(FIXTURE), "--sarif", str(target)]) == 1
    capsys.readouterr()
    doc = json.loads(target.read_text())
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"R001", "R006", "R007", "R012"} <= rule_ids
    results = run["results"]
    assert results, "fixture findings must appear as SARIF results"
    for res in results:
        loc = res["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] > 0
        assert loc["artifactLocation"]["uri"].endswith("violations.py")
    # the comment-suppressed R001 carries an inSource suppression
    suppressed = [r for r in results if r.get("suppressions")]
    assert any(
        s["kind"] == "inSource" for r in suppressed for s in r["suppressions"]
    )


def test_sarif_to_stdout_replaces_text_report(capsys):
    assert main([str(FIXTURE), "--sarif", "-"]) == 1
    out = capsys.readouterr().out
    json.loads(out)  # whole stdout is one SARIF document


def test_baseline_roundtrip_gates_only_new_findings(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main([str(FIXTURE), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    # unchanged tree: everything baselined, exit 0
    assert main([str(FIXTURE), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out and "baselined" in out
    # a fresh finding not in the baseline still fails the run
    extra = tmp_path / "fresh.py"
    extra.write_text("import random\nx = random.random()\n")
    assert main([str(FIXTURE), str(extra), "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "fresh.py" in out


def test_corrupt_baseline_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"version": 99}')
    assert main([str(FIXTURE), "--baseline", str(bad)]) == 2
    assert "baseline" in capsys.readouterr().err.lower()


def test_symtab_cache_reuse_is_transparent(tmp_path, capsys):
    cache = tmp_path / "symtab"
    assert main([str(FIXTURE), "--symtab-cache", str(cache)]) == 1
    first = capsys.readouterr().out
    assert list(cache.iterdir()), "cache directory must be populated"
    assert main([str(FIXTURE), "--symtab-cache", str(cache)]) == 1
    second = capsys.readouterr().out
    assert first == second


def test_changed_mode_lints_only_git_changed_files(tmp_path, capsys, monkeypatch):
    subprocess.run(["git", "init", "-q", str(tmp_path)], check=True)
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    subprocess.run(
        ["git", "-C", str(tmp_path), "add", "clean.py"], check=True
    )
    subprocess.run(
        ["git", "-C", str(tmp_path), "-c", "user.email=t@t", "-c",
         "user.name=t", "commit", "-qm", "seed"],
        check=True,
    )
    monkeypatch.chdir(tmp_path)
    # nothing changed: clean short-circuit
    assert main([str(tmp_path), "--changed"]) == 0
    assert "no changed Python files" in capsys.readouterr().out
    # an untracked hazardous file is picked up
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    assert main([str(tmp_path), "--changed"]) == 1
    out = capsys.readouterr().out
    assert "dirty.py" in out and "clean.py" not in out


def test_self_check_with_committed_baseline():
    """The documented CI gate is clean on the final tree."""
    repo = SRC_REPRO.parents[1]
    baseline = repo / "LINT_BASELINE.json"
    assert baseline.exists(), "LINT_BASELINE.json must be committed"
    rc = main(
        [
            str(repo / "src"),
            str(repo / "tests"),
            str(repo / "benchmarks"),
            "--baseline",
            str(baseline),
        ]
    )
    assert rc == 0


def test_module_invocation_matches_cli():
    """``python -m repro.lint`` is the documented CI entry point."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(FIXTURE)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC_REPRO.parent), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "R001" in proc.stdout

    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(SRC_REPRO)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC_REPRO.parent), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
