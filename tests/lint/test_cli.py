"""End-to-end tests for the repro-lint command line."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.lint.cli import main

FIXTURE = Path(__file__).parent / "fixtures" / "violations.py"
SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_clean_tree_exits_zero(capsys):
    assert main([str(SRC_REPRO)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_fixture_exits_nonzero_with_located_findings(capsys):
    assert main([str(FIXTURE)]) == 1
    out = capsys.readouterr().out
    # every rule code appears, attributed to the fixture path with a line
    for code in ("R001", "R002", "R003", "R004", "R005"):
        assert code in out
    assert f"{FIXTURE}:" in out


def test_json_format_is_machine_readable(capsys):
    assert main([str(FIXTURE), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["checked_files"] == 1
    codes = {f["code"] for f in payload["findings"]}
    assert codes == {"R001", "R002", "R003", "R004", "R005"}
    assert all(f["line"] > 0 and f["path"] for f in payload["findings"])
    assert [f["code"] for f in payload["suppressed"]] == ["R001"]


def test_select_restricts_rules(capsys):
    assert main([str(FIXTURE), "--select", "R004"]) == 1
    out = capsys.readouterr().out
    assert "R004" in out and "R001" not in out


def test_usage_errors_exit_two(capsys):
    assert main([]) == 2
    assert main(["/no/such/path.py"]) == 2
    assert main([str(FIXTURE), "--select", "R999"]) == 2


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("R001", "R002", "R003", "R004", "R005"):
        assert code in out


def test_module_invocation_matches_cli():
    """``python -m repro.lint`` is the documented CI entry point."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(FIXTURE)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC_REPRO.parent), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "R001" in proc.stdout

    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(SRC_REPRO)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC_REPRO.parent), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
