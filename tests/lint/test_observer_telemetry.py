"""R006 and the telemetry plane: sink writes are the observer's job.

Telemetry callbacks exist to write into registries, rolling windows, and
access loggers — observer-owned sinks, not engine state. The purity rule
must keep flagging engine mutation (including mutation reached *through* a
sink handle) while accepting sink writes, so the live-telemetry modules
stay baseline-clean with zero suppressions.
"""

from repro.lint.engine import lint_source
from repro.lint.program import TELEMETRY_SINK_NAMES


def codes(source: str, **kwargs) -> list[tuple[str, int]]:
    """(code, line) pairs reported for ``source``."""
    result = lint_source(source, **kwargs)
    return [(f.code, f.line) for f in result.findings]


PREAMBLE = "from repro.sim.events import mark_observer\n"


def test_sink_names_cover_the_telemetry_plane():
    assert {"registry", "tracer", "rolling", "access_log", "logger"} <= (
        TELEMETRY_SINK_NAMES
    )


def test_sink_parameter_writes_are_not_flagged():
    src = PREAMBLE + (
        "@mark_observer\n"
        "def export(registry, rolling, access_log):\n"
        "    registry.counts = {}\n"
        "    rolling.last = 1.0\n"
        "    access_log.written = 0\n"
    )
    assert codes(src) == []


def test_sink_mutating_calls_are_not_flagged():
    src = PREAMBLE + (
        "@mark_observer\n"
        "def export(engine, registry, rolling):\n"
        "    registry.counter('queries').inc()\n"
        "    rolling.observe(1.0, 0.2, ok=True)\n"
    )
    assert codes(src) == []


def test_engine_parameter_writes_are_still_flagged():
    src = PREAMBLE + (
        "@mark_observer\n"
        "def probe(engine, registry):\n"
        "    engine.pending = []\n"
    )
    assert codes(src) == [("R006", 4)]


def test_sink_free_variable_closure_is_clean():
    src = PREAMBLE + (
        "@mark_observer\n"
        "def export():\n"
        "    registry.scrapes = 1\n"
    )
    assert codes(src) == []


def test_engine_state_reached_through_a_sink_is_still_flagged():
    # A chain that walks from the sink back into engine state is engine
    # mutation no matter what the root is called.
    src = PREAMBLE + (
        "@mark_observer\n"
        "def sneaky(registry):\n"
        "    registry.engine.peers = []\n"
    )
    assert codes(src) == [("R006", 4)]


def test_non_sink_parameter_is_still_conservatively_engine():
    src = PREAMBLE + (
        "@mark_observer\n"
        "def probe(world):\n"
        "    world.items = []\n"
    )
    assert codes(src) == [("R006", 4)]


def test_sink_names_cover_the_profiling_plane():
    assert {"stack_sampler", "perf_counters", "alloc_snapshots"} <= (
        TELEMETRY_SINK_NAMES
    )


def test_perf_sink_writes_are_not_flagged():
    src = PREAMBLE + (
        "@mark_observer\n"
        "def profile(engine, perf_counters, stack_sampler, alloc_snapshots):\n"
        "    perf_counters.record_named('fastpath.search', 0.001)\n"
        "    stack_sampler.samples = 0\n"
        "    alloc_snapshots.snapshot('engine.run')\n"
        "    return len(engine.peers)\n"
    )
    assert codes(src) == []


def test_perf_sink_closure_free_variable_is_clean():
    src = PREAMBLE + (
        "@mark_observer\n"
        "def boundary():\n"
        "    alloc_snapshots.snapshot('engine.run')\n"
    )
    assert codes(src) == []


def test_engine_state_reached_through_a_perf_sink_is_still_flagged():
    src = PREAMBLE + (
        "@mark_observer\n"
        "def sneaky(perf_counters):\n"
        "    perf_counters.sim.queue = []\n"
    )
    assert codes(src) == [("R006", 4)]
