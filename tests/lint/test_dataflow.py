"""Write-set oracle tests for the intraprocedural effect engine."""

from __future__ import annotations

import ast

from repro.lint.dataflow import attr_chain, collect_effects, is_rng_chain


def effects_of(source: str):
    """Effects of the first function defined in ``source``."""
    tree = ast.parse(source)
    fn = next(
        n for n in tree.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return collect_effects(fn)


def write_chains(source: str) -> set[tuple[str, ...]]:
    return {w.chain for w in effects_of(source).writes}


# ---------------------------------------------------------------------------
# attr_chain — the conservative path abstraction everything else rests on
# ---------------------------------------------------------------------------
def test_attr_chain_resolves_dotted_paths():
    node = ast.parse("self.engine.sim.schedule", mode="eval").body
    assert attr_chain(node) == ("self", "engine", "sim", "schedule")


def test_attr_chain_refuses_interrupted_paths():
    for src in ("a[0].b", "f().b", "(a + b).c"):
        node = ast.parse(src, mode="eval").body
        assert attr_chain(node) is None, src


def test_is_rng_chain_heuristics():
    assert is_rng_chain(("self", "rng"))
    assert is_rng_chain(("random",))
    assert is_rng_chain(("streams", "churn_rng"))
    assert not is_rng_chain(("self", "ring"))


# ---------------------------------------------------------------------------
# Write-set oracle: hand-checked effect summaries
# ---------------------------------------------------------------------------
def test_attribute_writes_are_sites_and_bare_names_are_locals():
    src = (
        "def f(self, x):\n"
        "    y = x + 1\n"
        "    self.total = y\n"
        "    self.stats.count += 1\n"
    )
    eff = effects_of(src)
    assert {w.chain for w in eff.writes} == {
        ("self", "total"), ("self", "stats", "count"),
    }
    assert "y" in eff.locals


def test_kind_classification():
    src = (
        "def f(self, rows):\n"
        "    self.cache[0] = rows\n"
        "    self.n += 1\n"
        "    del self.tmp\n"
        "    for row in rows:\n"
        "        pass\n"
        "    with open('x') as fh:\n"
        "        pass\n"
    )
    eff = effects_of(src)
    kinds = {w.chain: w.kind for w in eff.writes}
    assert kinds[("self", "cache")] == "subscript"
    assert kinds[("self", "n")] == "augassign"
    assert kinds[("self", "tmp")] == "delete"
    # loop/with targets bind locals, not external state
    assert {"row", "fh"} <= set(eff.locals)


def test_global_declaration_taints_writes():
    src = (
        "def f():\n"
        "    global counter\n"
        "    counter += 1\n"
    )
    eff = effects_of(src)
    assert "counter" in eff.globals_declared
    assert {w.kind for w in eff.writes if w.chain == ("counter",)} == {"global"}


def test_calls_record_receiver_chain_and_args():
    src = (
        "def f(self, cb):\n"
        "    self.sim.schedule(1.0, cb)\n"
    )
    eff = effects_of(src)
    call = next(c for c in eff.calls if c.chain == ("self", "sim", "schedule"))
    assert call.args[1] == ("cb",)


def test_aliases_resolve_through_local_names():
    src = (
        "def f(self):\n"
        "    eng = self.engine\n"
        "    eng.peers.append(1)\n"
    )
    eff = effects_of(src)
    assert eff.aliases["eng"] == ("self", "engine")
    call = next(c for c in eff.calls if c.chain[-1] == "append")
    assert eff.resolve(call.chain) == ("self", "engine", "peers", "append")


def test_nested_defs_are_not_folded_in_but_lambdas_are():
    src = (
        "def f(self):\n"
        "    def inner():\n"
        "        self.hidden = 1\n"
        "    g = lambda: self.engine.advance()\n"
        "    return inner, g\n"
    )
    eff = effects_of(src)
    assert ("self", "hidden") not in {w.chain for w in eff.writes}
    assert ("self", "engine", "advance") in {c.chain for c in eff.calls}


def test_effects_serialize_round_trip():
    src = (
        "def f(self, xs):\n"
        "    total = 0.0\n"
        "    for x in xs:\n"
        "        total += x\n"
        "    self.sim.schedule(0.0, self.fire)\n"
    )
    eff = effects_of(src)
    from repro.lint.dataflow import FunctionEffects

    assert FunctionEffects.from_dict(eff.as_dict()) == eff
