"""Baseline semantics, including the hypothesis round-trip property."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lint.baseline import Baseline, BaselineError
from repro.lint.model import Finding

_codes = st.sampled_from(
    ["R001", "R003", "R004", "R006", "R007", "R009", "R012"]
)
_paths = st.sampled_from(
    ["src/repro/a.py", "src/repro/b.py", "tests/x.py", "benchmarks/y.py"]
)
_messages = st.text(
    alphabet=st.characters(codec="utf-8", exclude_characters="\r\n"),
    min_size=1,
    max_size=40,
)

_findings = st.builds(
    Finding,
    code=_codes,
    message=_messages,
    path=_paths,
    line=st.integers(min_value=1, max_value=500),
    col=st.integers(min_value=0, max_value=80),
)


@given(findings=st.lists(_findings, max_size=30))
def test_roundtrip_unchanged_tree_yields_zero_new_findings(findings, tmp_path_factory):
    """write -> load -> diff on the identical tree reports nothing new."""
    tmp = tmp_path_factory.mktemp("baseline")
    target = tmp / "baseline.json"
    Baseline.from_findings(findings, root=tmp).save(target)
    loaded = Baseline.load(target)
    new, baselined = loaded.apply(findings)
    assert new == []
    assert len(baselined) == len(findings)


@given(findings=st.lists(_findings, max_size=20))
def test_roundtrip_is_line_drift_tolerant(findings, tmp_path_factory):
    """Shifting every finding's line/col leaves the baseline diff empty."""
    tmp = tmp_path_factory.mktemp("baseline")
    target = tmp / "baseline.json"
    Baseline.from_findings(findings, root=tmp).save(target)
    drifted = [
        Finding(
            code=f.code, message=f.message, path=f.path,
            line=f.line + 7, col=f.col + 1,
        )
        for f in findings
    ]
    new, baselined = Baseline.load(target).apply(drifted)
    assert new == []
    assert len(baselined) == len(findings)


@given(findings=st.lists(_findings, min_size=1, max_size=20))
def test_extra_occurrences_beyond_recorded_count_are_new(findings, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("baseline")
    target = tmp / "baseline.json"
    Baseline.from_findings(findings, root=tmp).save(target)
    doubled = findings + findings
    new, baselined = Baseline.load(target).apply(doubled)
    assert len(baselined) == len(findings)
    assert len(new) == len(findings)


def test_relative_and_absolute_invocations_share_keys(tmp_path):
    """The committed use case: repo-root baseline, any invocation root."""
    target = tmp_path / "baseline.json"
    (tmp_path / "pkg").mkdir()
    source = tmp_path / "pkg" / "mod.py"
    source.write_text("x = 1\n")
    relative = Finding(
        code="R001", message="m", path="pkg/mod.py", line=1, col=0
    )
    absolute = Finding(
        code="R001", message="m", path=str(source), line=1, col=0
    )
    import contextlib
    import os

    @contextlib.contextmanager
    def chdir(p):
        old = os.getcwd()
        os.chdir(p)
        try:
            yield
        finally:
            os.chdir(old)

    with chdir(tmp_path):
        Baseline.from_findings([relative], root=tmp_path).save(target)
        new, baselined = Baseline.load(target).apply([absolute])
    assert new == []
    assert len(baselined) == 1


def test_malformed_payloads_raise_baseline_error(tmp_path):
    cases = [
        "[]",
        '{"version": 99, "entries": []}',
        '{"version": 1, "entries": [{"code": "R001"}]}',
        '{"version": 1, "entries": [{"path": "p", "code": "R001", '
        '"message": "m", "count": 0}]}',
        "not json",
    ]
    for i, text in enumerate(cases):
        bad = tmp_path / f"bad{i}.json"
        bad.write_text(text)
        with pytest.raises(BaselineError):
            Baseline.load(bad)
    with pytest.raises(BaselineError):
        Baseline.load(tmp_path / "missing.json")


def test_saved_payload_is_stable_and_sorted(tmp_path):
    findings = [
        Finding(code="R003", message="b", path="z.py", line=9, col=0),
        Finding(code="R001", message="a", path="a.py", line=1, col=0),
        Finding(code="R001", message="a", path="a.py", line=2, col=0),
    ]
    target = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(target)
    text = target.read_text()
    assert text.endswith("\n")
    # regenerating from the same findings is byte-identical
    again = tmp_path / "again.json"
    Baseline.from_findings(list(reversed(findings))).save(again)
    assert again.read_text() == text
