"""Unit tests for the repro-lint rule catalogue."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import lint_file, lint_paths, lint_source
from repro.lint.engine import PARSE_ERROR_CODE
from repro.lint.program import PROJECT_RULES
from repro.lint.rules import RULES

FIXTURE = Path(__file__).parent / "fixtures" / "violations.py"
PROJECT_FIXTURE = Path(__file__).parent / "fixtures" / "project"
_EXPECT_RE = re.compile(r"#\s*expect:\s*((?:R\d{3}[ ,]*)+)")


def expected_tags(path: Path) -> set[tuple[str, int]]:
    """(code, line) pairs declared by ``# expect:`` tags (several per line ok)."""
    expected = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            for code in re.findall(r"R\d{3}", match.group(1)):
                expected.add((code, lineno))
    return expected


def codes(source: str, **kwargs) -> list[tuple[str, int]]:
    """(code, line) pairs reported for ``source``."""
    result = lint_source(source, **kwargs)
    return [(f.code, f.line) for f in result.findings]


# ---------------------------------------------------------------------------
# The acceptance fixtures: exact code/line agreement with the # expect: tags
# ---------------------------------------------------------------------------
def test_fixture_reports_every_tagged_violation_and_nothing_else():
    expected = expected_tags(FIXTURE)
    assert expected, "fixture must carry # expect: tags"
    result = lint_file(FIXTURE)
    assert {(f.code, f.line) for f in result.findings} == expected
    # the deliberately suppressed R001 is reported as suppressed, not lost
    assert [f.code for f in result.suppressed] == ["R001"]


def test_project_fixture_reports_every_tagged_violation_and_nothing_else():
    expected = {}
    for path in sorted(PROJECT_FIXTURE.rglob("*.py")):
        for code, line in expected_tags(path):
            expected.setdefault(str(path), set()).add((code, line))
    assert expected, "project fixture must carry # expect: tags"
    result = lint_paths([PROJECT_FIXTURE])
    reported: dict[str, set[tuple[str, int]]] = {}
    for f in result.findings:
        reported.setdefault(str(Path(f.path).resolve()), set()).add((f.code, f.line))
    assert reported == {str(Path(p).resolve()): tags for p, tags in expected.items()}


def test_fixtures_cover_all_registered_rules():
    # violations.py covers every per-module rule and the single-file project
    # rules; the project tree adds the cross-module ones (R009, transitive
    # R006, import-closure R007).  Together: the full catalogue.
    single = {f.code for f in lint_file(FIXTURE).findings}
    tree = {f.code for f in lint_paths([PROJECT_FIXTURE]).findings}
    assert single | tree == set(RULES) | set(PROJECT_RULES)


# ---------------------------------------------------------------------------
# R001 — unseeded RNG
# ---------------------------------------------------------------------------
def test_r001_flags_stdlib_random_import_from():
    found = codes("from random import choice\n")
    assert found == [("R001", 1)]


def test_r001_flags_aliased_numpy():
    src = "import numpy\nx = numpy.random.randint(3)\n"
    assert codes(src) == [("R001", 2)]


def test_r001_allows_rngstreams_and_seeded_default_rng():
    src = (
        "import numpy as np\n"
        "from repro.rng import RngStreams\n"
        "rng = RngStreams(7).get('churn')\n"
        "gen = np.random.default_rng(np.random.SeedSequence(1))\n"
        "x = rng.random()\n"
    )
    assert codes(src) == []


# ---------------------------------------------------------------------------
# R002 — wall clock, scoped to the deterministic packages
# ---------------------------------------------------------------------------
def test_r002_flags_datetime_now():
    src = "from datetime import datetime\nt = datetime.now()\n"
    assert codes(src) == [("R002", 2)]


def test_r002_exempts_experiments_package():
    src = "import time\nt = time.perf_counter()\n"
    assert codes(src, module="repro.experiments.runner") == []
    assert codes(src, module="repro.sim.kernel") == [("R002", 2)]
    # files outside the repro tree are always checked
    assert codes(src) == [("R002", 2)]


# ---------------------------------------------------------------------------
# R003 — unordered iteration
# ---------------------------------------------------------------------------
def test_r003_tracks_local_set_bindings():
    src = "s = set(items)\nout = [x for x in s]\n"
    assert codes(src) == [("R003", 2)]


def test_r003_flags_dict_keys_iteration():
    src = "for k in mapping.keys():\n    use(k)\n"
    assert codes(src) == [("R003", 1)]


def test_r003_accepts_sorted_wrapping():
    src = "s = set(items)\nout = [x for x in sorted(s)]\nfor x in sorted(s):\n    use(x)\n"
    assert codes(src) == []


def test_r003_exempts_order_free_sinks():
    # feeding a set comprehension or frozenset cannot leak ordering
    src = (
        "s = set(items)\n"
        "total = sum(x for x in s)\n"
        "f = frozenset(x for x in s)\n"
        "t = {x * 2 for x in s}\n"
    )
    assert codes(src) == []


def test_r003_flags_set_union_iteration():
    src = "pool = set(a) | set(b)\nout = [x for x in pool]\n"
    assert codes(src) == [("R003", 2)]


# ---------------------------------------------------------------------------
# R004 — float time equality
# ---------------------------------------------------------------------------
def test_r004_flags_sim_now_equality():
    assert codes("if sim.now == deadline_time:\n    pass\n") == [("R004", 1)]
    assert codes("ready = issued_at != t\n") == [("R004", 1)]


def test_r004_allows_ordering_and_zero_sentinel():
    src = "if sim.now >= deadline_time:\n    pass\nif issued_at == 0:\n    pass\n"
    assert codes(src) == []


# ---------------------------------------------------------------------------
# R005 — mutable defaults / shared class attributes
# ---------------------------------------------------------------------------
def test_r005_flags_kwonly_and_lambda_defaults():
    src = "def f(*, acc={}):\n    return acc\ng = lambda xs=[]: xs\n"
    assert [c for c, _ in codes(src)] == ["R005", "R005"]


def test_r005_allows_constants_dunders_and_none():
    src = (
        "class Config:\n"
        "    PRESETS = {'a': 1}\n"
        "    __slots__ = ['x']\n"
        "    name = 'static'\n"
        "def f(x=None, y=()):\n"
        "    return x, y\n"
    )
    assert codes(src) == []


# ---------------------------------------------------------------------------
# Engine behaviour
# ---------------------------------------------------------------------------
def test_syntax_errors_surface_as_r000():
    result = lint_source("def broken(:\n")
    assert [f.code for f in result.findings] == [PARSE_ERROR_CODE]


def test_file_wide_suppression():
    src = (
        "# repro-lint: disable-file=R001\n"
        "import random\n"
        "x = random.random()\n"
        "t = __import__('time').time()\n"
    )
    result = lint_source(src)
    assert [f.code for f in result.findings] == []  # R002 needs a real import
    assert [f.code for f in result.suppressed] == ["R001"]


def test_unknown_select_code_rejected():
    with pytest.raises(ValueError):
        lint_source("x = 1\n", select=["R999"])


def test_select_and_ignore_narrow_the_rule_set():
    src = "import random\nx = random.random()\nd = lambda xs=[]: xs\n"
    assert [c for c, _ in codes(src, select=["R001"])] == ["R001"]
    assert [c for c, _ in codes(src, ignore=["R001"])] == ["R005"]


# ---------------------------------------------------------------------------
# R008 — digest-tainted unordered iteration (dataflow upgrade of R003)
# ---------------------------------------------------------------------------
def test_r008_flags_schedule_fed_by_set_iteration():
    src = (
        "def fire(sim, pending: set):\n"
        "    for cb in pending:\n"
        "        sim.schedule(0.0, cb)\n"
    )
    assert codes(src) == [("R008", 2)]


def test_r008_subsumes_r003_on_the_same_line():
    src = (
        "def fire(sim, pending: set):\n"
        "    for cb in pending:\n"
        "        sim.schedule(0.0, cb)\n"
    )
    found = codes(src)
    assert ("R003", 2) not in found


def test_r008_flags_rng_draw_inside_unordered_loop():
    src = (
        "def jitter(rng, peers: set):\n"
        "    for p in peers:\n"
        "        p.delay = rng.random()\n"
    )
    assert codes(src) == [("R008", 2)]


def test_r008_quiet_without_a_sink():
    src = (
        "def collect(pending: set):\n"
        "    out = []\n"
        "    for cb in pending:\n"
        "        out.append(cb)\n"
        "    return out\n"
    )
    # plain R003 still applies; the sharper R008 must not fire
    assert codes(src) == [("R003", 3)]


def test_r008_accepts_sorted_iteration():
    src = (
        "def fire(sim, pending: set):\n"
        "    for cb in sorted(pending):\n"
        "        sim.schedule(0.0, cb)\n"
    )
    assert codes(src) == []


# ---------------------------------------------------------------------------
# R010 — environment reads in deterministic packages
# ---------------------------------------------------------------------------
def test_r010_flags_environ_and_getenv():
    src = (
        "import os\n"
        "w = os.environ.get('W', '1')\n"
        "x = os.getenv('X')\n"
    )
    assert [c for c, _ in codes(src)] == ["R010", "R010"]


def test_r010_flags_from_import_forms():
    src = "from os import environ\nlevel = environ['LEVEL']\n"
    assert codes(src) == [("R010", 2)]


def test_r010_exempts_orchestration_layer():
    src = "import os\nw = os.environ.get('W')\n"
    assert codes(src, module="repro.orchestrate.pool") == []
    assert codes(src, module="repro.sim.kernel") == [("R010", 2)]


# ---------------------------------------------------------------------------
# R011 — non-commutative float accumulation over unordered collections
# ---------------------------------------------------------------------------
def test_r011_flags_float_accumulator_over_set():
    src = (
        "def load(peers: set):\n"
        "    total = 0.0\n"
        "    for p in peers:\n"
        "        total += p.load\n"
        "    return total\n"
    )
    assert codes(src) == [("R011", 3)]


def test_r011_ignores_int_accumulators_and_ordered_iterables():
    src = (
        "def count(peers: set, rows: list):\n"
        "    n = 0\n"
        "    for p in peers:\n"
        "        n += 1\n"
        "    total = 0.0\n"
        "    for r in rows:\n"
        "        total += r\n"
        "    return n, total\n"
    )
    # the set loop accumulates an int (R003 only); the float loop is ordered
    assert codes(src) == [("R003", 3)]


def test_r011_accepts_sorted_accumulation():
    src = (
        "def load(peers: set):\n"
        "    total = 0.0\n"
        "    for p in sorted(peers):\n"
        "        total += p.load\n"
        "    return total\n"
    )
    assert codes(src) == []


# ---------------------------------------------------------------------------
# R012 — fork-unsafe lazy module caches
# ---------------------------------------------------------------------------
def test_r012_flags_lazy_dict_fill_and_global_rebind():
    src = (
        "_CACHE = {}\n"
        "_rows = None\n"
        "def lookup(k, build):\n"
        "    if k not in _CACHE:\n"
        "        _CACHE[k] = build(k)\n"
        "    return _CACHE[k]\n"
        "def rows(build):\n"
        "    global _rows\n"
        "    if _rows is None:\n"
        "        _rows = build()\n"
        "    return _rows\n"
    )
    assert [(c, ln) for c, ln in codes(src)] == [("R012", 5), ("R012", 10)]


def test_r012_flags_mutator_calls_on_lazy_containers():
    src = (
        "_SEEN = set()\n"
        "def remember(x):\n"
        "    _SEEN.add(x)\n"
    )
    assert codes(src) == [("R012", 3)]


def test_r012_ignores_shadowing_locals_and_eager_builds():
    src = (
        "_TABLE = {k: k * 2 for k in range(4)}\n"
        "def local_cache(xs):\n"
        "    _CACHE = {}\n"
        "    for x in xs:\n"
        "        _CACHE[x] = x\n"
        "    return _CACHE\n"
    )
    assert codes(src) == []
