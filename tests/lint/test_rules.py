"""Unit tests for the repro-lint rule catalogue."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import lint_file, lint_source
from repro.lint.engine import PARSE_ERROR_CODE
from repro.lint.rules import RULES

FIXTURE = Path(__file__).parent / "fixtures" / "violations.py"
_EXPECT_RE = re.compile(r"#\s*expect:\s*(R\d{3})")


def codes(source: str, **kwargs) -> list[tuple[str, int]]:
    """(code, line) pairs reported for ``source``."""
    result = lint_source(source, **kwargs)
    return [(f.code, f.line) for f in result.findings]


# ---------------------------------------------------------------------------
# The acceptance fixture: exact code/line agreement with the # expect: tags
# ---------------------------------------------------------------------------
def test_fixture_reports_every_tagged_violation_and_nothing_else():
    expected = set()
    for lineno, line in enumerate(FIXTURE.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            expected.add((match.group(1), lineno))
    assert expected, "fixture must carry # expect: tags"
    result = lint_file(FIXTURE)
    assert {(f.code, f.line) for f in result.findings} == expected
    # the deliberately suppressed R001 is reported as suppressed, not lost
    assert [f.code for f in result.suppressed] == ["R001"]


def test_fixture_covers_all_registered_rules():
    result = lint_file(FIXTURE)
    assert {f.code for f in result.findings} == set(RULES)


# ---------------------------------------------------------------------------
# R001 — unseeded RNG
# ---------------------------------------------------------------------------
def test_r001_flags_stdlib_random_import_from():
    found = codes("from random import choice\n")
    assert found == [("R001", 1)]


def test_r001_flags_aliased_numpy():
    src = "import numpy\nx = numpy.random.randint(3)\n"
    assert codes(src) == [("R001", 2)]


def test_r001_allows_rngstreams_and_seeded_default_rng():
    src = (
        "import numpy as np\n"
        "from repro.rng import RngStreams\n"
        "rng = RngStreams(7).get('churn')\n"
        "gen = np.random.default_rng(np.random.SeedSequence(1))\n"
        "x = rng.random()\n"
    )
    assert codes(src) == []


# ---------------------------------------------------------------------------
# R002 — wall clock, scoped to the deterministic packages
# ---------------------------------------------------------------------------
def test_r002_flags_datetime_now():
    src = "from datetime import datetime\nt = datetime.now()\n"
    assert codes(src) == [("R002", 2)]


def test_r002_exempts_experiments_package():
    src = "import time\nt = time.perf_counter()\n"
    assert codes(src, module="repro.experiments.runner") == []
    assert codes(src, module="repro.sim.kernel") == [("R002", 2)]
    # files outside the repro tree are always checked
    assert codes(src) == [("R002", 2)]


# ---------------------------------------------------------------------------
# R003 — unordered iteration
# ---------------------------------------------------------------------------
def test_r003_tracks_local_set_bindings():
    src = "s = set(items)\nout = [x for x in s]\n"
    assert codes(src) == [("R003", 2)]


def test_r003_flags_dict_keys_iteration():
    src = "for k in mapping.keys():\n    use(k)\n"
    assert codes(src) == [("R003", 1)]


def test_r003_accepts_sorted_wrapping():
    src = "s = set(items)\nout = [x for x in sorted(s)]\nfor x in sorted(s):\n    use(x)\n"
    assert codes(src) == []


def test_r003_exempts_order_free_sinks():
    # feeding a set comprehension or frozenset cannot leak ordering
    src = (
        "s = set(items)\n"
        "total = sum(x for x in s)\n"
        "f = frozenset(x for x in s)\n"
        "t = {x * 2 for x in s}\n"
    )
    assert codes(src) == []


def test_r003_flags_set_union_iteration():
    src = "pool = set(a) | set(b)\nout = [x for x in pool]\n"
    assert codes(src) == [("R003", 2)]


# ---------------------------------------------------------------------------
# R004 — float time equality
# ---------------------------------------------------------------------------
def test_r004_flags_sim_now_equality():
    assert codes("if sim.now == deadline_time:\n    pass\n") == [("R004", 1)]
    assert codes("ready = issued_at != t\n") == [("R004", 1)]


def test_r004_allows_ordering_and_zero_sentinel():
    src = "if sim.now >= deadline_time:\n    pass\nif issued_at == 0:\n    pass\n"
    assert codes(src) == []


# ---------------------------------------------------------------------------
# R005 — mutable defaults / shared class attributes
# ---------------------------------------------------------------------------
def test_r005_flags_kwonly_and_lambda_defaults():
    src = "def f(*, acc={}):\n    return acc\ng = lambda xs=[]: xs\n"
    assert [c for c, _ in codes(src)] == ["R005", "R005"]


def test_r005_allows_constants_dunders_and_none():
    src = (
        "class Config:\n"
        "    PRESETS = {'a': 1}\n"
        "    __slots__ = ['x']\n"
        "    name = 'static'\n"
        "def f(x=None, y=()):\n"
        "    return x, y\n"
    )
    assert codes(src) == []


# ---------------------------------------------------------------------------
# Engine behaviour
# ---------------------------------------------------------------------------
def test_syntax_errors_surface_as_r000():
    result = lint_source("def broken(:\n")
    assert [f.code for f in result.findings] == [PARSE_ERROR_CODE]


def test_file_wide_suppression():
    src = (
        "# repro-lint: disable-file=R001\n"
        "import random\n"
        "x = random.random()\n"
        "t = __import__('time').time()\n"
    )
    result = lint_source(src)
    assert [f.code for f in result.findings] == []  # R002 needs a real import
    assert [f.code for f in result.suppressed] == ["R001"]


def test_unknown_select_code_rejected():
    with pytest.raises(ValueError):
        lint_source("x = 1\n", select=["R999"])


def test_select_and_ignore_narrow_the_rule_set():
    src = "import random\nx = random.random()\nd = lambda xs=[]: xs\n"
    assert [c for c, _ in codes(src, select=["R001"])] == ["R001"]
    assert [c for c, _ in codes(src, ignore=["R001"])] == ["R005"]
