"""Intentionally hazardous code: the repro-lint acceptance fixture.

Every line tagged ``# expect: CODE`` must be reported by the linter with that
code at that line; the tests in ``tests/lint`` assert the exact code/line
set, and the CLI test asserts the non-zero exit.  This file is never
imported by the test suite — it exists purely as lint input (and is excluded
from ruff/mypy in ``pyproject.toml``).
"""

import itertools
import os
import random
import time

import numpy as np

from repro.sim.events import mark_observer


def stdlib_draw():
    return random.random()  # expect: R001


def numpy_global_draw():
    return np.random.rand(3)  # expect: R001


def unseeded_generator():
    return np.random.default_rng()  # expect: R001


def seeded_generator_is_fine(seed: int):
    return np.random.default_rng(seed)


def wall_clock_stamp():
    return time.time()  # expect: R002


def wall_clock_perf():
    return time.perf_counter()  # expect: R002


def schedule_from_set(pending: set[int]) -> list[int]:
    out = []
    for task in pending:  # expect: R003
        out.append(task)
    return out


def sorted_iteration_is_fine(pending: set[int]) -> list[int]:
    return [task for task in sorted(pending)]


def same_instant(event_time: float, issued_at: float) -> bool:
    return event_time == issued_at  # expect: R004


def ordering_is_fine(event_time: float, issued_at: float) -> bool:
    return event_time <= issued_at


def collect(results=[]):  # expect: R005
    results.append(1)
    return results


class ProtocolState:
    neighbors = []  # expect: R005

    def __init__(self) -> None:
        self.links: list[int] = []


@mark_observer
def impure_probe(engine):
    engine.tick_count += 1  # expect: R006


@mark_observer
def pure_probe_is_fine(engine):
    return len(engine.peers)


_QUERY_IDS = itertools.count()


def simulate_task(spec):
    return next(_QUERY_IDS)  # expect: R007


def flush(sim, waiting: set):
    for peer in waiting:  # expect: R008
        sim.schedule(0.0, peer)


def worker_count():
    return int(os.environ.get("REPRO_WORKERS", "1"))  # expect: R010


def unstable_total(loads: set):
    total = 0.0
    for load in loads:  # expect: R011
        total += load
    return total


_DELAY_CACHE = {}


def delay_for(pair, compute):
    if pair not in _DELAY_CACHE:
        _DELAY_CACHE[pair] = compute(pair)  # expect: R007 R012
    return _DELAY_CACHE[pair]


@mark_observer
def perf_sink_write_is_fine(engine, perf_counters, alloc_snapshots):
    perf_counters.record_named("fastpath.search", 0.001)
    alloc_snapshots.snapshot("engine.run")
    return len(engine.peers)


@mark_observer
def perf_sink_back_into_engine(stack_sampler):
    stack_sampler.engine.peers = []  # expect: R006


def suppressed_draw():
    # The justification comment rides along with the suppression:
    return random.random()  # repro-lint: disable=R001 -- fixture: exercising suppression syntax
