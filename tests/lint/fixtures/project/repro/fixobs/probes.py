"""Observer callbacks for the transitive R006 fixture.

``clean_probe`` only reads through ``snapshot`` and must pass; the
``tainted_probe`` reaches ``helpers.advance`` which mutates engine state,
so the purity rule must flag it through the call graph.
"""

from repro.fixobs.helpers import advance, snapshot
from repro.sim.events import mark_observer


@mark_observer
def clean_probe(engine):
    return snapshot(engine)


@mark_observer
def tainted_probe(engine):
    advance(engine)  # the finding lands on the write in helpers.advance
