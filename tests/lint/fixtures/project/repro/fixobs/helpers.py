"""Helpers called from ``probes.py`` — one pure, one engine-mutating.

The observer-purity rule (R006) must follow calls from an observer into
this module and flag the mutation in ``advance`` transitively.
"""


def snapshot(engine):
    return {peer.node: tuple(peer.neighbors) for peer in engine.peers}


def advance(engine):
    engine.clock += 1  # expect: R006
