"""Reference half of the R009 parity fixture (see ``fastpath.py``).

Mirrors the anchor shape of ``repro.core.search.generic_search``: the
whole-program parity rule pairs this file with its filesystem sibling
``fastpath.py`` and audits the two parameter sets against the contract
tables in ``repro.lint.program``.
"""


def generic_search(view, initiator, item, termination, rng):
    results = []
    for node in sorted(view):
        if item in view[node]:
            results.append(node)
        if termination(results):
            break
    return results
