"""Fast-path half of the R009 parity fixture (see ``search.py``).

``boost_factor`` deliberately has no counterpart in ``generic_search`` and
no rationale in the parity-contract tables, so R009 must flag it.
"""


class FloodFastPath:
    def __init__(self, adjacency, boost_factor):  # expect: R009
        self.adjacency = adjacency
        self.boost_factor = boost_factor

    def search(self, initiator, item):
        hits = []
        for node in sorted(self.adjacency.get(initiator, ())):
            if item == node:
                hits.append(node * self.boost_factor)
        return hits
