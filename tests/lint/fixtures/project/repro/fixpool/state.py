"""Process-global result store for the cross-module R007 fixture.

Never mutated in *this* module's entrypoints — the hazard only exists
because ``runner.simulate_task`` (a pool-worker entry) imports it; R007
must reach it through the import closure.  (R012 stays quiet here on
purpose: ``fixpool`` is not one of the deterministic subpackages the
package-scoped rules patrol.)
"""

_RESULT_ROWS = []


def record(row):
    _RESULT_ROWS.append(row)  # expect: R007
