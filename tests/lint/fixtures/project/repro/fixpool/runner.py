"""Pool-worker entry for the cross-module R007 fixture.

``simulate_task`` is the orchestrator's worker entrypoint name; every
module in its import closure is executed inside pool workers, which is
what makes ``state._RESULT_ROWS`` process-global.
"""

from repro.fixpool import state


def simulate_task(spec):
    state.record(spec)
    return spec
