"""Symbol-table / call-graph construction tests against the fixture tree."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.graph import (
    ProjectIndex,
    build_index,
    index_cache_key,
    load_cached_index,
    store_cached_index,
)
from repro.lint.model import ModuleContext

PROJECT = Path(__file__).parent / "fixtures" / "project"


def fixture_index() -> ProjectIndex:
    contexts = []
    for path in sorted(PROJECT.rglob("*.py")):
        rel = path.relative_to(PROJECT).with_suffix("")
        module = ".".join(rel.parts)
        contexts.append(
            ModuleContext(
                path=str(path), module=module, tree=ast.parse(path.read_text())
            )
        )
    return build_index(contexts)


def test_index_records_functions_classes_and_imports():
    index = fixture_index()
    fastpath = index.by_module("repro.fixcore.fastpath")
    assert fastpath is not None
    assert set(fastpath.functions) == {
        "FloodFastPath.__init__", "FloodFastPath.search",
    }
    assert fastpath.classes["FloodFastPath"]["search"] == "FloodFastPath.search"

    probes = index.by_module("repro.fixobs.probes")
    assert probes.imports["advance"] == "repro.fixobs.helpers.advance"
    assert probes.imports["mark_observer"] == "repro.sim.events.mark_observer"
    assert "repro.fixobs.helpers" in probes.imported_modules


def test_index_records_observers_and_entrypoints():
    index = fixture_index()
    probes = index.by_module("repro.fixobs.probes")
    assert {o.target for o in probes.observers} == {
        "clean_probe", "tainted_probe",
    }
    runner = index.by_module("repro.fixpool.runner")
    assert runner.entrypoints == ("simulate_task",)


def test_index_records_module_mutables_and_mutations():
    index = fixture_index()
    state = index.by_module("repro.fixpool.state")
    assert state.module_mutables == {"_RESULT_ROWS": "container"}
    (mutation,) = state.mutations
    assert mutation.name == "_RESULT_ROWS"
    assert mutation.scope == "record"
    assert mutation.kind == "mutcall"


def test_resolve_call_follows_imports_across_modules():
    index = fixture_index()
    probes = index.by_module("repro.fixobs.probes")
    resolved = index.resolve_call(probes, ("advance",))
    assert resolved is not None
    record, fn = resolved
    assert record.module == "repro.fixobs.helpers"
    assert fn.qualname == "advance"


def test_import_closure_reaches_indirect_modules():
    index = fixture_index()
    closure = index.import_closure(["repro.fixpool.runner"])
    assert "repro.fixpool.state" in closure
    # the closure is restricted to indexed modules: stdlib names never leak in
    assert all(m.startswith("repro.") for m in closure)


def test_method_index_groups_by_bare_method_name():
    index = fixture_index()
    methods = index.method_index()
    assert any(
        fn.qualname == "FloodFastPath.search" for _, fn in methods["search"]
    )


def test_index_payload_round_trip():
    index = fixture_index()
    clone = ProjectIndex.from_payload(index.as_payload())
    assert sorted(clone.modules) == sorted(index.modules)
    for path, record in index.modules.items():
        assert clone.modules[path].as_dict() == record.as_dict()


def test_disk_cache_round_trip(tmp_path):
    index = fixture_index()
    sources = [
        (str(p), p.read_text()) for p in sorted(PROJECT.rglob("*.py"))
    ]
    key = index_cache_key(sources)
    assert load_cached_index(tmp_path, key) is None
    store_cached_index(tmp_path, key, index)
    cached = load_cached_index(tmp_path, key)
    assert cached is not None
    assert sorted(cached.modules) == sorted(index.modules)
    # any source change must change the key
    changed = [(p, s + "\n# touched\n") for p, s in sources]
    assert index_cache_key(changed) != key
