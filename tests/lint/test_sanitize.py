"""Runtime sanitizer tests: event-stream hashing and invariant probes.

The same-seed tests are the repo's determinism regression guard: any change
that makes two identical-config runs execute a different event stream —
unseeded randomness, wall-clock coupling, ordering-sensitive iteration —
shows up here as a digest mismatch.
"""

from __future__ import annotations

import pytest

from repro.errors import SanitizerError
from repro.experiments.common import preset_config
from repro.experiments.figure1 import MAX_HOPS
from repro.gnutella.simulation import build_engine, run_simulation
from repro.lint.sanitize import (
    attach_hasher,
    install_consistency_checks,
    run_hashed,
    stable_repr,
)
from repro.sim.kernel import Simulator
from repro.types import HOUR


def smoke_config(seed: int = 3, **overrides):
    """A shrunken Figure-1 smoke configuration (fast enough for every CI run)."""
    defaults = dict(
        n_users=60,
        n_items=6_000,
        mean_library=40.0,
        std_library=10.0,
        horizon=2 * HOUR,
        warmup_hours=0,
        max_hops=MAX_HOPS,
    )
    defaults.update(overrides)
    return preset_config("smoke", seed=seed, **defaults)


# ---------------------------------------------------------------------------
# Event-stream hashing
# ---------------------------------------------------------------------------
def test_hasher_covers_executed_events_only():
    sim = Simulator()
    hasher = attach_hasher(sim)
    fired: list[str] = []
    sim.schedule(1.0, fired.append, "a")
    cancelled = sim.schedule(2.0, fired.append, "never")
    cancelled.cancel()
    sim.schedule(3.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b"]
    assert hasher.events_hashed == 2


def test_hasher_digest_distinguishes_streams():
    def digest_of(*events: tuple[float, str]) -> str:
        sim = Simulator()
        hasher = attach_hasher(sim)
        sink: list[str] = []
        for delay, tag in events:
            sim.schedule(delay, sink.append, tag)
        sim.run()
        return hasher.hexdigest()

    assert digest_of((1.0, "a"), (2.0, "b")) == digest_of((1.0, "a"), (2.0, "b"))
    # different firing times, different payloads, different lengths all show
    assert digest_of((1.0, "a"), (2.0, "b")) != digest_of((1.0, "a"), (3.0, "b"))
    assert digest_of((1.0, "a")) != digest_of((1.0, "b"))
    assert digest_of((1.0, "a")) != digest_of((1.0, "a"), (2.0, "b"))


def test_stable_repr_is_value_based():
    assert stable_repr((1, "a", 2.5)) == stable_repr((1, "a", 2.5))
    assert stable_repr({3, 1, 2}) == stable_repr({2, 1, 3})
    assert "0x1.4" in stable_repr(1.25)  # floats hash bit-exactly
    # arbitrary objects render by type, not by id-bearing repr
    assert stable_repr(object()) == "<object>"


# ---------------------------------------------------------------------------
# Same-seed determinism regression guard (Figure-1 smoke shape)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("dynamic", [False, True], ids=["static", "dynamic"])
def test_same_seed_figure1_smoke_runs_hash_identically(dynamic):
    config = smoke_config(seed=11)
    config = config.as_dynamic() if dynamic else config.as_static()
    result_a, digest_a = run_hashed(config)
    result_b, digest_b = run_hashed(config)
    assert digest_a == digest_b
    assert result_a.metrics.total_hits == result_b.metrics.total_hits
    assert result_a.metrics.messages_total() == result_b.metrics.messages_total()


def test_different_seeds_hash_differently():
    _, digest_a = run_hashed(smoke_config(seed=1))
    _, digest_b = run_hashed(smoke_config(seed=2))
    assert digest_a != digest_b


# ---------------------------------------------------------------------------
# Periodic Section 3.1 consistency assertions
# ---------------------------------------------------------------------------
def test_clean_run_passes_consistency_probes():
    # run_simulation(sanitize=True) is the public debug-flag entry point
    result = run_simulation(smoke_config(seed=5), sanitize=True)
    assert result.metrics.total_queries > 0


def test_corrupted_state_raises_sanitizer_error():
    engine = build_engine(smoke_config(seed=5))

    def corrupt() -> None:
        # a dangling out-edge with no reciprocal in-edge: exactly the
        # Section 3.1 inconsistency the probe must catch; offline peers have
        # empty lists, so the add cannot hit capacity or duplicate errors
        offline = [p for p in engine.peers if not p.online]
        a, b = offline[0], offline[1]
        a.neighbors.outgoing.add(b.node)

    install_consistency_checks(engine, every=600.0)
    engine.sim.schedule(900.0, corrupt)
    with pytest.raises(SanitizerError, match="consistency violated"):
        engine.run()


def test_asymmetric_state_raises_symmetry_error():
    engine = build_engine(smoke_config(seed=5))

    def corrupt() -> None:
        # the edge is consistent (a in In(b)) but Out != In at both ends,
        # which the symmetric relation forbids
        offline = [p for p in engine.peers if not p.online]
        a, b = offline[0], offline[1]
        a.neighbors.outgoing.add(b.node)
        b.neighbors.incoming.add(a.node)

    install_consistency_checks(engine, every=600.0)
    engine.sim.schedule(900.0, corrupt)
    with pytest.raises(SanitizerError, match="symmetry violated"):
        engine.run()


def test_invalid_interval_rejected():
    engine = build_engine(smoke_config())
    with pytest.raises(SanitizerError):
        install_consistency_checks(engine, every=0.0)


def test_env_flag_enables_sanitizer(monkeypatch):
    from repro.lint import sanitize

    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitize.sanitizer_env_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not sanitize.sanitizer_env_enabled()
    monkeypatch.delenv("REPRO_SANITIZE")
    assert not sanitize.sanitizer_env_enabled()
