"""Tests for deterministic RNG stream management."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rng import RngStreams, stream_key


class TestStreamKey:
    def test_stable_across_calls(self):
        assert stream_key("churn") == stream_key("churn")

    def test_distinct_names_distinct_keys(self):
        assert stream_key("churn") != stream_key("queries")

    def test_known_range(self):
        key = stream_key("anything")
        assert 0 <= key < 2**64


class TestRngStreams:
    def test_same_seed_same_draws(self):
        a = RngStreams(seed=42).get("x").random(8)
        b = RngStreams(seed=42).get("x").random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(seed=1).get("x").random(8)
        b = RngStreams(seed=2).get("x").random(8)
        assert not np.array_equal(a, b)

    def test_different_names_independent(self):
        streams = RngStreams(seed=0)
        a = streams.get("a").random(8)
        b = streams.get("b").random(8)
        assert not np.array_equal(a, b)

    def test_get_is_cached(self):
        streams = RngStreams(seed=0)
        assert streams.get("a") is streams.get("a")

    def test_consuming_one_stream_does_not_shift_another(self):
        s1 = RngStreams(seed=9)
        s1.get("noise").random(1000)
        after = s1.get("signal").random(4)

        s2 = RngStreams(seed=9)
        untouched = s2.get("signal").random(4)
        np.testing.assert_array_equal(after, untouched)

    def test_fresh_bypasses_cache(self):
        streams = RngStreams(seed=3)
        cached = streams.get("x")
        cached.random(100)
        fresh = streams.fresh("x")
        assert fresh is not cached
        # Fresh stream starts from the beginning of the sequence.
        np.testing.assert_array_equal(
            fresh.random(4), RngStreams(seed=3).get("x").random(4)
        )

    def test_child_streams_independent_of_parent(self):
        parent = RngStreams(seed=5)
        child = parent.child("replica-0")
        a = parent.get("x").random(4)
        b = child.get("x").random(4)
        assert not np.array_equal(a, b)

    def test_child_deterministic(self):
        a = RngStreams(seed=5).child("r").get("x").random(4)
        b = RngStreams(seed=5).child("r").get("x").random(4)
        np.testing.assert_array_equal(a, b)

    def test_rejects_non_integer_seed(self):
        with pytest.raises(TypeError):
            RngStreams(seed="abc")  # type: ignore[arg-type]

    def test_seed_property(self):
        assert RngStreams(seed=17).seed == 17

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.text(min_size=1, max_size=20))
    def test_property_determinism(self, seed, name):
        a = RngStreams(seed=seed).get(name).integers(0, 1 << 30, size=4)
        b = RngStreams(seed=seed).get(name).integers(0, 1 << 30, size=4)
        np.testing.assert_array_equal(a, b)
