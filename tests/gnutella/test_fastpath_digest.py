"""Engine-level equivalence: fast path vs reference, bit for bit.

The unit tests in ``tests/core/test_fastpath.py`` prove the BFS kernels
agree on frozen inputs. These tests prove the *wiring* agrees too: a full
``FastGnutellaEngine`` run with the fast path engaged must emit exactly the
same event stream (hashed with SHA-256) as the same engine with
``use_fastpath=False``, across static/dynamic schemes, TTLs, and growing
libraries — every knob that feeds back search outcomes into the world.
"""

import pytest

from repro.gnutella import FastGnutellaEngine, GnutellaConfig
from repro.lint.sanitize import run_hashed
from repro.types import HOUR


def small_config(**overrides):
    defaults = dict(
        n_users=60,
        n_items=3000,
        n_categories=10,
        mean_library=30.0,
        std_library=5.0,
        horizon=4 * HOUR,
        warmup_hours=0,
        queries_per_hour=6.0,
        max_hops=2,
        seed=7,
    )
    defaults.update(overrides)
    return GnutellaConfig(**defaults)


@pytest.mark.parametrize(
    "overrides",
    [
        pytest.param({}, id="static-ttl2"),
        pytest.param({"dynamic": True}, id="dynamic-ttl2"),
        pytest.param({"max_hops": 4, "seed": 21}, id="static-ttl4"),
        pytest.param(
            {"dynamic": True, "downloads_grow_libraries": True, "seed": 3},
            id="dynamic-growing-libraries",
        ),
    ],
)
def test_digest_identical_fast_vs_reference(overrides):
    config = small_config(**overrides)
    fast_result, fast_digest = run_hashed(config, "fast", sanitize=False)
    ref_result, ref_digest = run_hashed(config, "fast-reference", sanitize=False)
    assert fast_digest == ref_digest
    assert fast_result.metrics.total_queries == ref_result.metrics.total_queries
    assert fast_result.metrics.total_hits == ref_result.metrics.total_hits


def test_fastpath_engaged_only_on_flood():
    flood = FastGnutellaEngine(small_config())
    assert flood.fastpath_engaged
    reference = FastGnutellaEngine(small_config(), use_fastpath=False)
    assert not reference.fastpath_engaged
    # Non-flood strategies fall back to the generic machinery.
    walker = FastGnutellaEngine(small_config(search_strategy="random:2"))
    assert not walker.fastpath_engaged


def test_fastpath_survives_run_with_churn():
    """Dynamic run with the fast path: sane metrics, no stale-snapshot crash."""
    engine = FastGnutellaEngine(small_config(dynamic=True))
    assert engine.fastpath_engaged
    metrics = engine.run()
    assert metrics.total_queries > 0
