"""Tests for the detailed (message-level) engine."""

import pytest

from repro.gnutella import DetailedGnutellaEngine, GnutellaConfig
from repro.net.message import MessageKind
from repro.types import HOUR


def small_config(**overrides):
    defaults = dict(
        n_users=50,
        n_items=2000,
        n_categories=10,
        mean_library=25.0,
        std_library=5.0,
        horizon=3 * HOUR,
        warmup_hours=0,
        queries_per_hour=6.0,
        max_hops=2,
        seed=11,
    )
    defaults.update(overrides)
    return GnutellaConfig(**defaults)


class TestBasics:
    def test_run_produces_queries_and_replies(self):
        engine = DetailedGnutellaEngine(small_config())
        metrics = engine.run()
        assert metrics.total_queries > 0
        assert engine.transport.sent_by_kind[MessageKind.QUERY] > 0
        if metrics.total_hits:
            assert engine.transport.sent_by_kind[MessageKind.QUERY_REPLY] > 0

    def test_message_buckets_match_transport(self):
        engine = DetailedGnutellaEngine(small_config())
        metrics = engine.run()
        assert metrics.messages_total() == engine.transport.sent_by_kind[MessageKind.QUERY]

    def test_delays_positive_and_below_timeout(self):
        engine = DetailedGnutellaEngine(small_config())
        metrics = engine.run()
        if metrics.first_result_delay.count:
            assert metrics.first_result_delay.min > 0
            assert metrics.first_result_delay.max <= engine.config.query_timeout

    def test_deterministic(self):
        a = DetailedGnutellaEngine(small_config()).run()
        b = DetailedGnutellaEngine(small_config()).run()
        assert a.total_queries == b.total_queries
        assert a.total_hits == b.total_hits
        assert (a.messages.counts == b.messages.counts).all()

    def test_dynamic_reconfigures(self):
        metrics = DetailedGnutellaEngine(small_config(dynamic=True)).run()
        assert metrics.reconfigurations > 0

    def test_offline_peers_unregistered(self):
        engine = DetailedGnutellaEngine(small_config())
        engine.run()
        for peer in engine.peers:
            assert engine.transport.is_registered(peer.node) == peer.online


class TestReplyRouting:
    def test_reply_reaches_initiator_over_two_hops(self):
        """Hand-built 3-node chain: 0-1-2, item only at 2."""
        cfg = small_config(n_users=3, queries_per_hour=0.001, horizon=600.0,
                          warmup_hours=0, downloads_grow_libraries=False)
        engine = DetailedGnutellaEngine(cfg)
        # Take manual control: no churn scheduling, just wire the world.
        engine._ran = True
        for node in range(3):
            engine.peers[node].online = True
            engine.transport.register(node, engine._on_message)
            engine.bootstrap.join(node)
        engine.protocol.link(0, 1)
        engine.protocol.link(1, 2)
        item = next(iter(engine.live_libraries[2] - engine.live_libraries[1] -
                         engine.live_libraries[0]))
        # Issue the query directly.
        engine.query_model.sample_item = lambda *a, **k: item
        engine._fire_query(0, engine.peers[0].query_epoch)
        engine.sim.run(until=500.0)
        assert engine.metrics.total_hits == 1
        d01 = engine.latency.one_way_delay(0, 1)
        d12 = engine.latency.one_way_delay(1, 2)
        expected = 2 * (d01 + d12)
        assert engine.metrics.first_result_delay.mean == pytest.approx(expected, rel=1e-9)

    def test_duplicate_queries_not_reprocessed(self):
        """Diamond 0-{1,2}-3: node 3 receives two copies, replies once."""
        cfg = small_config(n_users=4, queries_per_hour=0.001, horizon=600.0,
                          downloads_grow_libraries=False)
        engine = DetailedGnutellaEngine(cfg)
        engine._ran = True
        for node in range(4):
            engine.peers[node].online = True
            engine.transport.register(node, engine._on_message)
        engine.protocol.link(0, 1)
        engine.protocol.link(0, 2)
        engine.protocol.link(1, 3)
        engine.protocol.link(2, 3)
        item = next(iter(engine.live_libraries[3] - engine.live_libraries[1] -
                         engine.live_libraries[2] - engine.live_libraries[0]))
        engine.query_model.sample_item = lambda *a, **k: item
        engine._fire_query(0, engine.peers[0].query_epoch)
        engine.sim.run(until=500.0)
        assert engine.metrics.total_hits == 1
        assert engine.metrics.total_results == 1  # one reply despite two copies
        # 4 query messages: 0->1, 0->2, 1->3, 2->3.
        assert engine.metrics.messages_total() == 4

    def test_churn_race_drops_reply(self):
        """The responder's relay logs off while the reply is in flight."""
        cfg = small_config(n_users=3, queries_per_hour=0.001, horizon=600.0,
                          downloads_grow_libraries=False, dynamic=False)
        engine = DetailedGnutellaEngine(cfg)
        engine._ran = True
        for node in range(3):
            engine.peers[node].online = True
            engine.transport.register(node, engine._on_message)
            engine.bootstrap.join(node)
        engine.protocol.link(0, 1)
        engine.protocol.link(1, 2)
        item = next(iter(engine.live_libraries[2] - engine.live_libraries[1] -
                         engine.live_libraries[0]))
        engine.query_model.sample_item = lambda *a, **k: item
        engine._fire_query(0, engine.peers[0].query_epoch)
        # Kill the relay before the forward leg even reaches it? No — after
        # forwarding, before the reply passes back: one-way 0->1 plus 1->2
        # then reply 2->1. Log 1 off right after it forwards.
        d01 = engine.latency.one_way_delay(0, 1)
        engine.sim.schedule(d01 + 1e-6, engine._logoff, 1)
        engine.sim.run(until=500.0)
        assert engine.metrics.total_hits == 0
