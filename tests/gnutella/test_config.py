"""Tests for GnutellaConfig validation and derived properties."""

import pytest

from repro.errors import ConfigurationError
from repro.gnutella import GnutellaConfig
from repro.types import DAY, HOUR


class TestDefaults:
    def test_paper_values(self):
        cfg = GnutellaConfig()
        assert cfg.n_users == 2000
        assert cfg.n_items == 200_000
        assert cfg.n_categories == 50
        assert cfg.zipf_theta == 0.9
        assert cfg.mean_library == 200.0
        assert cfg.std_library == 50.0
        assert cfg.horizon == 4 * DAY
        assert cfg.warmup_hours == 12
        assert cfg.mean_online == 3 * HOUR
        assert cfg.neighbor_slots == 4
        assert cfg.reconfiguration_threshold == 2
        assert cfg.max_hops == 2

    def test_horizon_hours(self):
        assert GnutellaConfig().horizon_hours == 96
        assert GnutellaConfig(horizon=90 * 60.0, warmup_hours=0).horizon_hours == 2


class TestSchemeSwitches:
    def test_as_static_and_dynamic(self):
        cfg = GnutellaConfig(seed=5)
        static = cfg.as_static()
        assert not static.dynamic
        assert static.seed == 5
        assert static.as_dynamic().dynamic

    def test_switch_preserves_other_fields(self):
        cfg = GnutellaConfig(max_hops=4, queries_per_hour=3.0)
        assert cfg.as_static().max_hops == 4
        assert cfg.as_static().queries_per_hour == 3.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_users": 1},
            {"horizon": 0},
            {"warmup_hours": -1},
            {"warmup_hours": 200},  # longer than the 4-day horizon
            {"queries_per_hour": 0},
            {"max_hops": 0},
            {"neighbor_slots": 0},
            {"reconfiguration_threshold": 0},
            {"query_timeout": 0},
            {"max_swaps_per_update": 0},
            {"swap_margin": -0.1},
            {"stats_decay_on_update": 1.5},
            {"stats_decay_on_update": -0.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            GnutellaConfig(**kwargs)

    def test_none_max_swaps_allowed(self):
        assert GnutellaConfig(max_swaps_per_update=None).max_swaps_per_update is None
