"""Integration: the paper's headline claims on a scaled-down scenario.

These are the properties the evaluation section rests on; if any breaks, the
figures stop reproducing. Run at hops=2 (the Figure 1/3(b) setting) on a
small-but-not-tiny population.
"""

import pytest

from repro.gnutella import GnutellaConfig, run_simulation
from repro.types import HOUR


@pytest.fixture(scope="module")
def results():
    cfg = GnutellaConfig(
        n_users=300,
        n_items=30_000,
        n_categories=50,
        mean_library=100.0,
        std_library=25.0,
        horizon=24 * HOUR,
        warmup_hours=6,
        queries_per_hour=8.0,
        max_hops=2,
        seed=5,
    )
    return (
        run_simulation(cfg.as_static()),
        run_simulation(cfg.as_dynamic()),
    )


class TestHeadlineClaims:
    def test_dynamic_satisfies_more_queries(self, results):
        static, dynamic = results
        assert dynamic.metrics.hits_total(6) > 1.05 * static.metrics.hits_total(6)

    def test_dynamic_does_not_increase_overhead(self, results):
        static, dynamic = results
        assert dynamic.metrics.messages_total(6) <= static.metrics.messages_total(6)

    def test_dynamic_lowers_first_result_delay(self, results):
        static, dynamic = results
        assert (
            dynamic.metrics.mean_first_result_delay_ms()
            < static.metrics.mean_first_result_delay_ms()
        )

    def test_dynamic_returns_more_results(self, results):
        static, dynamic = results
        assert dynamic.metrics.total_results > static.metrics.total_results

    def test_dynamic_clusters_by_taste(self, results):
        static, dynamic = results
        assert dynamic.taste_clustering > 2 * static.taste_clustering

    def test_degree_maintained(self, results):
        static, dynamic = results
        assert static.mean_degree > 3.5
        assert dynamic.mean_degree > 3.5

    def test_workloads_paired(self, results):
        static, dynamic = results
        assert static.metrics.total_queries == dynamic.metrics.total_queries
