"""Tests for the asymmetric-relations counterfactual (Section 4.1's claim)."""


import numpy as np
import pytest

from repro.gnutella import GnutellaConfig
from repro.gnutella.asymmetric import (
    AsymmetricFastEngine,
    AsymmetricProtocol,
    service_gini,
)
from repro.gnutella.bootstrap import BootstrapServer
from repro.gnutella.metrics import SimulationMetrics
from repro.gnutella.node import PeerState
from repro.types import HOUR


def small_config(**overrides):
    defaults = dict(
        n_users=80,
        n_items=4000,
        n_categories=10,
        mean_library=40.0,
        std_library=8.0,
        horizon=5 * HOUR,
        warmup_hours=1,
        queries_per_hour=6.0,
        max_hops=2,
        seed=9,
    )
    defaults.update(overrides)
    return GnutellaConfig(**defaults)


class TestServiceGini:
    def test_equal_loads_zero(self):
        assert service_gini(np.array([5, 5, 5, 5])) == pytest.approx(0.0)

    def test_single_server_near_one(self):
        g = service_gini(np.array([100] + [0] * 99))
        assert g > 0.95

    def test_empty_and_degenerate(self):
        assert service_gini(np.array([0, 0, 0])) == 0.0
        assert service_gini(np.array([7])) == 0.0

    def test_monotone_in_skew(self):
        mild = service_gini(np.array([10, 8, 6, 4]))
        harsh = service_gini(np.array([25, 1, 1, 1]))
        assert harsh > mild


def make_world(n=10, slots=3):
    import math as _math

    from repro.core.neighbors import NeighborState

    peers = []
    for i in range(n):
        p = PeerState(i, slots)
        p.neighbors = NeighborState(i, slots, _math.inf)
        p.online = True
        peers.append(p)
    bootstrap = BootstrapServer()
    for p in peers:
        bootstrap.join(p.node)
    metrics = SimulationMetrics(horizon=3600.0)
    return peers, bootstrap, metrics, AsymmetricProtocol(peers, bootstrap, metrics, slots)


class TestAsymmetricProtocol:
    def test_directed_link(self):
        peers, _, _, protocol = make_world()
        protocol.link(0, 1)
        assert 1 in peers[0].neighbors.outgoing
        assert 0 in peers[1].neighbors.incoming
        assert 0 not in peers[1].neighbors.outgoing  # NOT mutual

    def test_unbounded_incoming(self):
        peers, _, _, protocol = make_world()
        for consumer in range(1, 10):
            protocol.link(consumer, 0)
        assert len(peers[0].neighbors.incoming) == 9

    def test_reconfigure_unilateral(self):
        peers, _, metrics, protocol = make_world()
        peers[0].stats.add_benefit(7, 10.0)
        protocol.reconfigure(0)
        assert 7 in peers[0].neighbors.outgoing
        assert 0 not in peers[7].neighbors.outgoing  # target unaffected
        assert metrics.invitations == 0  # no handshake ever

    def test_fill_random_ignores_target_capacity(self):
        peers, _, _, protocol = make_world(n=5, slots=3)
        # Everyone points at node 0 first; it can still gain consumers.
        for consumer in (1, 2, 3, 4):
            protocol.link(consumer, 0)
        formed = protocol.fill_random(0, np.random.default_rng(0))
        assert formed == 3  # all its own slots fill despite being "popular"

    def test_sever_all_returns_consumers(self):
        peers, _, _, protocol = make_world()
        protocol.link(0, 5)   # 0 consumes from 5
        protocol.link(3, 0)   # 3 consumes from 0
        consumers = protocol.sever_all(0)
        assert consumers == [3]
        assert len(peers[0].neighbors.outgoing) == 0
        assert len(peers[0].neighbors.incoming) == 0
        assert 0 not in peers[3].neighbors.outgoing
        assert 0 not in peers[5].neighbors.incoming


class TestAsymmetricEngine:
    def test_runs_clean_with_invariants(self):
        engine = AsymmetricFastEngine(small_config())
        metrics = engine.run()
        assert metrics.total_queries > 0
        for peer in engine.peers:
            out = peer.neighbors.outgoing.as_tuple()
            assert len(out) <= engine.config.neighbor_slots
            if not peer.online:
                assert out == ()
                assert len(peer.neighbors.incoming) == 0
            # Directed consistency: out-edge implies incoming entry there.
            for other in out:
                assert peer.node in engine.peers[other].neighbors.incoming

    def test_deterministic(self):
        a = AsymmetricFastEngine(small_config()).run()
        b = AsymmetricFastEngine(small_config()).run()
        assert a.total_hits == b.total_hits
        assert (a.messages.counts == b.messages.counts).all()

    def test_papers_imbalance_claim(self):
        """Section 4.1: asymmetric relations let popular nodes be consumed
        without reciprocity. Quantified: the asymmetric scheme's service
        load is far more skewed than the symmetric scheme's, and its most
        popular supplier carries far more consumers than any symmetric node
        could (slots cap incoming at 4 there)."""
        from repro.gnutella import FastGnutellaEngine

        cfg = small_config(n_users=150, n_items=7500, horizon=10 * HOUR)
        asym = AsymmetricFastEngine(cfg.as_dynamic())
        asym.run()
        # Symmetric reference: track served results the same way.
        sym = FastGnutellaEngine(cfg.as_dynamic())
        served = np.zeros(150, dtype=np.int64)
        original = sym._record_benefit

        def tracking(peer, outcome):
            for result in outcome.results:
                served[result.responder] += 1
            original(peer, outcome)

        sym._record_benefit = tracking
        sym.run()

        assert asym.service_gini() > service_gini(served) + 0.1
        assert asym.incoming_degree_max() > cfg.neighbor_slots * 2
