"""Tests for the fast engine: lifecycle, invariants, determinism."""

import pytest

from repro.errors import ConfigurationError
from repro.gnutella import FastGnutellaEngine, GnutellaConfig
from repro.types import HOUR


def small_config(**overrides):
    defaults = dict(
        n_users=60,
        n_items=3000,
        n_categories=10,
        mean_library=30.0,
        std_library=5.0,
        horizon=4 * HOUR,
        warmup_hours=0,
        queries_per_hour=6.0,
        max_hops=2,
        seed=7,
    )
    defaults.update(overrides)
    return GnutellaConfig(**defaults)


def assert_invariants(engine):
    """Structural invariants that must hold at any instant."""
    for peer in engine.peers:
        out = peer.neighbors.outgoing.as_tuple()
        # Symmetric consistency: every link is mutual.
        for other in out:
            assert peer.node in engine.peers[other].neighbors.outgoing.as_tuple()
        # Offline peers hold no links; online peers never exceed capacity.
        if not peer.online:
            assert out == ()
        assert len(out) <= engine.config.neighbor_slots
        # No self-loops or duplicates.
        assert peer.node not in out
        assert len(set(out)) == len(out)


class TestLifecycle:
    def test_run_returns_metrics(self):
        engine = FastGnutellaEngine(small_config())
        metrics = engine.run()
        assert metrics.total_queries > 0
        assert metrics.logins > 0

    def test_single_use(self):
        engine = FastGnutellaEngine(small_config())
        engine.run()
        with pytest.raises(ConfigurationError):
            engine.run()

    def test_invariants_after_run(self):
        for dynamic in (False, True):
            engine = FastGnutellaEngine(small_config(dynamic=dynamic))
            engine.run()
            assert_invariants(engine)

    def test_online_population_near_half(self):
        engine = FastGnutellaEngine(small_config(n_users=300))
        engine.run()
        assert 0.3 * 300 < engine.online_count() < 0.7 * 300

    def test_static_never_reconfigures(self):
        engine = FastGnutellaEngine(small_config(dynamic=False))
        metrics = engine.run()
        assert metrics.reconfigurations == 0
        assert metrics.invitations == 0

    def test_dynamic_reconfigures(self):
        engine = FastGnutellaEngine(small_config(dynamic=True))
        metrics = engine.run()
        assert metrics.reconfigurations > 0

    def test_queries_stop_at_horizon(self):
        engine = FastGnutellaEngine(small_config())
        metrics = engine.run()
        assert engine.sim.now == engine.config.horizon
        nonzero_hours = metrics.queries.counts
        assert len(nonzero_hours) == 4


class TestInvariantsMidRun:
    def test_invariants_hold_throughout(self):
        """Pause the kernel every simulated 30 min and check the topology."""
        engine = FastGnutellaEngine(small_config(dynamic=True))
        for user, schedule in enumerate(engine.schedules):
            if schedule.initially_online:
                engine.sim.schedule(0.0, engine._login, user)
            for t in schedule.transitions:
                engine.sim.schedule_at(t, engine._toggle, user)
        engine._ran = True
        for checkpoint in range(1, 9):
            engine.sim.run(until=checkpoint * 1800.0)
            assert_invariants(engine)


class TestDeterminism:
    def test_same_seed_identical_metrics(self):
        a = FastGnutellaEngine(small_config()).run()
        b = FastGnutellaEngine(small_config()).run()
        assert a.total_queries == b.total_queries
        assert a.total_hits == b.total_hits
        assert (a.hits.counts == b.hits.counts).all()
        assert (a.messages.counts == b.messages.counts).all()
        assert a.first_result_delay.mean == b.first_result_delay.mean

    def test_different_seed_differs(self):
        a = FastGnutellaEngine(small_config(seed=1)).run()
        b = FastGnutellaEngine(small_config(seed=2)).run()
        assert a.total_queries != b.total_queries or a.total_hits != b.total_hits

    def test_paired_workload_across_schemes(self):
        """Static and dynamic must face the identical query/churn sequence."""
        cfg = small_config()
        a = FastGnutellaEngine(cfg.as_static()).run()
        b = FastGnutellaEngine(cfg.as_dynamic()).run()
        assert a.logins == b.logins
        assert a.logoffs == b.logoffs
        assert (a.queries.counts == b.queries.counts).all()


class TestDownloads:
    def test_libraries_grow_with_downloads(self):
        engine = FastGnutellaEngine(small_config(downloads_grow_libraries=True))
        before = sum(len(s) for s in engine.live_libraries)
        metrics = engine.run()
        after = sum(len(s) for s in engine.live_libraries)
        assert after - before == metrics.total_hits

    def test_libraries_static_without_downloads(self):
        engine = FastGnutellaEngine(small_config(downloads_grow_libraries=False))
        before = sum(len(s) for s in engine.live_libraries)
        engine.run()
        assert sum(len(s) for s in engine.live_libraries) == before


class TestStatsPolicies:
    def test_persist_stats_survive_sessions(self):
        engine = FastGnutellaEngine(small_config(persist_stats=True))
        engine.run()
        # Someone with completed sessions should still hold statistics.
        assert any(len(p.stats) > 0 for p in engine.peers if p.sessions >= 2)

    def test_no_persist_clears_on_logoff(self):
        # decay=1.0 so the only clearing comes from log-off.
        engine = FastGnutellaEngine(
            small_config(persist_stats=False, stats_decay_on_update=1.0)
        )
        engine.run()
        for peer in engine.peers:
            if not peer.online:
                assert len(peer.stats) == 0


class TestConfigValidation:
    def test_too_few_categories_rejected(self):
        with pytest.raises(ConfigurationError):
            FastGnutellaEngine(small_config(n_categories=3, n_secondary=5, n_items=3000))


class TestTasteClustering:
    def test_dynamic_clusters_more_than_static(self):
        cfg = small_config(n_users=200, n_items=10000, horizon=12 * HOUR)
        static = FastGnutellaEngine(cfg.as_static())
        static.run()
        dynamic = FastGnutellaEngine(cfg.as_dynamic())
        dynamic.run()
        assert dynamic.taste_clustering() > static.taste_clustering()
