"""End-to-end coverage of the REPRO_TRACE / REPRO_SANITIZE environment
hooks through :func:`run_simulation`: each alone, both together, and the
precedence of explicit arguments over the environment."""

import pytest

import repro.lint.sanitize as sanitize_mod
from repro.gnutella.config import GnutellaConfig
from repro.gnutella.simulation import run_simulation
from repro.obs.trace import Tracer, read_jsonl

HOUR = 3600.0


def _config(**overrides):
    base = dict(
        n_users=30, n_items=1500, horizon=2 * HOUR, warmup_hours=0, dynamic=True
    )
    base.update(overrides)
    return GnutellaConfig(**base)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)


def _spy_installer(monkeypatch):
    """Record install_consistency_checks calls without losing its effect."""
    calls = []
    original = sanitize_mod.install_consistency_checks

    def spy(engine, *args, **kwargs):
        calls.append(engine)
        return original(engine, *args, **kwargs)

    monkeypatch.setattr(sanitize_mod, "install_consistency_checks", spy)
    return calls


def test_repro_trace_env_writes_jsonl(tmp_path, monkeypatch):
    trace_path = tmp_path / "env-trace.jsonl"
    monkeypatch.setenv("REPRO_TRACE", str(trace_path))
    result = run_simulation(_config())
    assert result.metrics.total_queries > 0
    events = read_jsonl(trace_path)
    assert len(events) > 0
    assert {ev["cat"] for ev in events} >= {"query"}


def test_repro_trace_env_off_values_disable(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("REPRO_TRACE", "off")
    run_simulation(_config())
    assert list(tmp_path.iterdir()) == []


def test_repro_sanitize_env_installs_checks(monkeypatch):
    calls = _spy_installer(monkeypatch)
    run_simulation(_config())
    assert calls == []  # default: hook disabled
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    run_simulation(_config())
    assert len(calls) == 1


def test_both_env_hooks_compose(tmp_path, monkeypatch):
    trace_path = tmp_path / "both.jsonl"
    monkeypatch.setenv("REPRO_TRACE", str(trace_path))
    monkeypatch.setenv("REPRO_SANITIZE", "true")
    calls = _spy_installer(monkeypatch)
    result = run_simulation(_config())
    assert len(calls) == 1  # sanitizer installed ...
    assert len(read_jsonl(trace_path)) > 0  # ... and the trace written
    assert result.convergence is not None


def test_explicit_trace_argument_beats_env(tmp_path, monkeypatch):
    """A caller-supplied tracer wins: the env path must NOT be written."""
    env_path = tmp_path / "should-not-exist.jsonl"
    monkeypatch.setenv("REPRO_TRACE", str(env_path))
    tracer = Tracer()
    run_simulation(_config(), trace=tracer)
    assert len(tracer.events) > 0
    assert not env_path.exists()


def test_explicit_sanitize_argument_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    calls = _spy_installer(monkeypatch)
    run_simulation(_config(), sanitize=False)
    assert calls == []


def test_env_hooks_preserve_results(monkeypatch, tmp_path):
    """Observation hooks must not move the simulation itself."""
    config = _config()
    plain = run_simulation(config)
    monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "t.jsonl"))
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    hooked = run_simulation(config)
    assert hooked.metrics.total_queries == plain.metrics.total_queries
    assert hooked.metrics.total_hits == plain.metrics.total_hits
    assert hooked.convergence == plain.convergence
