"""Tests for metric accumulation."""

import math

import numpy as np
import pytest

from repro.gnutella.metrics import SimulationMetrics
from repro.types import HOUR


@pytest.fixture
def metrics():
    return SimulationMetrics(horizon=4 * HOUR)


class TestRecordQuery:
    def test_hit_accounting(self, metrics):
        metrics.record_query(10.0, hit=True, messages=12, n_results=3, first_delay=0.4)
        assert metrics.total_queries == 1
        assert metrics.total_hits == 1
        assert metrics.total_results == 3
        assert metrics.hit_rate() == 1.0
        assert metrics.first_result_delay.count == 1
        assert metrics.mean_first_result_delay_ms() == pytest.approx(400.0)

    def test_miss_accounting(self, metrics):
        metrics.record_query(10.0, hit=False, messages=5, n_results=0, first_delay=None)
        assert metrics.total_hits == 0
        assert metrics.total_results == 0
        assert metrics.hit_rate() == 0.0
        assert math.isnan(metrics.first_result_delay.mean)

    def test_bucketing_by_hour(self, metrics):
        metrics.record_query(0.5 * HOUR, True, 10, 1, 0.1)
        metrics.record_query(1.5 * HOUR, True, 20, 1, 0.1)
        metrics.record_query(1.7 * HOUR, False, 30, 0, None)
        idx, hits = metrics.hits_series()
        np.testing.assert_array_equal(hits, [1, 1, 0, 0])
        _, msgs = metrics.messages_series()
        np.testing.assert_array_equal(msgs, [10, 50, 0, 0])

    def test_warmup_skipped(self, metrics):
        metrics.record_query(0.5 * HOUR, True, 10, 1, 0.1)
        metrics.record_query(2.5 * HOUR, True, 10, 1, 0.1)
        assert metrics.hits_total(warmup_hours=1) == 1
        assert metrics.messages_total(warmup_hours=1) == 10
        idx, hits = metrics.hits_series(warmup_hours=2)
        np.testing.assert_array_equal(idx, [2, 3])

    def test_empty_hit_rate(self, metrics):
        assert metrics.hit_rate() == 0.0

    def test_summary_keys(self, metrics):
        metrics.record_query(10.0, True, 2, 1, 0.2)
        s = metrics.summary()
        assert s["total_queries"] == 1.0
        assert s["hit_rate"] == 1.0
        assert "mean_first_delay_ms" in s
        assert "reconfigurations" in s
