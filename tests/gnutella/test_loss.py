"""Failure injection: the detailed engine under message loss."""

import pytest

from repro.errors import ConfigurationError
from repro.gnutella import DetailedGnutellaEngine, GnutellaConfig
from repro.types import HOUR


def lossy_config(loss, **overrides):
    defaults = dict(
        n_users=60,
        n_items=3000,
        n_categories=10,
        mean_library=30.0,
        std_library=5.0,
        horizon=4 * HOUR,
        warmup_hours=0,
        queries_per_hour=6.0,
        max_hops=2,
        seed=17,
        message_loss_rate=loss,
    )
    defaults.update(overrides)
    return GnutellaConfig(**defaults)


class TestMessageLoss:
    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            lossy_config(1.0)
        with pytest.raises(ConfigurationError):
            lossy_config(-0.1)

    def test_loss_counted_by_transport(self):
        engine = DetailedGnutellaEngine(lossy_config(0.2))
        engine.run()
        assert engine.transport.lost > 0
        assert engine.transport.lost < engine.transport.sent

    def test_hits_degrade_with_loss(self):
        clean = DetailedGnutellaEngine(lossy_config(0.0)).run()
        lossy = DetailedGnutellaEngine(lossy_config(0.3)).run()
        assert lossy.total_hits < clean.total_hits

    def test_heavier_loss_degrades_more(self):
        mild = DetailedGnutellaEngine(lossy_config(0.1)).run()
        heavy = DetailedGnutellaEngine(lossy_config(0.5)).run()
        assert heavy.total_hits < mild.total_hits

    def test_simulation_survives_extreme_loss(self):
        metrics = DetailedGnutellaEngine(lossy_config(0.9)).run()
        assert metrics.total_queries > 0  # engine keeps running

    def test_dynamic_still_beats_static_under_moderate_loss(self):
        cfg = lossy_config(0.15, n_users=100, n_items=5000, horizon=6 * HOUR)
        static = DetailedGnutellaEngine(cfg.as_static()).run()
        dynamic = DetailedGnutellaEngine(cfg.as_dynamic()).run()
        assert dynamic.total_hits > static.total_hits

    def test_same_seed_loss_run_is_deterministic(self):
        """Two same-config lossy runs in one process produce identical
        kernel event streams (digest equality), not just equal metrics —
        the property the parallel orchestrator relies on."""
        from repro.lint.sanitize import run_hashed

        config = lossy_config(0.25)
        digests = {run_hashed(config, "detailed", sanitize=False)[1] for _ in range(2)}
        assert len(digests) == 1

    def test_fast_engine_ignores_loss_rate(self):
        """The fast engine's atomic queries model loss-free links; the knob
        is detailed-engine-only by design (documented)."""
        from repro.gnutella import FastGnutellaEngine

        clean = FastGnutellaEngine(lossy_config(0.0)).run()
        configured = FastGnutellaEngine(lossy_config(0.4)).run()
        assert clean.total_hits == configured.total_hits
