"""Property tests: the protocol must preserve topology invariants under any
interleaving of churn, random fills, and reconfigurations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnutella.bootstrap import BootstrapServer
from repro.gnutella.metrics import SimulationMetrics
from repro.gnutella.node import PeerState
from repro.gnutella.protocol import GnutellaProtocol

N_PEERS = 12
SLOTS = 3


def check_invariants(peers):
    for peer in peers:
        out = peer.neighbors.outgoing.as_tuple()
        assert len(out) <= SLOTS
        assert peer.node not in out
        assert len(set(out)) == len(out)
        assert set(out) == set(peer.neighbors.incoming.as_tuple())
        for other in out:
            assert peer.node in peers[other].neighbors.outgoing.as_tuple()
        if not peer.online:
            assert out == ()


@given(
    st.integers(0, 2**31 - 1),
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, N_PEERS - 1)),
        min_size=5,
        max_size=80,
    ),
)
@settings(max_examples=30, deadline=None)
def test_random_operation_interleavings(seed, ops):
    """Operations: 0=toggle churn, 1=fill_random, 2=reconfigure, 3=credit a
    random peer with benefit (feeding future reconfigurations)."""
    rng = np.random.default_rng(seed)
    peers = [PeerState(i, SLOTS) for i in range(N_PEERS)]
    bootstrap = BootstrapServer()
    metrics = SimulationMetrics(horizon=3600.0)
    protocol = GnutellaProtocol(peers, bootstrap, metrics, SLOTS)

    for op, node in ops:
        peer = peers[node]
        if op == 0:
            if peer.online:
                peer.online = False
                bootstrap.leave(node)
                protocol.sever_all(node)
            else:
                peer.online = True
                bootstrap.join(node)
        elif op == 1 and peer.online:
            protocol.fill_random(node, rng)
        elif op == 2 and peer.online:
            protocol.reconfigure(node, max_swaps=1, stats_decay=0.5)
        elif op == 3 and peer.online:
            other = int(rng.integers(N_PEERS))
            if other != node:
                peer.stats.add_benefit(other, float(rng.random()) + 0.01)
        check_invariants(peers)
