"""Tests for the bootstrap (host cache) server."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnutella.bootstrap import BootstrapServer


class TestMembership:
    def test_join_leave(self):
        server = BootstrapServer()
        server.join(3)
        assert 3 in server
        assert len(server) == 1
        server.leave(3)
        assert 3 not in server
        assert len(server) == 0

    def test_idempotent(self):
        server = BootstrapServer()
        server.join(1)
        server.join(1)
        assert len(server) == 1
        server.leave(1)
        server.leave(1)
        assert len(server) == 0

    def test_swap_remove_keeps_others(self):
        server = BootstrapServer()
        for n in range(5):
            server.join(n)
        server.leave(2)
        assert sorted(server.online_nodes()) == [0, 1, 3, 4]


class TestSampling:
    def test_sample_k(self):
        server = BootstrapServer()
        for n in range(50):
            server.join(n)
        rng = np.random.default_rng(0)
        picks = server.sample(rng, 4)
        assert len(picks) == 4
        assert len(set(picks)) == 4
        assert all(0 <= p < 50 for p in picks)

    def test_exclusion_respected(self):
        server = BootstrapServer()
        for n in range(10):
            server.join(n)
        rng = np.random.default_rng(1)
        for _ in range(20):
            picks = server.sample(rng, 5, exclude=[0, 1, 2])
            assert not {0, 1, 2} & set(picks)

    def test_small_pool_returns_fewer(self):
        server = BootstrapServer()
        server.join(1)
        server.join(2)
        picks = server.sample(np.random.default_rng(0), 10, exclude=[1])
        assert picks == [2]

    def test_empty_pool(self):
        assert BootstrapServer().sample(np.random.default_rng(0), 3) == []

    def test_zero_k(self):
        server = BootstrapServer()
        server.join(1)
        assert server.sample(np.random.default_rng(0), 0) == []

    def test_fully_excluded_pool(self):
        server = BootstrapServer()
        server.join(1)
        assert server.sample(np.random.default_rng(0), 2, exclude=[1]) == []

    def test_uniformity(self):
        server = BootstrapServer()
        for n in range(10):
            server.join(n)
        rng = np.random.default_rng(2)
        counts = np.zeros(10)
        for _ in range(4000):
            for p in server.sample(rng, 1):
                counts[p] += 1
        # Each node expected 400; allow generous tolerance.
        assert counts.min() > 300
        assert counts.max() < 500

    @given(
        st.lists(st.tuples(st.booleans(), st.integers(0, 19)), max_size=60),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_sample_only_online(self, ops, seed):
        server = BootstrapServer()
        online = set()
        for is_join, node in ops:
            if is_join:
                server.join(node)
                online.add(node)
            else:
                server.leave(node)
                online.discard(node)
        assert len(server) == len(online)
        picks = server.sample(np.random.default_rng(seed), 5)
        assert set(picks) <= online
        assert len(picks) == min(5, len(online))
