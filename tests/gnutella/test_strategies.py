"""Tests for the pluggable search strategies, benefits and exploration."""

import pytest

from repro.errors import ConfigurationError
from repro.gnutella import DetailedGnutellaEngine, FastGnutellaEngine, GnutellaConfig
from repro.types import HOUR


def small_config(**overrides):
    defaults = dict(
        n_users=80,
        n_items=4000,
        n_categories=10,
        mean_library=30.0,
        std_library=5.0,
        horizon=4 * HOUR,
        warmup_hours=0,
        queries_per_hour=6.0,
        max_hops=3,
        seed=13,
    )
    defaults.update(overrides)
    return GnutellaConfig(**defaults)


class TestStrategySpecParsing:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("flood", ("flood", None)),
            ("iterative-deepening", ("iterative-deepening", None)),
            ("random:2", ("random", 2)),
            ("directed-bft:3", ("directed-bft", 3)),
        ],
    )
    def test_valid_specs(self, spec, expected):
        assert small_config(search_strategy=spec).parse_search_strategy() == expected

    @pytest.mark.parametrize(
        "spec", ["warp", "random:", "random:x", "random:0", "directed-bft:-1"]
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            small_config(search_strategy=spec)

    def test_invalid_benefit_rejected(self):
        with pytest.raises(ConfigurationError):
            small_config(benefit="karma")

    def test_invalid_exploration_rejected(self):
        with pytest.raises(ConfigurationError):
            small_config(exploration_interval=0.0)
        with pytest.raises(ConfigurationError):
            small_config(exploration_ttl=0)
        with pytest.raises(ConfigurationError):
            small_config(exploration_probe_items=0)


class TestStrategyBehaviour:
    def run_with(self, **overrides):
        return FastGnutellaEngine(small_config(**overrides)).run()

    def test_all_strategies_run(self):
        for spec in ("flood", "iterative-deepening", "random:2", "directed-bft:2"):
            metrics = self.run_with(search_strategy=spec)
            assert metrics.total_queries > 0, spec

    def test_random_k_cuts_messages_vs_flood(self):
        flood = self.run_with(search_strategy="flood")
        randomk = self.run_with(search_strategy="random:1")
        assert randomk.messages_total() < flood.messages_total()
        assert randomk.total_hits <= flood.total_hits

    def test_selective_strategies_beat_flood_per_message(self):
        """Bounded-fan-out strategies trade recall for much better
        hits-per-message efficiency. In the *churning adaptive* network,
        directed BFT ends up comparable to random-K (reconfiguration has
        already moved the historically beneficial peers adjacent, which is
        exactly the signal directed BFT would otherwise exploit); the static
        topology in examples/strategy_comparison.py shows its real edge."""
        flood = self.run_with(search_strategy="flood")
        randomk = self.run_with(search_strategy="random:2")
        directed = self.run_with(search_strategy="directed-bft:2")

        def efficiency(metrics):
            return metrics.total_hits / max(metrics.messages_total(), 1)

        assert efficiency(randomk) > 1.5 * efficiency(flood)
        assert efficiency(directed) > 1.5 * efficiency(flood)
        assert efficiency(directed) > 0.5 * efficiency(randomk)

    def test_iterative_deepening_hits_match_flood(self):
        """Iterative deepening reaches the same max depth eventually, so hit
        counts track flooding closely; with a low shallow-hit rate its misses
        re-flood at every depth, so messages can exceed plain flooding — the
        technique pays off only when most queries resolve shallow."""
        flood = self.run_with(search_strategy="flood")
        deepening = self.run_with(search_strategy="iterative-deepening")
        assert deepening.total_hits >= 0.9 * flood.total_hits
        assert deepening.messages_total() < 1.5 * flood.messages_total()

    def test_detailed_engine_rejects_non_flood(self):
        with pytest.raises(ConfigurationError):
            DetailedGnutellaEngine(small_config(search_strategy="random:2"))


class TestBenefitChoices:
    def test_all_benefits_run_and_adapt(self):
        for benefit in ("bandwidth-share", "hit-count", "latency"):
            metrics = FastGnutellaEngine(small_config(benefit=benefit)).run()
            assert metrics.reconfigurations > 0, benefit

    def test_benefit_choice_changes_neighborhoods(self):
        a = FastGnutellaEngine(small_config(benefit="bandwidth-share"))
        a.run()
        b = FastGnutellaEngine(small_config(benefit="hit-count"))
        b.run()
        assert a.neighbor_snapshot() != b.neighbor_snapshot()


class TestExplorationExtension:
    def test_disabled_by_default(self):
        metrics = FastGnutellaEngine(small_config()).run()
        assert metrics.exploration_messages == 0

    def test_probes_generate_messages_and_stats(self):
        engine = FastGnutellaEngine(
            small_config(exploration_interval=600.0, exploration_ttl=2)
        )
        metrics = engine.run()
        assert metrics.exploration_messages > 0
        assert any(len(p.stats) > 0 for p in engine.peers)

    def test_static_scheme_never_explores(self):
        metrics = FastGnutellaEngine(
            small_config(dynamic=False, exploration_interval=600.0)
        ).run()
        assert metrics.exploration_messages == 0

    def test_exploration_does_not_inflate_query_buckets(self):
        base = FastGnutellaEngine(small_config()).run()
        explored = FastGnutellaEngine(
            small_config(exploration_interval=600.0)
        ).run()
        # Exploration messages are accounted separately from Fig 1(b)'s
        # query-message series; query counts stay paired.
        assert explored.total_queries == base.total_queries

    def test_exploration_helps_adaptation(self):
        base = FastGnutellaEngine(small_config(max_hops=2)).run()
        explored = FastGnutellaEngine(
            small_config(max_hops=2, exploration_interval=900.0,
                         exploration_ttl=3)
        ).run()
        # Deeper knowledge of the neighborhood should never hurt hits much;
        # usually it helps (allow slack for noise at this tiny scale).
        assert explored.total_hits >= 0.95 * base.total_hits
