"""Robustness: the engine must handle non-default world shapes cleanly."""

import pytest

from repro.gnutella import FastGnutellaEngine, GnutellaConfig
from repro.types import HOUR


def build(**overrides):
    base = dict(
        n_users=60,
        n_items=3000,
        n_categories=10,
        mean_library=25.0,
        std_library=5.0,
        horizon=3 * HOUR,
        warmup_hours=0,
        queries_per_hour=6.0,
        seed=3,
    )
    base.update(overrides)
    return GnutellaConfig(**base)


@pytest.mark.parametrize(
    "name,overrides",
    [
        ("six_slots", {"neighbor_slots": 6}),
        ("one_slot", {"neighbor_slots": 1}),
        ("no_secondary", {"n_secondary": 0}),
        ("asymmetric_churn", {"mean_online": HOUR, "mean_offline": 5 * HOUR}),
        ("two_users", {"n_users": 2}),
        ("high_rate", {"queries_per_hour": 40.0}),
        ("deep_flood", {"max_hops": 6}),
        ("full_list_swap", {"max_swaps_per_update": None}),
        ("no_logoff_updates", {"update_on_logoff": False}),
    ],
)
def test_unusual_worlds_run_clean(name, overrides):
    engine = FastGnutellaEngine(build(**overrides))
    metrics = engine.run()
    assert metrics.total_queries >= 0
    slots = engine.config.neighbor_slots
    for peer in engine.peers:
        out = peer.neighbors.outgoing.as_tuple()
        assert len(out) <= slots
        for other in out:
            assert peer.node in engine.peers[other].neighbors.outgoing.as_tuple()
        if not peer.online:
            assert out == ()


def test_single_slot_still_adapts():
    """Even with one neighbor slot the dynamic scheme must function (every
    reconfiguration is a full neighborhood replacement)."""
    metrics = FastGnutellaEngine(build(neighbor_slots=1, horizon=6 * HOUR)).run()
    assert metrics.reconfigurations > 0


def test_asymmetric_churn_population():
    """mean_online=1h / mean_offline=5h => ~1/6 of users online."""
    engine = FastGnutellaEngine(
        build(n_users=300, mean_online=HOUR, mean_offline=5 * HOUR,
              horizon=12 * HOUR)
    )
    engine.run()
    online = engine.online_count()
    assert 0.05 * 300 < online < 0.35 * 300
