"""Tracing must be pure observation: traced and untraced event-stream
digests are bit-identical, and the recorded trace is a valid Chrome
document with per-hop query structure — the PR's two acceptance gates."""

import pytest

from repro.errors import ConfigurationError
from repro.gnutella.config import GnutellaConfig
from repro.gnutella.simulation import build_engine, simulate_task
from repro.obs.chrome import to_chrome, validate_chrome
from repro.obs.record import record_run
from repro.obs.trace import Tracer


def _config(**overrides) -> GnutellaConfig:
    base = dict(
        n_users=40,
        n_items=2000,
        horizon=4 * 3600.0,
        warmup_hours=0,
        dynamic=True,
    )
    base.update(overrides)
    return GnutellaConfig(**base)


@pytest.mark.parametrize("engine", ["fast", "fast-reference", "detailed"])
def test_traced_run_digest_matches_untraced(engine):
    config = _config(n_users=25, n_items=1000, horizon=2 * 3600.0)
    _, untraced = simulate_task(config, engine, hash_events=True)
    recorded = record_run(config, engine)
    assert recorded.event_digest == untraced
    assert len(recorded.tracer.events) > 0


def test_trace_has_query_span_with_hop_children():
    recorded = record_run(_config(), "fast")
    spans = [
        ev
        for ev in recorded.tracer.events
        if ev.ph == "X" and ev.name == "query" and ev.args.get("hit")
    ]
    assert spans, "expected at least one hit query span"
    hops = [ev for ev in recorded.tracer.events if ev.name.startswith("hop")]
    assert hops, "expected per-hop child events"
    span = spans[0]
    children = [
        h
        for h in hops
        if h.tid == span.tid and span.ts <= h.ts <= span.ts + span.dur
    ]
    assert children, "query span should contain per-hop children"


def test_trace_exports_as_valid_chrome_document():
    recorded = record_run(_config(horizon=2 * 3600.0), "fast")
    assert validate_chrome(to_chrome(recorded.tracer.events)) == []


def test_detailed_engine_traces_real_hop_times():
    config = _config(n_users=25, n_items=1000, horizon=2 * 3600.0)
    recorded = record_run(config, "detailed")
    spans = [ev for ev in recorded.tracer.events if ev.ph == "X"]
    hops = [ev for ev in recorded.tracer.events if ev.name.startswith("hop")]
    assert spans and hops
    # hop instants carry the real message arrival time (inside some span's
    # window) and the measured hop count.
    assert all(ev.args["hop"] >= 1 for ev in hops)


def test_attach_tracer_after_run_is_rejected():
    config = _config(n_users=20, n_items=500, horizon=3600.0)
    eng = build_engine(config, "fast")
    eng.run()
    with pytest.raises(ConfigurationError):
        eng.attach_tracer(Tracer())


def test_record_run_profiles_phases_and_binds_metrics():
    recorded = record_run(_config(horizon=2 * 3600.0), "fast")
    phases = recorded.timers.as_dict()
    for phase in ("engine.setup", "engine.run", "engine.teardown", "kernel.run"):
        assert phase in phases
    snapshot = recorded.registry.snapshot()
    assert snapshot["sim.total_queries"]["value"] == (
        recorded.result.metrics.total_queries
    )
    summary = recorded.summary()
    assert summary["trace"]["events"] == len(recorded.tracer.events)
    assert summary["event_digest"] == recorded.event_digest


def test_trace_env_variable_writes_jsonl(tmp_path, monkeypatch):
    from repro.gnutella.simulation import run_simulation
    from repro.obs.trace import TRACE_ENV, read_jsonl

    out = tmp_path / "env-trace.jsonl"
    monkeypatch.setenv(TRACE_ENV, str(out))
    run_simulation(_config(n_users=20, n_items=500, horizon=3600.0), "fast")
    events = read_jsonl(out)
    assert events and any(ev["name"] == "query" for ev in events)


@pytest.mark.parametrize("engine", ["fast", "fast-reference", "detailed"])
def test_snapshotted_run_digest_matches_plain(engine):
    """The topology snapshotter is pure observation: a snapshotted run's
    event-stream digest is bit-identical to a plain run's, on every
    engine."""
    config = _config(n_users=25, n_items=1000, horizon=2 * 3600.0)
    _, plain = simulate_task(config, engine, hash_events=True)
    recorded = record_run(config, engine, topology_interval=3600.0)
    assert recorded.event_digest == plain
    assert recorded.topology is not None
    assert len(recorded.topology.snapshots) >= 1
    # And the snapshots actually saw the overlay, not an empty world.
    assert all(s.n_online > 0 for s in recorded.topology.snapshots)
