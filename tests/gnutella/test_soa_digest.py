"""Engine-level equivalence of the struct-of-arrays core, bit for bit.

The SoA refactor (``repro.core.soa``) is a pure *layout* change: the same
lifecycle methods run over slab-backed views instead of per-peer objects, so
a ``soa=True`` engine must emit exactly the same SHA-256-hashed event stream
as the object-per-peer engine (``fast-aos``) — at the small digest-matrix
scale and at the paper's 2,000-peer scale, across the figure variants.

The same property gates the two other hot-path rewrites this refactor
carries:

* incremental ``plan_reconfiguration`` vs the retained full-scan oracle
  (swapped into the live protocol by monkeypatching), and
* lazy keyed per-pair delay draws vs the eager delay matrix (forced by
  lowering ``LAZY_DELAY_NODE_THRESHOLD`` below the population size). The
  keyed draws produce *different floats* than the matrix draw — digest
  equality holds because delay values never enter scheduled event
  arguments, which is precisely the documented digest-gated transition
  that lets 50k+ runs skip the O(n^2) matrix.
"""

import pytest

import repro.gnutella.asymmetric
import repro.gnutella.protocol
import repro.net.latency
from repro.core.update import plan_reconfiguration_full_scan
from repro.gnutella import FastGnutellaEngine, GnutellaConfig
from repro.lint.sanitize import run_hashed
from repro.types import HOUR


def small_config(**overrides):
    defaults = dict(
        n_users=60,
        n_items=3000,
        n_categories=10,
        mean_library=30.0,
        std_library=5.0,
        horizon=4 * HOUR,
        warmup_hours=0,
        queries_per_hour=6.0,
        max_hops=2,
        seed=7,
    )
    defaults.update(overrides)
    return GnutellaConfig(**defaults)


def paper_scale_config(**overrides):
    """The paper's 2,000-peer population, shortened to a test-sized horizon.

    Full Section 4.2 parameters except the horizon (30 simulated minutes
    instead of 4 days): the digest covers thousands of events across login,
    fill, query, and reconfiguration paths, which is what the layout gate
    needs — running to the real horizon adds hours of wall clock, not
    coverage.
    """
    defaults = dict(
        n_users=2000,
        n_items=200_000,
        mean_library=200.0,
        std_library=50.0,
        horizon=0.5 * HOUR,
        warmup_hours=0,
        queries_per_hour=8.0,
        max_hops=2,
        seed=7,
    )
    defaults.update(overrides)
    return GnutellaConfig(**defaults)


VARIANTS = [
    pytest.param({}, id="static-ttl2"),
    pytest.param({"dynamic": True}, id="dynamic-ttl2"),
    pytest.param({"max_hops": 4, "seed": 21}, id="static-ttl4"),
    pytest.param(
        {"dynamic": True, "downloads_grow_libraries": True, "seed": 3},
        id="dynamic-growing-libraries",
    ),
]


@pytest.mark.parametrize("overrides", VARIANTS)
def test_digest_identical_soa_vs_aos(overrides):
    config = small_config(**overrides)
    soa_result, soa_digest = run_hashed(config, "fast", sanitize=False)
    aos_result, aos_digest = run_hashed(config, "fast-aos", sanitize=False)
    assert soa_digest == aos_digest
    assert soa_result.metrics.total_queries == aos_result.metrics.total_queries
    assert soa_result.metrics.total_hits == aos_result.metrics.total_hits


@pytest.mark.parametrize(
    "overrides",
    [
        pytest.param({}, id="figure1-static-ttl2"),
        pytest.param({"dynamic": True}, id="figure2-dynamic-ttl2"),
        pytest.param(
            {"dynamic": True, "downloads_grow_libraries": True, "max_hops": 4},
            id="figure3-dynamic-ttl4-growing",
        ),
    ],
)
def test_paper_scale_digest_identical_soa_vs_aos(overrides):
    """2,000 peers (the paper's population): SoA == object layout, bit for bit."""
    config = paper_scale_config(**overrides)
    _, soa_digest = run_hashed(config, "fast", sanitize=False)
    _, aos_digest = run_hashed(config, "fast-aos", sanitize=False)
    assert soa_digest == aos_digest


def test_digest_identical_incremental_vs_full_scan_plan(monkeypatch):
    """The incremental reconfiguration planner is digest-equal to the oracle.

    Swaps :func:`~repro.core.update.plan_reconfiguration_full_scan` into the
    live protocol (both the symmetric and asymmetric modules import the
    planner by name) and replays a dynamic run: every invite/evict decision,
    and therefore the whole event stream, must come out identical.
    """
    config = small_config(dynamic=True, downloads_grow_libraries=True)
    _, incremental_digest = run_hashed(config, "fast", sanitize=False)
    monkeypatch.setattr(
        repro.gnutella.protocol, "plan_reconfiguration", plan_reconfiguration_full_scan
    )
    monkeypatch.setattr(
        repro.gnutella.asymmetric, "plan_reconfiguration", plan_reconfiguration_full_scan
    )
    _, full_scan_digest = run_hashed(config, "fast", sanitize=False)
    assert incremental_digest == full_scan_digest


def test_digest_identical_lazy_vs_eager_delays(monkeypatch):
    """Lazy keyed delay draws do not move the event-stream digest.

    The lazy regime's per-pair floats differ from the eager matrix draw, but
    no scheduled event argument carries a delay, so the digest is invariant —
    the documented transition that makes digest gating valid at scales where
    the O(n^2) matrix cannot be built.
    """
    config = small_config(dynamic=True)
    _, eager_digest = run_hashed(config, "fast", sanitize=False)
    monkeypatch.setattr(repro.net.latency, "LAZY_DELAY_NODE_THRESHOLD", 8)
    _, lazy_digest = run_hashed(config, "fast", sanitize=False)
    assert lazy_digest == eager_digest
    # And under lazy delays the two engine layouts still agree with each other.
    _, lazy_aos_digest = run_hashed(config, "fast-aos", sanitize=False)
    assert lazy_aos_digest == eager_digest


def test_soa_engine_exposes_arrays():
    soa = FastGnutellaEngine(small_config())
    assert soa.arrays is not None
    assert soa.peers.arrays is soa.arrays
    aos = FastGnutellaEngine(small_config(), soa=False)
    assert aos.arrays is None
    assert not hasattr(aos.peers, "arrays")
