"""Cross-engine agreement: the fast engine's atomic-query approximation must
match the message-level engine on aggregate metrics."""

import pytest

from repro.gnutella import GnutellaConfig, run_simulation
from repro.types import HOUR


@pytest.fixture(scope="module")
def config():
    return GnutellaConfig(
        n_users=80,
        n_items=4000,
        n_categories=20,
        mean_library=40.0,
        std_library=10.0,
        horizon=6 * HOUR,
        warmup_hours=1,
        queries_per_hour=8.0,
        max_hops=2,
        seed=3,
    )


class TestStaticAgreement:
    """With no reconfiguration, both engines see the same link evolution, so
    they should agree almost exactly (the only divergence is queries issued
    within a reply-timeout of the horizon)."""

    def test_hits_and_messages_close(self, config):
        fast = run_simulation(config.as_static(), engine="fast").metrics
        detailed = run_simulation(config.as_static(), engine="detailed").metrics
        assert fast.total_queries == pytest.approx(detailed.total_queries, abs=3)
        assert fast.messages_total() == pytest.approx(detailed.messages_total(), rel=0.01)
        assert fast.total_hits == pytest.approx(detailed.total_hits, rel=0.02, abs=3)

    def test_delays_close(self, config):
        fast = run_simulation(config.as_static(), engine="fast").metrics
        detailed = run_simulation(config.as_static(), engine="detailed").metrics
        assert fast.mean_first_result_delay_ms() == pytest.approx(
            detailed.mean_first_result_delay_ms(), rel=0.05
        )


class TestDynamicAgreement:
    """Reconfigurations interleave differently once replies take real time,
    so the dynamic comparison is statistical: aggregates within ~10 %."""

    def test_aggregates_within_tolerance(self, config):
        fast = run_simulation(config.as_dynamic(), engine="fast").metrics
        detailed = run_simulation(config.as_dynamic(), engine="detailed").metrics
        assert fast.total_hits == pytest.approx(detailed.total_hits, rel=0.10)
        assert fast.messages_total() == pytest.approx(
            detailed.messages_total(), rel=0.10
        )
        assert fast.mean_first_result_delay_ms() == pytest.approx(
            detailed.mean_first_result_delay_ms(), rel=0.10
        )


class TestOrderingPreserved:
    """Whatever the engine, dynamic must beat static the same way."""

    def test_dynamic_beats_static_in_both_engines(self, config):
        for engine in ("fast", "detailed"):
            static = run_simulation(config.as_static(), engine=engine).metrics
            dynamic = run_simulation(config.as_dynamic(), engine=engine).metrics
            assert dynamic.total_hits > static.total_hits, engine
            assert (
                dynamic.mean_first_result_delay_ms()
                < static.mean_first_result_delay_ms()
            ), engine
