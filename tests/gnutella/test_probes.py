"""Tests for runtime probes and transport loss injection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NetworkError
from repro.gnutella import FastGnutellaEngine, GnutellaConfig
from repro.gnutella.probes import ClusteringProbe, DegreeProbe
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel
from repro.net.message import Message, MessageKind
from repro.net.transport import Transport
from repro.sim import Simulator
from repro.types import HOUR


def small_config(**overrides):
    defaults = dict(
        n_users=60,
        n_items=3000,
        n_categories=10,
        mean_library=30.0,
        std_library=5.0,
        horizon=4 * HOUR,
        warmup_hours=0,
        queries_per_hour=6.0,
        seed=21,
    )
    defaults.update(overrides)
    return GnutellaConfig(**defaults)


class TestProbes:
    def test_clustering_probe_samples_on_schedule(self):
        engine = FastGnutellaEngine(small_config())
        probe = ClusteringProbe(engine, interval=HOUR)
        engine.run()
        assert len(probe.series) == 3  # hours 1,2,3 (horizon event at 4h)
        assert all(0.0 <= v <= 1.0 for v in probe.series.values)

    def test_degree_probe_near_capacity(self):
        engine = FastGnutellaEngine(small_config())
        probe = DegreeProbe(engine, interval=HOUR)
        engine.run()
        assert all(2.0 <= v <= 4.0 for v in probe.series.values)

    def test_dynamic_clustering_rises_above_static(self):
        cfg = small_config(n_users=150, n_items=7500, horizon=10 * HOUR)
        static_engine = FastGnutellaEngine(cfg.as_static())
        static_probe = ClusteringProbe(static_engine, interval=2 * HOUR)
        static_engine.run()
        dynamic_engine = FastGnutellaEngine(cfg.as_dynamic())
        dynamic_probe = ClusteringProbe(dynamic_engine, interval=2 * HOUR)
        dynamic_engine.run()
        # Late dynamic samples must exceed every static sample.
        assert min(dynamic_probe.series.values[-2:]) > max(
            static_probe.series.values
        )

    def test_invalid_interval(self):
        engine = FastGnutellaEngine(small_config())
        with pytest.raises(ConfigurationError):
            ClusteringProbe(engine, interval=0.0)

    def test_attach_after_run_rejected(self):
        engine = FastGnutellaEngine(small_config())
        engine.run()
        with pytest.raises(ConfigurationError):
            DegreeProbe(engine, interval=HOUR)


class TestTransportLoss:
    def make_transport(self, loss_rate, seed=0):
        sim = Simulator()
        bw = BandwidthModel(10, np.random.default_rng(seed))
        latency = LatencyModel(bw, np.random.default_rng(seed + 1))
        transport = Transport(
            sim, latency, loss_rate=loss_rate, rng=np.random.default_rng(seed + 2)
        )
        return sim, transport

    def test_zero_loss_delivers_everything(self):
        sim, transport = self.make_transport(0.0)
        got = []
        transport.register(1, got.append)
        for _ in range(50):
            transport.send(Message(MessageKind.QUERY, 0, 1, origin=0))
        sim.run()
        assert len(got) == 50
        assert transport.lost == 0

    def test_loss_rate_drops_roughly_expected_fraction(self):
        sim, transport = self.make_transport(0.3)
        got = []
        transport.register(1, got.append)
        n = 2000
        for _ in range(n):
            transport.send(Message(MessageKind.QUERY, 0, 1, origin=0))
        sim.run()
        assert transport.lost + len(got) == n
        assert abs(transport.lost / n - 0.3) < 0.05
        assert transport.sent == n  # lost messages still count as sent

    def test_invalid_loss_config(self):
        sim = Simulator()
        bw = BandwidthModel(2, np.random.default_rng(0))
        latency = LatencyModel(bw, np.random.default_rng(1))
        with pytest.raises(NetworkError):
            Transport(sim, latency, loss_rate=1.0, rng=np.random.default_rng(2))
        with pytest.raises(NetworkError):
            Transport(sim, latency, loss_rate=0.5)  # no rng
