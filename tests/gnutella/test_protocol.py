"""Tests for the instantaneous protocol layer (link ops + Algo 5)."""

import numpy as np
import pytest

from repro.errors import FrameworkError
from repro.gnutella.bootstrap import BootstrapServer
from repro.gnutella.metrics import SimulationMetrics
from repro.gnutella.node import PeerState
from repro.gnutella.protocol import GnutellaProtocol


def make_world(n=10, slots=4, always_accept=True):
    peers = [PeerState(i, slots) for i in range(n)]
    bootstrap = BootstrapServer()
    for p in peers:
        p.online = True
        bootstrap.join(p.node)
    metrics = SimulationMetrics(horizon=3600.0)
    protocol = GnutellaProtocol(peers, bootstrap, metrics, slots, always_accept)
    return peers, bootstrap, metrics, protocol


def assert_mutual(peers):
    for p in peers:
        for other in p.neighbors.outgoing:
            assert p.node in peers[other].neighbors.outgoing, (p.node, other)
        assert set(p.neighbors.outgoing.as_tuple()) == set(p.neighbors.incoming.as_tuple())


class TestLinkPrimitives:
    def test_link_mutual(self):
        peers, _, _, protocol = make_world()
        protocol.link(0, 1)
        assert 1 in peers[0].neighbors.outgoing
        assert 0 in peers[1].neighbors.outgoing
        assert_mutual(peers)

    def test_unlink_mutual(self):
        peers, _, _, protocol = make_world()
        protocol.link(0, 1)
        protocol.unlink(1, 0)
        assert peers[0].degree == 0
        assert peers[1].degree == 0

    def test_self_link_rejected(self):
        _, _, _, protocol = make_world()
        with pytest.raises(FrameworkError):
            protocol.link(2, 2)

    def test_evict_resets_evicted_stats_about_evictor(self):
        peers, _, metrics, protocol = make_world()
        protocol.link(0, 1)
        peers[1].stats.add_benefit(0, 9.0)
        peers[1].stats.add_benefit(5, 2.0)
        protocol.evict(0, 1)
        assert peers[1].stats.benefit_of(0) == 0.0
        assert peers[1].stats.benefit_of(5) == 2.0
        assert metrics.evictions == 1

    def test_eviction_hook_fires(self):
        peers, _, _, protocol = make_world()
        protocol.link(0, 1)
        fired = []
        protocol.on_eviction = fired.append
        protocol.evict(0, 1)
        assert fired == [1]


class TestFillRandom:
    def test_fills_all_slots(self):
        peers, _, _, protocol = make_world(n=20)
        formed = protocol.fill_random(0, np.random.default_rng(0))
        assert formed == 4
        assert peers[0].degree == 4
        assert_mutual(peers)

    def test_respects_partner_capacity(self):
        peers, bootstrap, _, protocol = make_world(n=3, slots=1)
        protocol.link(1, 2)  # both now full
        formed = protocol.fill_random(0, np.random.default_rng(0))
        assert formed == 0
        assert peers[0].degree == 0

    def test_no_self_or_duplicate_links(self):
        peers, _, _, protocol = make_world(n=6)
        protocol.fill_random(0, np.random.default_rng(1))
        out = peers[0].neighbors.outgoing.as_tuple()
        assert 0 not in out
        assert len(set(out)) == len(out)

    def test_offline_candidates_skipped(self):
        peers, bootstrap, _, protocol = make_world(n=6)
        # Nodes 2..5 offline (but stale in bootstrap to exercise the check).
        for n in range(2, 6):
            peers[n].online = False
        formed = protocol.fill_random(0, np.random.default_rng(2))
        assert set(peers[0].neighbors.outgoing.as_tuple()) <= {1}


class TestSeverAll:
    def test_drops_all_links_and_returns_ex_neighbors(self):
        peers, _, _, protocol = make_world()
        protocol.link(0, 1)
        protocol.link(0, 2)
        ex = protocol.sever_all(0)
        assert sorted(ex) == [1, 2]
        assert peers[0].degree == 0
        assert peers[1].degree == 0
        assert_mutual(peers)


class TestReconfigure:
    def test_adopts_most_beneficial_known_node(self):
        peers, _, _, protocol = make_world()
        peers[0].stats.add_benefit(7, 10.0)
        adopted = protocol.reconfigure(0)
        assert adopted == 1
        assert 7 in peers[0].neighbors.outgoing
        assert_mutual(peers)

    def test_single_swap_cap(self):
        peers, _, _, protocol = make_world()
        for candidate in (5, 6, 7, 8):
            peers[0].stats.add_benefit(candidate, float(candidate))
        protocol.reconfigure(0, max_swaps=1)
        assert peers[0].degree == 1  # only the best one adopted
        assert 8 in peers[0].neighbors.outgoing

    def test_full_list_swap_when_uncapped(self):
        peers, _, _, protocol = make_world()
        for candidate in (5, 6, 7, 8):
            peers[0].stats.add_benefit(candidate, float(candidate))
        protocol.reconfigure(0, max_swaps=None)
        assert peers[0].degree == 4
        assert set(peers[0].neighbors.outgoing.as_tuple()) == {5, 6, 7, 8}

    def test_full_node_evicts_worst_to_make_room(self):
        peers, _, _, protocol = make_world()
        for other in (1, 2, 3, 4):
            protocol.link(0, other)
            peers[0].stats.add_benefit(other, float(other))
        peers[0].stats.add_benefit(9, 100.0)
        protocol.reconfigure(0, max_swaps=1)
        assert 9 in peers[0].neighbors.outgoing
        assert 1 not in peers[0].neighbors.outgoing  # worst incumbent evicted
        assert peers[0].degree == 4
        assert_mutual(peers)

    def test_swap_margin_protects_incumbents(self):
        peers, _, _, protocol = make_world()
        for other in (1, 2, 3, 4):
            protocol.link(0, other)
            peers[0].stats.add_benefit(other, 10.0)
        peers[0].stats.add_benefit(9, 11.0)  # barely better
        protocol.reconfigure(0, max_swaps=1, swap_margin=0.5)
        assert 9 not in peers[0].neighbors.outgoing

    def test_offline_candidates_not_invited(self):
        peers, _, _, protocol = make_world()
        peers[7].online = False
        peers[0].stats.add_benefit(7, 10.0)
        peers[0].stats.add_benefit(6, 5.0)
        protocol.reconfigure(0)
        assert 7 not in peers[0].neighbors.outgoing
        assert 6 in peers[0].neighbors.outgoing

    def test_full_invitee_always_accepts_and_evicts(self):
        peers, _, metrics, protocol = make_world()
        # Fill node 7 completely.
        for other in (1, 2, 3, 4):
            protocol.link(7, other)
        peers[0].stats.add_benefit(7, 10.0)
        protocol.reconfigure(0)
        assert 7 in peers[0].neighbors.outgoing
        assert peers[7].degree == 4  # one evicted, inviter added
        assert_mutual(peers)
        assert metrics.evictions == 1

    def test_benefit_gated_invitee_can_refuse(self):
        peers, _, _, protocol = make_world(always_accept=False)
        for other in (1, 2, 3, 4):
            protocol.link(7, other)
            peers[7].stats.add_benefit(other, 5.0)
        peers[0].stats.add_benefit(7, 10.0)
        adopted = protocol.reconfigure(0)
        assert adopted == 0
        assert 7 not in peers[0].neighbors.outgoing

    def test_counters_reset(self):
        peers, _, metrics, protocol = make_world()
        peers[0].requests_since_update = 5
        peers[7].requests_since_update = 5
        peers[0].stats.add_benefit(7, 10.0)
        protocol.reconfigure(0)
        assert peers[0].requests_since_update == 0
        assert peers[7].requests_since_update == 0  # invitee damped
        assert metrics.reconfigurations == 1

    def test_stats_decay_applied(self):
        peers, _, _, protocol = make_world()
        peers[0].stats.add_benefit(7, 10.0)
        protocol.reconfigure(0, stats_decay=0.5)
        assert peers[0].stats.benefit_of(7) == 5.0

    def test_stats_clear_at_zero_decay(self):
        peers, _, _, protocol = make_world()
        peers[0].stats.add_benefit(7, 10.0)
        protocol.reconfigure(0, stats_decay=0.0)
        assert len(peers[0].stats) == 0

    def test_noop_when_already_optimal(self):
        peers, _, metrics, protocol = make_world()
        protocol.link(0, 1)
        peers[0].stats.add_benefit(1, 10.0)
        adopted = protocol.reconfigure(0)
        assert adopted == 0
        assert metrics.evictions == 0
