"""Tests for the top-level simulation driver."""

import pytest

from repro.errors import ConfigurationError
from repro.gnutella import GnutellaConfig, run_simulation
from repro.types import HOUR


def quick_config(**overrides):
    defaults = dict(
        n_users=60,
        n_items=3000,
        n_categories=10,
        mean_library=30.0,
        std_library=5.0,
        horizon=3 * HOUR,
        warmup_hours=0,
        queries_per_hour=6.0,
        seed=7,
    )
    defaults.update(overrides)
    return GnutellaConfig(**defaults)


class TestRunSimulation:
    def test_fast_engine_result_fields(self):
        result = run_simulation(quick_config())
        assert result.metrics.total_queries > 0
        assert 0.0 <= result.taste_clustering <= 1.0
        assert 0.0 <= result.mean_degree <= 4.0
        assert result.scheme == "Dynamic_Gnutella"

    def test_static_scheme_name(self):
        result = run_simulation(quick_config(dynamic=False))
        assert result.scheme == "Gnutella"

    def test_detailed_engine_selectable(self):
        result = run_simulation(quick_config(), engine="detailed")
        assert result.metrics.total_queries > 0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            run_simulation(quick_config(), engine="warp")

    def test_config_passthrough(self):
        cfg = quick_config()
        result = run_simulation(cfg)
        assert result.config is cfg
