"""The serving bench section: shape, params-vs-metrics split, smoke run."""

from repro.bench.serving import ServingBench, serving_smoke
from repro.serve.loadgen import LatencySummary, LoadReport


def _bench() -> ServingBench:
    return ServingBench(
        preset="smoke",
        connections=4,
        trial_seconds=1.5,
        n_users=40,
        requests_per_sec=5000.0,
        p50_seconds=0.0002,
        p95_seconds=0.0005,
        p99_seconds=0.001,
        mean_seconds=0.0003,
        report=LoadReport(
            mode="closed",
            connections=4,
            duration_s=1.5,
            offered_qps=None,
            requests=7500,
            ok=7500,
            errors={},
            dropped=0,
            achieved_qps=5000.0,
            latency=LatencySummary.from_samples([0.0002]),
            hit_fraction=0.8,
            sim_time_start=7200.0,
            sim_time_end=7200.0,
        ),
    )


class TestServingBenchShape:
    def test_as_dict_holds_only_stable_params_and_judged_metrics(self):
        section = _bench().as_dict()
        assert set(section) == {"closed_loop"}
        block = section["closed_loop"]
        # Params the compare gate uses to decide comparability...
        assert block["connections"] == 4.0
        assert block["trial_duration"] == 1.5
        assert block["n_users"] == 40.0
        # ...and the judged metrics, named so direction inference works
        # (per_sec -> higher is better, seconds -> lower is better).
        assert block["requests_per_sec"] == 5000.0
        assert block["p50_seconds"] == 0.0002
        assert block["p99_seconds"] == 0.001
        assert block["mean_seconds"] == 0.0003
        # Measured counts (requests, ok) stay out: they vary run to run and
        # would trip the params-must-match rule on every compare.
        assert "requests" not in block
        assert "ok" not in block

    def test_values_are_plain_floats(self):
        block = _bench().as_dict()["closed_loop"]
        assert all(isinstance(v, float) for v in block.values())


class TestServingSmoke:
    def test_measures_a_live_server(self):
        bench = serving_smoke(duration_s=0.5, connections=2)
        assert bench.requests_per_sec > 0
        assert bench.report.error_count == 0
        assert bench.report.ok == bench.report.requests
        assert 0 < bench.p50_seconds <= bench.p99_seconds
