"""``repro-bench compare``: the kernel-timing regression gate. An injected
2x slowdown must fail the gate; parameter mismatches are skipped, not
misjudged; the legacy flag interface keeps working next to the subcommand."""

import copy
import json

import pytest

from repro.bench.compare import DEFAULT_THRESHOLD, compare_snapshots
from repro.bench.compare import main as compare_main
from repro.errors import ConfigurationError


@pytest.fixture()
def baseline():
    return {
        "rev": "aaaa111",
        "kernels": {
            "flood_search_default": {
                "fastpath_us_per_query": 7.0,
                "reference_us_per_query": 16.0,
                "speedup": 2.3,
                "n_users": 300.0,
                "queries": 2000.0,
            },
            "event_queue": {
                "events": 20000.0,
                "events_per_sec": 115000.0,
                "seconds": 0.17,
            },
        },
    }


def test_identical_snapshots_pass(baseline):
    report = compare_snapshots(baseline, baseline)
    assert report.ok
    assert report.regressions == ()
    assert len(report.deltas) == 5  # 3 flood metrics + 2 event_queue metrics
    assert report.skipped == ()
    assert report.threshold == DEFAULT_THRESHOLD


def test_injected_2x_slowdown_fails(baseline):
    slow = copy.deepcopy(baseline)
    slow["rev"] = "bbbb222"
    slow["kernels"]["flood_search_default"]["fastpath_us_per_query"] *= 2.0
    report = compare_snapshots(baseline, slow)
    assert not report.ok
    (regression,) = report.regressions
    assert regression.kernel == "flood_search_default"
    assert regression.metric == "fastpath_us_per_query"
    assert regression.ratio == pytest.approx(2.0)
    assert report.as_dict()["ok"] is False


def test_throughput_drop_is_a_regression(baseline):
    slower = copy.deepcopy(baseline)
    slower["kernels"]["event_queue"]["events_per_sec"] = 50000.0
    report = compare_snapshots(baseline, slower)
    assert not report.ok
    (regression,) = report.regressions
    assert regression.metric == "events_per_sec"
    assert regression.direction == "higher"


def test_small_jitter_within_threshold_passes(baseline):
    noisy = copy.deepcopy(baseline)
    noisy["kernels"]["event_queue"]["seconds"] *= 1.10  # 10% < 15%
    assert compare_snapshots(baseline, noisy).ok


def test_threshold_is_adjustable(baseline):
    noisy = copy.deepcopy(baseline)
    noisy["kernels"]["event_queue"]["seconds"] *= 1.30
    assert not compare_snapshots(baseline, noisy).ok
    assert compare_snapshots(baseline, noisy, threshold=0.5).ok
    with pytest.raises(ConfigurationError):
        compare_snapshots(baseline, noisy, threshold=-0.1)


def test_parameter_mismatch_skips_kernel(baseline):
    bigger = copy.deepcopy(baseline)
    bigger["kernels"]["flood_search_default"]["n_users"] = 600.0
    bigger["kernels"]["flood_search_default"]["fastpath_us_per_query"] = 99.0
    report = compare_snapshots(baseline, bigger)
    assert report.ok  # the 99 us timing was never judged
    assert any("parameters differ" in note for note in report.skipped)
    assert all(d.kernel != "flood_search_default" for d in report.deltas)


def test_missing_and_new_kernels_are_noted(baseline):
    pruned = copy.deepcopy(baseline)
    del pruned["kernels"]["event_queue"]
    pruned["kernels"]["brand_new"] = {"seconds": 1.0}
    report = compare_snapshots(baseline, pruned)
    assert report.ok
    assert any("missing from new" in note for note in report.skipped)
    assert any("is new" in note for note in report.skipped)


def _write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


def test_cli_exit_codes_and_output(tmp_path, baseline, capsys):
    slow = copy.deepcopy(baseline)
    slow["kernels"]["flood_search_default"]["fastpath_us_per_query"] *= 2.0
    old = _write(tmp_path, "old.json", baseline)
    new = _write(tmp_path, "new.json", slow)
    assert compare_main([old, old]) == 0
    capsys.readouterr()
    assert compare_main([old, new]) == 1
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.err
    payload = json.loads(captured.out)
    assert payload["ok"] is False
    assert payload["regressions"][0]["metric"] == "fastpath_us_per_query"
    # Loosening the threshold past 2x lets it pass.
    assert compare_main([old, new, "--threshold", "1.5"]) == 0


def test_cli_rejects_non_snapshot_input(tmp_path, capsys):
    bogus = _write(tmp_path, "bogus.json", {"not": "a snapshot"})
    assert compare_main([bogus, bogus]) == 2
    assert "error" in capsys.readouterr().err


def test_repro_bench_dispatches_compare_subcommand(tmp_path, baseline, capsys):
    from repro.bench.cli import main as bench_main

    slow = copy.deepcopy(baseline)
    slow["kernels"]["event_queue"]["seconds"] *= 3.0
    old = _write(tmp_path, "old.json", baseline)
    new = _write(tmp_path, "new.json", slow)
    assert bench_main(["compare", old, old]) == 0
    capsys.readouterr()
    assert bench_main(["compare", old, new]) == 1


def test_committed_baseline_compares_against_itself():
    from pathlib import Path

    baseline_path = Path(__file__).resolve().parents[2] / "BENCH_4a20a5e.json"
    snapshot = json.loads(baseline_path.read_text())
    report = compare_snapshots(snapshot, snapshot)
    assert report.ok
    assert len(report.deltas) >= 4


@pytest.fixture()
def baseline_with_serving(baseline):
    snapshot = copy.deepcopy(baseline)
    snapshot["serving"] = {
        "closed_loop": {
            "connections": 4.0,
            "trial_duration": 1.5,
            "n_users": 40.0,
            "requests_per_sec": 5000.0,
            "p50_seconds": 0.0002,
            "p95_seconds": 0.0005,
            "p99_seconds": 0.001,
        }
    }
    return snapshot


def test_serving_section_judged_like_kernels(baseline_with_serving):
    report = compare_snapshots(baseline_with_serving, baseline_with_serving)
    assert report.ok
    serving_deltas = [d for d in report.deltas if d.kernel.startswith("serving:")]
    assert len(serving_deltas) == 4  # requests_per_sec + three latency tails


def test_serving_throughput_drop_is_a_regression(baseline_with_serving):
    slow = copy.deepcopy(baseline_with_serving)
    slow["serving"]["closed_loop"]["requests_per_sec"] = 2000.0
    report = compare_snapshots(baseline_with_serving, slow)
    assert not report.ok
    (regression,) = report.regressions
    assert regression.kernel == "serving:closed_loop"
    assert regression.metric == "requests_per_sec"
    assert regression.direction == "higher"


def test_serving_tail_inflation_is_a_regression(baseline_with_serving):
    slow = copy.deepcopy(baseline_with_serving)
    slow["serving"]["closed_loop"]["p99_seconds"] *= 3.0
    report = compare_snapshots(baseline_with_serving, slow)
    assert not report.ok
    assert any(r.metric == "p99_seconds" for r in report.regressions)


def test_serving_param_change_skips_not_misjudges(baseline_with_serving):
    changed = copy.deepcopy(baseline_with_serving)
    changed["serving"]["closed_loop"]["connections"] = 16.0
    changed["serving"]["closed_loop"]["requests_per_sec"] = 1.0
    report = compare_snapshots(baseline_with_serving, changed)
    assert report.ok
    assert any(
        "serving section 'closed_loop'" in note and "parameters differ" in note
        for note in report.skipped
    )


def test_serving_section_new_in_new_snapshot_is_noted(baseline, baseline_with_serving):
    # Old snapshots predate the serving bench: comparing must not fail.
    report = compare_snapshots(baseline, baseline_with_serving)
    assert report.ok
    assert any(
        "serving section 'closed_loop'" in note and "is new" in note
        for note in report.skipped
    )


def test_serving_section_absent_from_both_is_fine(baseline):
    assert compare_snapshots(baseline, baseline).ok


def _profile_block(hot_seconds):
    return {
        "hz": 97.0,
        "samples": 400.0,
        "wall_seconds": 4.0,
        "frames": {
            "repro.core.fastpath:search": {
                "self_count": 300.0,
                "cum_count": 380.0,
                "self_seconds": hot_seconds,
                "cum_seconds": hot_seconds + 0.5,
            },
            "repro.sim.kernel:run": {
                "self_count": 50.0,
                "cum_count": 400.0,
                "self_seconds": 0.4,
                "cum_seconds": 4.0,
            },
        },
        "event_types": {
            "fastpath.search": {
                "events": 2000.0, "seconds": 1.0, "events_per_sec": 2000.0
            }
        },
    }


@pytest.fixture()
def profiled_pair(baseline):
    """A profiled baseline plus a regressed candidate whose profile moved."""
    old = copy.deepcopy(baseline)
    old["profile"] = _profile_block(2.0)
    slow = copy.deepcopy(old)
    slow["rev"] = "cccc333"
    slow["kernels"]["event_queue"]["seconds"] *= 2.0
    slow["profile"] = _profile_block(3.5)
    return old, slow


class TestProfileAttribution:
    def test_regression_names_the_moved_frame(self, profiled_pair):
        old, slow = profiled_pair
        report = compare_snapshots(old, slow)
        assert not report.ok
        assert report.attribution
        top = report.attribution[0]
        assert top["frame"] == "repro.core.fastpath:search"
        assert top["metric"] == "self_seconds"
        assert top["delta"] == pytest.approx(1.5)
        assert report.as_dict()["attribution"][0]["frame"] == top["frame"]

    def test_no_regression_means_no_attribution(self, profiled_pair):
        old, slow = profiled_pair
        slow = copy.deepcopy(slow)
        slow["kernels"] = copy.deepcopy(old["kernels"])  # undo the slowdown
        report = compare_snapshots(old, slow)
        assert report.ok
        assert report.attribution == ()

    def test_attribution_stable_under_frame_order_permutation(self, profiled_pair):
        old, slow = profiled_pair
        shuffled = copy.deepcopy(slow)
        shuffled["profile"]["frames"] = dict(
            reversed(list(shuffled["profile"]["frames"].items()))
        )
        assert (
            compare_snapshots(old, slow).attribution
            == compare_snapshots(old, shuffled).attribution
        )

    def test_profile_block_new_in_new_snapshot_is_noted(self, baseline):
        profiled = copy.deepcopy(baseline)
        profiled["profile"] = _profile_block(2.0)
        report = compare_snapshots(baseline, profiled)
        assert report.ok
        assert "profile block is new (no baseline)" in report.skipped
        assert report.attribution == ()

    def test_old_profile_without_new_is_silent(self, baseline):
        profiled = copy.deepcopy(baseline)
        profiled["profile"] = _profile_block(2.0)
        report = compare_snapshots(profiled, baseline)
        assert report.ok
        assert report.attribution == ()

    def test_profile_block_itself_is_never_judged(self, profiled_pair):
        # Sampling noise in the profile must not create regressions: only
        # kernel/serving/scale metrics are judged.
        old, slow = profiled_pair
        slow = copy.deepcopy(slow)
        slow["kernels"] = copy.deepcopy(old["kernels"])
        slow["profile"] = _profile_block(50.0)  # wild profile swing
        report = compare_snapshots(old, slow)
        assert report.ok
        assert all("profile" not in d.kernel for d in report.deltas)

    def test_cli_prints_attribution_and_keeps_exit_code(
        self, tmp_path, profiled_pair, capsys
    ):
        old, slow = profiled_pair
        assert compare_main(
            [_write(tmp_path, "old.json", old), _write(tmp_path, "new.json", slow)]
        ) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "ATTRIBUTION repro.core.fastpath:search" in captured.err
        payload = json.loads(captured.out)
        assert payload["attribution"][0]["frame"] == "repro.core.fastpath:search"


class TestHostWarning:
    def _hosted(self, baseline, cpu="Xeon", cores=8, plat="Linux-x86_64"):
        snapshot = copy.deepcopy(baseline)
        snapshot["host"] = {"cpu": cpu, "cores": cores, "platform": plat}
        return snapshot

    def test_same_host_no_warning(self, baseline):
        a = self._hosted(baseline)
        report = compare_snapshots(a, a)
        assert report.host_warning is None
        assert report.as_dict()["host_warning"] is None

    def test_differing_cpu_warns_but_still_judges(self, baseline):
        old = self._hosted(baseline, cpu="Xeon")
        new = self._hosted(baseline, cpu="EPYC")
        new["kernels"]["event_queue"]["seconds"] *= 2.0
        report = compare_snapshots(old, new)
        assert report.host_warning is not None
        assert "'Xeon' vs 'EPYC'" in report.host_warning
        assert not report.ok  # warned, not excused

    def test_missing_host_blocks_compare_silently(self, baseline):
        # Pre-provenance snapshots have no host block: no warning.
        hosted = self._hosted(baseline)
        assert compare_snapshots(baseline, hosted).host_warning is None
        assert compare_snapshots(hosted, baseline).host_warning is None
        assert compare_snapshots(baseline, baseline).host_warning is None

    def test_cli_prints_host_warning(self, tmp_path, baseline, capsys):
        old = self._hosted(baseline, cores=8)
        new = self._hosted(baseline, cores=64)
        assert compare_main(
            [_write(tmp_path, "old.json", old), _write(tmp_path, "new.json", new)]
        ) == 0
        assert "WARNING" in capsys.readouterr().err
