"""Tests for the ``repro-bench`` CLI (snapshot writing, digest-gate exit code).

The heavy benchmark bodies are stubbed out — their correctness is covered by
``tests/core``/``tests/gnutella`` and by the bench CI job — so these tests
pin down only the CLI contract: argument handling, the ``BENCH_<rev>.json``
snapshot schema, and the non-zero exit status on a digest mismatch.
"""

import json

import pytest

from repro.bench import cli
from repro.bench.kernels import KernelReport
from repro.bench.macro import DigestGateReport, FigureReport


def _fake_kernels(log=None):
    report = KernelReport()
    report.event_queue = {"events": 10.0, "seconds": 0.1, "events_per_sec": 100.0}
    report.flood_search = {
        "n_users": 300.0,
        "max_hops": 2.0,
        "queries": 2000.0,
        "fastpath_us_per_query": 7.0,
        "reference_us_per_query": 16.0,
        "speedup": 16.0 / 7.0,
    }
    report.delay_matrix = {"n_users": 600.0, "seconds": 0.02}
    return report


def _fake_gate(match):
    def gate(preset="smoke", seed=0, log=None):
        return DigestGateReport(
            preset=preset,
            seed=seed,
            fast_digest="a" * 64,
            reference_digest=("a" if match else "b") * 64,
        )

    return gate


def _fake_figure(preset="smoke", seed=0):
    return FigureReport(
        preset=preset,
        seed=seed,
        max_hops=2,
        seconds=1.5,
        static_hits=10,
        dynamic_hits=12,
        static_messages=100,
        dynamic_messages=90,
    )


@pytest.fixture
def stubbed_cli(monkeypatch):
    monkeypatch.setattr(cli, "run_kernels", _fake_kernels)
    monkeypatch.setattr(cli, "digest_gate", _fake_gate(match=True))
    monkeypatch.setattr(cli, "figure_smoke", _fake_figure)
    monkeypatch.setattr(cli, "_git_rev", lambda: "abc1234")
    return cli


def test_writes_snapshot(stubbed_cli, tmp_path, capsys):
    status = stubbed_cli.main(["--skip-figures", "--output-dir", str(tmp_path)])
    assert status == 0
    out_path = tmp_path / "BENCH_abc1234.json"
    snapshot = json.loads(out_path.read_text())
    assert snapshot["schema"] == 1
    assert snapshot["rev"] == "abc1234"
    assert snapshot["preset"] == "smoke"
    assert snapshot["kernels"]["flood_search_default"]["speedup"] > 2.0
    assert snapshot["digest_gate"]["match"] is True
    assert "figures" not in snapshot
    assert "bit-identical" in capsys.readouterr().out


def test_output_dir_created_if_missing(stubbed_cli, tmp_path):
    target = tmp_path / "nested" / "dir"
    status = stubbed_cli.main(["--skip-figures", "--output-dir", str(target)])
    assert status == 0
    assert (target / "BENCH_abc1234.json").is_file()


def test_figures_included_by_default(stubbed_cli, tmp_path):
    status = stubbed_cli.main(["--smoke", "--output-dir", str(tmp_path)])
    assert status == 0
    snapshot = json.loads((tmp_path / "BENCH_abc1234.json").read_text())
    assert snapshot["figures"]["figure1"]["static_hits"] == 10


def test_smoke_flag_overrides_preset(stubbed_cli, tmp_path):
    stubbed_cli.main(
        ["--smoke", "--preset", "paper", "--skip-figures", "--output-dir", str(tmp_path)]
    )
    snapshot = json.loads((tmp_path / "BENCH_abc1234.json").read_text())
    assert snapshot["preset"] == "smoke"


def test_digest_mismatch_fails(stubbed_cli, monkeypatch, tmp_path, capsys):
    monkeypatch.setattr(cli, "digest_gate", _fake_gate(match=False))
    status = stubbed_cli.main(["--skip-figures", "--output-dir", str(tmp_path)])
    assert status == 1
    assert "FAIL" in capsys.readouterr().out
    # The snapshot is still written so the mismatch can be inspected.
    snapshot = json.loads((tmp_path / "BENCH_abc1234.json").read_text())
    assert snapshot["digest_gate"]["match"] is False


def test_seed_passthrough(stubbed_cli, monkeypatch, tmp_path):
    seen = {}

    def gate(preset="smoke", seed=0, log=None):
        seen["seed"] = seed
        return _fake_gate(match=True)(preset=preset, seed=seed)

    monkeypatch.setattr(cli, "digest_gate", gate)
    stubbed_cli.main(["--skip-figures", "--seed", "42", "--output-dir", str(tmp_path)])
    assert seen["seed"] == 42


def test_host_provenance_always_in_snapshot(stubbed_cli, monkeypatch, tmp_path):
    fake_host = {"cpu": "Test CPU", "cores": 4, "platform": "TestOS-1.0"}
    monkeypatch.setattr(cli, "host_provenance", lambda: fake_host)
    stubbed_cli.main(["--skip-figures", "--output-dir", str(tmp_path)])
    snapshot = json.loads((tmp_path / "BENCH_abc1234.json").read_text())
    assert snapshot["host"] == fake_host


def test_profile_flag_adds_profile_block(stubbed_cli, monkeypatch, tmp_path):
    seen = {}
    fake_block = {
        "hz": 31.0,
        "samples": 10.0,
        "wall_seconds": 0.5,
        "frames": {"m:f": {"self_count": 10.0, "cum_count": 10.0,
                           "self_seconds": 0.3, "cum_seconds": 0.3}},
        "event_types": {"m.f": {"events": 5.0, "seconds": 0.3,
                                "events_per_sec": 16.7}},
    }

    def fake_profile(preset="smoke", seed=0, hz=97.0, log=None):
        seen.update(preset=preset, seed=seed, hz=hz)
        return fake_block

    monkeypatch.setattr(cli, "profile_smoke", fake_profile)
    status = stubbed_cli.main(
        ["--skip-figures", "--profile", "--profile-hz", "31",
         "--seed", "7", "--output-dir", str(tmp_path)]
    )
    assert status == 0
    assert seen == {"preset": "smoke", "seed": 7, "hz": 31.0}
    snapshot = json.loads((tmp_path / "BENCH_abc1234.json").read_text())
    assert snapshot["profile"] == fake_block


def test_no_profile_flag_no_profile_block(stubbed_cli, monkeypatch, tmp_path):
    def explode(**kwargs):  # pragma: no cover - must never run
        raise AssertionError("profile_smoke ran without --profile")

    monkeypatch.setattr(cli, "profile_smoke", explode)
    stubbed_cli.main(["--skip-figures", "--output-dir", str(tmp_path)])
    snapshot = json.loads((tmp_path / "BENCH_abc1234.json").read_text())
    assert "profile" not in snapshot
