"""Host provenance: CPU identification and graceful degradation."""

from repro.bench.host import _cpu_model, host_provenance


def test_host_provenance_shape():
    host = host_provenance()
    assert set(host) == {"cpu", "cores", "platform"}
    assert isinstance(host["cpu"], str) and host["cpu"]
    assert isinstance(host["cores"], int) and host["cores"] >= 0
    assert isinstance(host["platform"], str) and host["platform"]


def test_cpu_model_prefers_model_name(tmp_path):
    cpuinfo = tmp_path / "cpuinfo"
    cpuinfo.write_text(
        "processor\t: 0\n"
        "vendor_id\t: GenuineIntel\n"
        "model name\t: Intel(R) Xeon(R) CPU @ 2.20GHz\n"
        "processor\t: 1\n"
        "model name\t: Intel(R) Xeon(R) CPU @ 2.20GHz\n",
        encoding="utf-8",
    )
    assert _cpu_model(cpuinfo) == "Intel(R) Xeon(R) CPU @ 2.20GHz"


def test_cpu_model_arm_hardware_key(tmp_path):
    cpuinfo = tmp_path / "cpuinfo"
    cpuinfo.write_text(
        "processor\t: 0\nBogoMIPS\t: 48.00\nHardware\t: BCM2835\n",
        encoding="utf-8",
    )
    assert _cpu_model(cpuinfo) == "BCM2835"


def test_cpu_model_missing_file_degrades(tmp_path):
    # No cpuinfo at all: platform.processor() or "unknown", never a raise.
    model = _cpu_model(tmp_path / "does-not-exist")
    assert isinstance(model, str) and model


def test_cpu_model_ignores_keyless_lines(tmp_path):
    cpuinfo = tmp_path / "cpuinfo"
    cpuinfo.write_text("just noise\n\nmodel name : Fast CPU\n", encoding="utf-8")
    assert _cpu_model(cpuinfo) == "Fast CPU"
