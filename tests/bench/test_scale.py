"""Scale tiers: tiny-population end-to-end run, and the compare judging of
the snapshot's ``scale`` block (including the peak-RSS memory column)."""

import copy

import pytest

from repro.bench.compare import compare_snapshots
from repro.bench.scale import (
    DEFAULT_SCALE_TIERS,
    run_scale_tier,
    run_scale_tiers,
    scale_config,
)
from repro.errors import ConfigurationError


class TestScaleConfig:
    def test_catalog_scales_with_population(self):
        cfg = scale_config(400, seed=3)
        assert cfg.n_users == 400
        assert cfg.n_items == 20 * 400
        assert cfg.dynamic
        assert cfg.seed == 3
        assert cfg.warmup_hours == 0

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            scale_config(1)

    def test_default_tiers(self):
        assert DEFAULT_SCALE_TIERS == (10_000, 50_000)


class TestRunScaleTier:
    def test_tiny_tier_reports_everything(self):
        report = run_scale_tier(120, seed=1, digest_check=True)
        assert report.n_users == 120
        assert report.events_executed > 0
        assert report.events_per_sec > 0
        assert report.queries > 0
        assert report.run_seconds > 0
        assert report.wall_seconds >= report.run_seconds
        assert report.peak_rss_mb > 0
        assert report.digest_match is True
        assert report.fast_digest
        d = report.as_dict()
        assert d["digest_match"] is True
        assert d["events_per_sec"] == report.events_per_sec

    def test_tier_reports_per_event_type_costs(self):
        logs = []
        report = run_scale_tier(120, seed=1, log=logs.append)
        assert report.event_types
        # Kernel event classes account against events_executed; the
        # fastpath.search sub-account rides inside those events, so it is
        # excluded from the conservation check.
        kernel_events = sum(
            e["events"]
            for label, e in report.event_types.items()
            if label != "fastpath.search"
        )
        assert 0 < kernel_events <= report.events_executed
        for entry in report.event_types.values():
            assert set(entry) == {"events", "seconds", "events_per_sec"}
            assert entry["events"] > 0
        # The fast engine's flood searches show up as their own class.
        assert "fastpath.search" in report.event_types
        assert report.as_dict()["event_types"] == report.event_types
        # ... and the tier log names the hot classes.
        assert any("fastpath.search" in line for line in logs)

    def test_digest_skip_omits_gate_fields(self):
        report = run_scale_tier(120, seed=1, digest_check=False)
        assert report.digest_match is None
        d = report.as_dict()
        assert "digest_match" not in d and "fast_digest" not in d

    def test_run_scale_tiers_sorted_ascending_and_keyed(self):
        logs = []
        reports = run_scale_tiers(
            [150, 120], seed=1, digest_max_users=130, log=logs.append
        )
        assert list(reports) == ["120", "150"]
        assert reports["120"].digest_match is True
        assert reports["150"].digest_match is None  # above digest_max_users
        assert any("scale 120" in line for line in logs)

    def test_empty_tiers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scale_tiers([])


@pytest.fixture()
def scale_baseline():
    return {
        "rev": "aaaa111",
        "kernels": {},
        "scale": {
            "10000": {
                "n_users": 10000,
                "n_items": 200000,
                "horizon_hours": 2.0,
                "setup_seconds": 7.0,
                "run_seconds": 6.0,
                "wall_seconds": 13.0,
                "events_executed": 100000,
                "events_per_sec": 16000.0,
                "queries": 80000,
                "hits": 6400,
                "peak_rss_mb": 180.0,
                "digest_match": True,
                "fast_digest": "abc",
            }
        },
    }


class TestCompareScaleBlock:
    def test_identical_pass(self, scale_baseline):
        report = compare_snapshots(scale_baseline, scale_baseline)
        assert report.ok
        judged = {d.metric for d in report.deltas if d.kernel == "scale:10000"}
        assert judged == {
            "setup_seconds",
            "run_seconds",
            "wall_seconds",
            "events_per_sec",
            "peak_rss_mb",
        }

    def test_rss_growth_is_a_regression(self, scale_baseline):
        fat = copy.deepcopy(scale_baseline)
        fat["scale"]["10000"]["peak_rss_mb"] = 400.0
        report = compare_snapshots(scale_baseline, fat)
        assert not report.ok
        (regression,) = report.regressions
        assert regression.kernel == "scale:10000"
        assert regression.metric == "peak_rss_mb"
        assert regression.direction == "lower"

    def test_throughput_drop_is_a_regression(self, scale_baseline):
        slow = copy.deepcopy(scale_baseline)
        slow["scale"]["10000"]["events_per_sec"] = 8000.0
        report = compare_snapshots(scale_baseline, slow)
        assert not report.ok
        assert report.regressions[0].metric == "events_per_sec"

    def test_behaviour_change_skips_tier(self, scale_baseline):
        diverged = copy.deepcopy(scale_baseline)
        diverged["scale"]["10000"]["queries"] = 79999
        report = compare_snapshots(scale_baseline, diverged)
        assert report.ok  # skipped, not judged
        assert any("scale tier '10000'" in note for note in report.skipped)

    def test_new_tier_noted_not_judged(self, scale_baseline):
        grown = copy.deepcopy(scale_baseline)
        grown["scale"]["100000"] = dict(grown["scale"]["10000"], n_users=100000)
        report = compare_snapshots(scale_baseline, grown)
        assert report.ok
        assert any("100000" in note and "new" in note for note in report.skipped)

    def test_event_type_table_is_invisible_to_the_comparator(self, scale_baseline):
        # The nested per-event-type table is neither a judged metric nor a
        # workload parameter: its presence, absence, or drift must not
        # change any verdict (old snapshots predate it entirely).
        enriched = copy.deepcopy(scale_baseline)
        enriched["scale"]["10000"]["event_types"] = {
            "fastpath.search": {
                "events": 80000, "seconds": 2.0, "events_per_sec": 40000.0
            }
        }
        assert compare_snapshots(scale_baseline, enriched).ok
        assert compare_snapshots(enriched, scale_baseline).ok
        drifted = copy.deepcopy(enriched)
        drifted["scale"]["10000"]["event_types"]["fastpath.search"]["seconds"] = 99.0
        report = compare_snapshots(enriched, drifted)
        assert report.ok
        assert report.skipped == ()
