"""Tests for selection policies and terminating conditions."""

import numpy as np
import pytest

from repro.core.selection import SelectAll, SelectRandomK, SelectTopKBenefit, SelectionPolicy
from repro.core.statistics import StatsTable
from repro.core.termination import (
    IterativeDeepening,
    MaxResultsTermination,
    Termination,
    TTLTermination,
)
from repro.errors import FrameworkError


@pytest.fixture
def stats():
    s = StatsTable()
    s.add_benefit(10, 5.0)
    s.add_benefit(11, 3.0)
    s.add_benefit(12, 8.0)
    return s


class TestSelectAll:
    def test_returns_everything(self, stats):
        policy = SelectAll()
        rng = np.random.default_rng(0)
        assert policy.select([3, 1, 2], stats, rng) == [3, 1, 2]
        assert policy.select([], stats, rng) == []


class TestSelectRandomK:
    def test_k_of_many(self, stats):
        policy = SelectRandomK(2)
        rng = np.random.default_rng(0)
        picks = policy.select(list(range(10)), stats, rng)
        assert len(picks) == 2
        assert len(set(picks)) == 2
        assert all(p in range(10) for p in picks)

    def test_fewer_candidates_than_k(self, stats):
        policy = SelectRandomK(5)
        assert policy.select([1, 2], stats, np.random.default_rng(0)) == [1, 2]

    def test_varies_with_rng(self, stats):
        policy = SelectRandomK(3)
        rng = np.random.default_rng(1)
        draws = {tuple(policy.select(list(range(20)), stats, rng)) for _ in range(20)}
        assert len(draws) > 1

    def test_invalid_k(self):
        with pytest.raises(FrameworkError):
            SelectRandomK(0)


class TestSelectTopKBenefit:
    def test_prefers_high_benefit(self, stats):
        policy = SelectTopKBenefit(2)
        picks = policy.select([10, 11, 12], stats, np.random.default_rng(0))
        assert picks == [12, 10]

    def test_unknown_candidates_rank_last_by_id(self, stats):
        policy = SelectTopKBenefit(3)
        picks = policy.select([99, 12, 98, 11], stats, np.random.default_rng(0))
        assert picks == [12, 11, 98]

    def test_cold_start_degrades_to_first_k(self):
        policy = SelectTopKBenefit(2)
        picks = policy.select([7, 3, 5], StatsTable(), np.random.default_rng(0))
        assert picks == [3, 5]  # ties -> ascending id

    def test_invalid_k(self):
        with pytest.raises(FrameworkError):
            SelectTopKBenefit(0)


def test_policies_satisfy_protocol():
    for p in (SelectAll(), SelectRandomK(1), SelectTopKBenefit(1)):
        assert isinstance(p, SelectionPolicy)


class TestTTL:
    def test_forwards_below_limit(self):
        t = TTLTermination(4)
        assert t.should_forward(1, 0)
        assert t.should_forward(3, 100)
        assert not t.should_forward(4, 0)

    def test_invalid(self):
        with pytest.raises(FrameworkError):
            TTLTermination(0)

    def test_is_termination(self):
        assert isinstance(TTLTermination(1), Termination)


class TestMaxResults:
    def test_stops_on_results(self):
        t = MaxResultsTermination(max_hops=5, max_results=1)
        assert t.should_forward(1, 0)
        assert not t.should_forward(1, 1)

    def test_stops_on_hops(self):
        t = MaxResultsTermination(max_hops=2, max_results=100)
        assert not t.should_forward(2, 0)

    def test_invalid(self):
        with pytest.raises(FrameworkError):
            MaxResultsTermination(0, 1)
        with pytest.raises(FrameworkError):
            MaxResultsTermination(1, 0)


class TestIterativeDeepening:
    def test_cycles_increasing(self):
        sched = IterativeDeepening((1, 2, 4))
        depths = [c.max_hops for c in sched.cycles()]
        assert depths == [1, 2, 4]
        assert sched.max_depth == 4

    def test_validation(self):
        with pytest.raises(FrameworkError):
            IterativeDeepening(())
        with pytest.raises(FrameworkError):
            IterativeDeepening((0, 2))
        with pytest.raises(FrameworkError):
            IterativeDeepening((2, 2))
        with pytest.raises(FrameworkError):
            IterativeDeepening((3, 1))
