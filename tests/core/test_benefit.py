"""Tests for benefit functions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.benefit import (
    BandwidthShareBenefit,
    BenefitFunction,
    HitCountBenefit,
    LatencyBenefit,
    ProcessingTimeBenefit,
    ResultObservation,
)
from repro.errors import FrameworkError


def obs(**overrides):
    defaults = dict(
        initiator=0,
        responder=1,
        link_kbps=1500.0,
        n_results=3,
        delay=0.4,
        hops=2,
        size=1.0,
        processing_time=0.0,
    )
    defaults.update(overrides)
    return ResultObservation(**defaults)


class TestBandwidthShare:
    def test_paper_formula(self):
        assert BandwidthShareBenefit()(obs(link_kbps=56.0, n_results=4)) == 14.0

    def test_single_result_full_credit(self):
        assert BandwidthShareBenefit()(obs(link_kbps=1500.0, n_results=1)) == 1500.0

    def test_large_result_lists_diluted(self):
        b = BandwidthShareBenefit()
        assert b(obs(n_results=10)) < b(obs(n_results=2))

    def test_faster_links_preferred(self):
        b = BandwidthShareBenefit()
        assert b(obs(link_kbps=10000.0)) > b(obs(link_kbps=56.0))

    def test_zero_results_rejected(self):
        with pytest.raises(FrameworkError):
            BandwidthShareBenefit()(obs(n_results=0))

    @given(
        st.floats(min_value=1.0, max_value=1e5),
        st.integers(min_value=1, max_value=1000),
    )
    def test_property_non_negative(self, kbps, r):
        assert BandwidthShareBenefit()(obs(link_kbps=kbps, n_results=r)) >= 0


class TestHitCount:
    def test_always_one(self):
        b = HitCountBenefit()
        assert b(obs()) == 1.0
        assert b(obs(link_kbps=1.0, n_results=500)) == 1.0


class TestLatency:
    def test_lower_delay_higher_benefit(self):
        b = LatencyBenefit()
        assert b(obs(delay=0.1)) > b(obs(delay=1.0))

    def test_zero_delay_finite(self):
        assert LatencyBenefit()(obs(delay=0.0)) == pytest.approx(1000.0)

    def test_invalid_epsilon(self):
        with pytest.raises(FrameworkError):
            LatencyBenefit(epsilon=0)


class TestProcessingTime:
    def test_saved_time(self):
        b = ProcessingTimeBenefit()
        assert b(obs(processing_time=2.0, delay=0.5)) == 1.5

    def test_floored_at_zero(self):
        b = ProcessingTimeBenefit()
        assert b(obs(processing_time=0.1, delay=0.5)) == 0.0


def test_all_satisfy_protocol():
    for fn in (
        BandwidthShareBenefit(),
        HitCountBenefit(),
        LatencyBenefit(),
        ProcessingTimeBenefit(),
    ):
        assert isinstance(fn, BenefitFunction)
