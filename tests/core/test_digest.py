"""Tests for Bloom digests and digest-guided selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.digest import (
    BloomDigest,
    DigestDirectory,
    SelectByDigest,
    digest_similarity,
)
from repro.core.statistics import StatsTable
from repro.errors import FrameworkError


class TestBloomDigest:
    def test_no_false_negatives(self):
        digest = BloomDigest(capacity=100)
        items = list(range(0, 1000, 10))
        digest.update(items)
        assert all(digest.might_hold(i) for i in items)

    def test_false_positive_rate_near_target(self):
        digest = BloomDigest(capacity=500, fp_rate=0.02)
        digest.update(range(500))
        probes = range(10_000, 30_000)
        fp = sum(digest.might_hold(i) for i in probes) / len(range(10_000, 30_000))
        assert fp < 0.06  # target 0.02 with generous headroom

    def test_empty_digest_rejects_everything(self):
        digest = BloomDigest(capacity=10)
        assert not digest.might_hold(3)
        assert digest.fill_ratio == 0.0
        assert digest.estimated_fp_rate() == 0.0

    def test_sizing_scales_with_capacity(self):
        small = BloomDigest(capacity=10)
        large = BloomDigest(capacity=1000)
        assert large.n_bits > small.n_bits

    def test_from_items(self):
        digest = BloomDigest.from_items([1, 2, 3])
        assert digest.might_hold(2)
        assert digest.n_added == 3

    def test_from_items_empty(self):
        digest = BloomDigest.from_items([])
        assert not digest.might_hold(0)

    def test_invalid_params(self):
        with pytest.raises(FrameworkError):
            BloomDigest(capacity=0)
        with pytest.raises(FrameworkError):
            BloomDigest(capacity=10, fp_rate=0.0)
        with pytest.raises(FrameworkError):
            BloomDigest(capacity=10, fp_rate=1.0)

    def test_geometry_mismatch_rejected(self):
        a = BloomDigest(capacity=10)
        b = BloomDigest(capacity=1000)
        with pytest.raises(FrameworkError):
            a.intersection_bits(b)

    @given(st.sets(st.integers(0, 10_000), max_size=60))
    @settings(max_examples=30)
    def test_property_membership_complete(self, items):
        digest = BloomDigest(capacity=max(1, len(items)))
        digest.update(items)
        assert all(digest.might_hold(i) for i in items)


class TestDigestSimilarity:
    def test_identical_holdings_high(self):
        items = list(range(200))
        a = BloomDigest(capacity=200)
        b = BloomDigest(capacity=200)
        a.update(items)
        b.update(items)
        assert digest_similarity(a, b) == pytest.approx(1.0)

    def test_disjoint_holdings_low(self):
        a = BloomDigest(capacity=200)
        b = BloomDigest(capacity=200)
        a.update(range(0, 200))
        b.update(range(10_000, 10_200))
        assert digest_similarity(a, b) < 0.2

    def test_partial_overlap_in_between(self):
        a = BloomDigest(capacity=200)
        b = BloomDigest(capacity=200)
        a.update(range(0, 200))
        b.update(range(100, 300))
        sim = digest_similarity(a, b)
        assert 0.1 < sim < 0.9

    def test_empty_digests_zero(self):
        a = BloomDigest(capacity=10)
        b = BloomDigest(capacity=10)
        assert digest_similarity(a, b) == 0.0


class TestDigestDirectory:
    def test_publish_and_get(self):
        directory = DigestDirectory(max_age=10)
        digest = BloomDigest.from_items([1])
        directory.publish(5, digest)
        assert directory.get_fresh(5) is digest
        assert len(directory) == 1

    def test_staleness(self):
        directory = DigestDirectory(max_age=5)
        directory.publish(5, BloomDigest.from_items([1]))
        directory.tick(5)
        assert directory.get_fresh(5) is not None
        directory.tick(1)
        assert directory.get_fresh(5) is None

    def test_forget(self):
        directory = DigestDirectory()
        directory.publish(5, BloomDigest.from_items([1]))
        directory.forget(5)
        assert directory.get_fresh(5) is None
        directory.forget(5)  # idempotent

    def test_invalid_max_age(self):
        with pytest.raises(FrameworkError):
            DigestDirectory(max_age=0)


class TestSelectByDigest:
    def make_directory(self, holdings: dict[int, list[int]]):
        directory = DigestDirectory()
        for node, items in holdings.items():
            directory.publish(node, BloomDigest.from_items(items, fp_rate=0.001))
        return directory

    def test_claiming_neighbors_first(self):
        directory = self.make_directory({1: [7], 2: [9], 3: [7]})
        policy = SelectByDigest(directory, item=7)
        picks = policy.select([1, 2, 3], StatsTable(), np.random.default_rng(0))
        assert picks == [1, 3]  # 2's digest rejects item 7 -> never contacted

    def test_unknown_nodes_appended(self):
        directory = self.make_directory({1: [7]})
        policy = SelectByDigest(directory, item=7)
        picks = policy.select([1, 9], StatsTable(), np.random.default_rng(0))
        assert picks == [1, 9]

    def test_fallback_probes_unknowns_only(self):
        directory = self.make_directory({1: [5], 2: [6]})
        policy = SelectByDigest(directory, item=7, fallback_k=2)
        picks = policy.select([1, 2, 8, 9, 10], StatsTable(), np.random.default_rng(0))
        assert set(picks) <= {8, 9, 10}
        assert len(picks) == 2

    def test_nobody_claims_no_unknowns(self):
        directory = self.make_directory({1: [5]})
        policy = SelectByDigest(directory, item=7)
        assert policy.select([1], StatsTable(), np.random.default_rng(0)) == []

    def test_invalid_fallback(self):
        with pytest.raises(FrameworkError):
            SelectByDigest(DigestDirectory(), item=1, fallback_k=-1)

    def test_guided_search_end_to_end(self):
        """Digest guidance cuts messages vs flooding with zero recall loss."""
        from repro.core.search import generic_search
        from repro.core.termination import TTLTermination
        from tests.core.test_search import FakeNetwork

        edges = {0: [1, 2, 3, 4], 1: [0], 2: [0], 3: [0], 4: [0]}
        holdings = {1: set(), 2: set(), 3: {7}, 4: set()}
        net = FakeNetwork(edges, holdings)
        directory = self.make_directory({n: sorted(holdings[n]) or [999] for n in (1, 2, 3, 4)})

        flood = generic_search(net, 0, 7, TTLTermination(1))
        guided = generic_search(
            net, 0, 7, TTLTermination(1),
            selection=SelectByDigest(directory, item=7, fallback_k=0),
        )
        assert guided.hit and flood.hit
        assert guided.messages < flood.messages
