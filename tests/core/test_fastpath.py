"""FloodFastPath must be bit-identical to the reference generic_search.

The fast path is allowed to be clever (epoch marks, span-compressed trace,
inverted holder index) but not to be different: for any topology, holder
placement, hop limit and initiator it must return the same QueryOutcome the
oracle returns — same results in the same order, same floats, same message
and contact counts. These tests drive both implementations over randomized
worlds, with the edge cases the BFS rewrite is most likely to get wrong:
isolated initiators, dense graphs full of duplicate deliveries, directed
rows, holders at every level, and hop limit 1.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fastpath import AdjacencySnapshot, FloodFastPath
from repro.core.neighbors import NeighborList
from repro.core.search import generic_search
from repro.core.termination import TTLTermination


class _ListView:
    """A NetworkView over the exact structures the fast path consumes."""

    def __init__(self, rows, holdings, delays):
        self.rows = rows
        self.holdings = holdings
        self.delays = delays

    def holds(self, node, item):
        return item in self.holdings[node]

    def neighbors(self, node):
        return self.rows[node]

    def link_delay(self, a, b):
        return self.delays[a][b]


def _build_world(n_nodes, edge_prob, holder_prob, n_items, seed, symmetric):
    """A random world backed by real NeighborLists (live rows)."""
    rng = np.random.default_rng(seed)
    lists = [NeighborList() for _ in range(n_nodes)]
    for a in range(n_nodes):
        for b in range(n_nodes):
            if a == b or b in lists[a]:
                continue
            if rng.random() < edge_prob:
                lists[a].add(b)
                if symmetric and a not in lists[b]:
                    lists[b].add(a)
    holdings = [
        {item for item in range(n_items) if rng.random() < holder_prob}
        for _ in range(n_nodes)
    ]
    delays = rng.uniform(0.01, 0.3, size=(n_nodes, n_nodes))
    delays = ((delays + delays.T) / 2.0).tolist()
    snapshot = AdjacencySnapshot(lists)
    return lists, snapshot, holdings, delays


world_params = st.tuples(
    st.integers(2, 18),        # n_nodes
    st.floats(0.0, 0.7),       # edge_prob (0.0 => isolated nodes, empty rows)
    st.floats(0.0, 0.6),       # holder_prob
    st.integers(1, 4),         # n_items
    st.integers(0, 10_000),    # world seed
    st.booleans(),             # symmetric links?
)


@settings(max_examples=120, deadline=None)
@given(
    params=world_params,
    max_hops=st.integers(1, 5),
    initiator_pick=st.integers(0, 10_000),
    item_pick=st.integers(0, 10_000),
)
def test_fastpath_matches_reference(params, max_hops, initiator_pick, item_pick):
    n_nodes, edge_prob, holder_prob, n_items, seed, symmetric = params
    _, snapshot, holdings, delays = _build_world(
        n_nodes, edge_prob, holder_prob, n_items, seed, symmetric
    )
    fastpath = FloodFastPath(snapshot, holdings, delays, max_hops)
    view = _ListView(snapshot.rows, holdings, delays)
    initiator = initiator_pick % n_nodes
    item = item_pick % n_items

    fast = fastpath.search(initiator, item, issued_at=3.5)
    reference = generic_search(
        view, initiator, item, TTLTermination(max_hops), issued_at=3.5
    )
    assert fast == reference


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), max_hops=st.integers(1, 4))
def test_fastpath_dense_duplicate_heavy(seed, max_hops):
    """Near-complete symmetric graphs maximize duplicate deliveries."""
    _, snapshot, holdings, delays = _build_world(
        n_nodes=8, edge_prob=0.9, holder_prob=0.3, n_items=2,
        seed=seed, symmetric=True,
    )
    fastpath = FloodFastPath(snapshot, holdings, delays, max_hops)
    view = _ListView(snapshot.rows, holdings, delays)
    for initiator in range(8):
        for item in range(2):
            assert fastpath.search(initiator, item) == generic_search(
                view, initiator, item, TTLTermination(max_hops)
            )


def test_empty_neighborhood():
    """An isolated initiator: zero messages, zero contacts, no results."""
    _, snapshot, holdings, delays = _build_world(3, 0.0, 1.0, 1, 0, True)
    fastpath = FloodFastPath(snapshot, holdings, delays, 2)
    outcome = fastpath.search(0, 0)
    assert outcome.messages == 0
    assert outcome.nodes_contacted == 0
    assert outcome.results == ()
    assert outcome == generic_search(
        _ListView(snapshot.rows, holdings, delays), 0, 0, TTLTermination(2)
    )


def test_live_rows_track_mutation():
    """The snapshot sees NeighborList mutations with no rebuild."""
    lists = [NeighborList() for _ in range(3)]
    holdings = [set(), set(), {7}]
    delays = [[0.0, 0.1, 0.2], [0.1, 0.0, 0.3], [0.2, 0.3, 0.0]]
    snapshot = AdjacencySnapshot(lists)
    fastpath = FloodFastPath(snapshot, holdings, delays, 2)
    assert fastpath.search(0, 7).messages == 0

    lists[0].add(1)
    lists[1].add(0)
    lists[1].add(2)
    lists[2].add(1)
    outcome = fastpath.search(0, 7)
    assert [r.responder for r in outcome.results] == [2]
    assert outcome.results[0].delay == pytest.approx(2.0 * (0.1 + 0.3))

    lists[1].remove(2)
    lists[2].remove(1)
    assert fastpath.search(0, 7).results == ()


def test_add_holder_updates_index():
    """add_holder mirrors a library mutation into the inverted index."""
    lists = [NeighborList(), NeighborList()]
    lists[0].add(1)
    lists[1].add(0)
    holdings = [set(), set()]
    delays = [[0.0, 0.5], [0.5, 0.0]]
    fastpath = FloodFastPath(AdjacencySnapshot(lists), holdings, delays, 2)
    assert not fastpath.search(0, 3).hit

    holdings[1].add(3)
    fastpath.add_holder(1, 3)
    outcome = fastpath.search(0, 3)
    assert outcome.hit and outcome.results[0].responder == 1
    # Idempotent, like set.add.
    fastpath.add_holder(1, 3)
    assert fastpath.search(0, 3) == outcome._replace()


def test_constructor_validation():
    lists = [NeighborList() for _ in range(2)]
    snapshot = AdjacencySnapshot(lists)
    delays = [[0.0, 0.1], [0.1, 0.0]]
    with pytest.raises(ValueError, match="same node population"):
        FloodFastPath(snapshot, [set()], delays, 2)
    with pytest.raises(ValueError, match="same node population"):
        FloodFastPath(snapshot, [set(), set()], [[0.0]], 2)
    with pytest.raises(ValueError, match="max_hops"):
        FloodFastPath(snapshot, [set(), set()], delays, 0)


def test_explicit_max_hops_overrides_default():
    """A line: 0-1-2-3. TTL controls the reachable depth exactly."""
    lists = [NeighborList() for _ in range(4)]
    for a, b in ((0, 1), (1, 2), (2, 3)):
        lists[a].add(b)
        lists[b].add(a)
    holdings = [set(), set(), set(), {1}]
    delays = [[0.05 * (a != b) for b in range(4)] for a in range(4)]
    fastpath = FloodFastPath(AdjacencySnapshot(lists), holdings, delays, 2)
    assert not fastpath.search(0, 1).hit
    assert fastpath.search(0, 1, max_hops=3).hit
    view = _ListView([nl.view() for nl in lists], holdings, delays)
    for hops in (1, 2, 3, 4):
        assert fastpath.search(0, 1, max_hops=hops) == generic_search(
            view, 0, 1, TTLTermination(hops)
        )
