"""The all-to-all relation case (Section 3.1's first situation).

"The list of outgoing and incoming neighbors for each node contain all N
repositories. Such a case happens, for instance, when the repositories are
organized in a single multicast group ... applicable only for small N."
"""


from repro.core import (
    AllToAllRelation,
    MaxResultsTermination,
    RepositoryNetwork,
    TTLTermination,
)
from repro.core.consistency import check_consistent
from repro.core.relations import AllToAllRelation as Relation


def multicast_network(n=6):
    net = RepositoryNetwork(AllToAllRelation(), termination=TTLTermination(1))
    for node in range(n):
        net.add_repository(items=[node + 100])
    for a in range(n):
        for b in range(n):
            if a != b:
                net.connect(a, b)
    return net


class TestAllToAll:
    def test_full_mesh_consistent(self):
        net = multicast_network()
        assert check_consistent(net.states())
        for node in range(6):
            assert len(net.repo(node).state.outgoing) == 5

    def test_every_item_found_in_one_hop(self):
        net = multicast_network()
        for target in range(1, 6):
            outcome = net.search(0, target + 100)
            assert outcome.hit
            assert outcome.results[0].hops == 1
            assert outcome.results[0].responder == target

    def test_one_query_costs_n_minus_one_messages(self):
        net = multicast_network()
        outcome = net.search(0, 105)
        assert outcome.messages == 5  # broadcast to the whole group

    def test_first_result_termination_limits_broadcast(self):
        # With send-to-all the initiator still blasts everyone at hop 1; the
        # MaxResults condition stops forwarding at every node processed
        # *after* the result arrived. Item 101 lives at node 1, the first
        # hop-1 node processed, so nodes 2-5 see results_so_far=1 and keep
        # quiet: exactly the initial broadcast of 5 messages.
        net = multicast_network()
        outcome = net.search(
            0, 101, termination=MaxResultsTermination(max_hops=3, max_results=1)
        )
        assert outcome.hit
        assert outcome.messages == 5

    def test_without_result_cap_nonholders_reforward(self):
        # Plain TTL: every hop-1 non-holder re-forwards to its 4 other
        # neighbors (all duplicates, all counted): 5 + 4x4 = 21.
        net = multicast_network()
        outcome = net.search(0, 105, termination=TTLTermination(2))
        assert outcome.messages == 21

    def test_helper_full_mesh(self):
        states = {i: Relation().make_state(i) for i in range(4)}
        Relation.full_mesh(states)
        assert check_consistent(states)
        assert all(len(s.outgoing) == 3 for s in states.values())
