"""Tests for the generic exploration engine (Algo 2)."""

import pytest

from repro.core.exploration import generic_explore
from repro.core.termination import TTLTermination
from tests.core.test_search import FakeNetwork, chain


class TestReports:
    def test_every_reached_node_reports(self):
        net = chain(4, holders=[2])
        out = generic_explore(net, 0, items=[7], termination=TTLTermination(3))
        assert {r.node for r in out.reports} == {1, 2, 3}

    def test_coverage_reflects_holdings(self):
        net = FakeNetwork({0: [1, 2], 1: [0], 2: [0]}, {1: {7, 8}, 2: {8}})
        out = generic_explore(net, 0, items=[7, 8, 9], termination=TTLTermination(1))
        by_node = {r.node: r for r in out.reports}
        assert by_node[1].held_items == frozenset({7, 8})
        assert by_node[1].coverage == 2
        assert by_node[2].held_items == frozenset({8})

    def test_zero_coverage_still_reported(self):
        net = chain(2, holders=[])
        out = generic_explore(net, 0, items=[7], termination=TTLTermination(1))
        assert len(out.reports) == 1
        assert out.reports[0].coverage == 0

    def test_holders_keep_propagating(self):
        # Unlike search, a holder does not short-circuit exploration.
        net = chain(4, holders=[1, 2, 3])
        out = generic_explore(net, 0, items=[7], termination=TTLTermination(3))
        assert {r.node for r in out.reports} == {1, 2, 3}

    def test_delay_and_hops_recorded(self):
        net = chain(4, holders=[])
        out = generic_explore(net, 0, items=[7], termination=TTLTermination(2))
        by_node = {r.node: r for r in out.reports}
        assert by_node[1].hops == 1
        assert by_node[1].delay == pytest.approx(0.2)
        assert by_node[2].hops == 2
        assert by_node[2].delay == pytest.approx(0.4)

    def test_message_counting_matches_flood(self):
        net = chain(4, holders=[])
        out = generic_explore(net, 0, items=[7], termination=TTLTermination(3))
        assert out.messages == 3
        assert out.nodes_contacted == 3

    def test_ttl_respected(self):
        net = chain(6, holders=[])
        out = generic_explore(net, 0, items=[7], termination=TTLTermination(2))
        assert {r.node for r in out.reports} == {1, 2}

    def test_empty_item_set(self):
        net = chain(3, holders=[1])
        out = generic_explore(net, 0, items=[], termination=TTLTermination(2))
        assert all(r.coverage == 0 for r in out.reports)

    def test_duplicate_suppression(self):
        edges = {0: [1, 2], 1: [0, 3], 2: [0, 3], 3: [1, 2]}
        net = FakeNetwork(edges, {})
        out = generic_explore(net, 0, items=[7], termination=TTLTermination(2))
        nodes = [r.node for r in out.reports]
        assert len(nodes) == len(set(nodes))
        assert out.messages == 4  # duplicate delivery to 3 still counted
