"""Tests for neighbor lists."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.neighbors import NeighborList, NeighborState
from repro.errors import NeighborListError


class TestNeighborList:
    def test_add_remove_contains(self):
        nl = NeighborList(capacity=3)
        nl.add(5)
        assert 5 in nl
        assert len(nl) == 1
        nl.remove(5)
        assert 5 not in nl
        assert len(nl) == 0

    def test_insertion_order_preserved(self):
        nl = NeighborList()
        for n in (3, 1, 2):
            nl.add(n)
        assert nl.as_tuple() == (3, 1, 2)
        assert list(nl) == [3, 1, 2]

    def test_duplicate_rejected(self):
        nl = NeighborList()
        nl.add(1)
        with pytest.raises(NeighborListError):
            nl.add(1)

    def test_capacity_enforced(self):
        nl = NeighborList(capacity=2)
        nl.add(1)
        nl.add(2)
        assert nl.is_full
        assert nl.free_slots == 0
        with pytest.raises(NeighborListError):
            nl.add(3)

    def test_unbounded_capacity(self):
        nl = NeighborList()
        for n in range(1000):
            nl.add(n)
        assert not nl.is_full
        assert nl.free_slots == math.inf

    def test_remove_absent_rejected(self):
        with pytest.raises(NeighborListError):
            NeighborList().remove(7)

    def test_discard(self):
        nl = NeighborList()
        nl.add(1)
        assert nl.discard(1) is True
        assert nl.discard(1) is False

    def test_clear(self):
        nl = NeighborList(capacity=4)
        nl.add(1)
        nl.add(2)
        nl.clear()
        assert len(nl) == 0
        nl.add(1)  # capacity available again

    def test_invalid_capacity(self):
        with pytest.raises(NeighborListError):
            NeighborList(capacity=-1)
        with pytest.raises(NeighborListError):
            NeighborList(capacity=2.5)

    def test_zero_capacity_always_full(self):
        nl = NeighborList(capacity=0)
        assert nl.is_full
        with pytest.raises(NeighborListError):
            nl.add(1)

    @given(st.lists(st.integers(0, 50), unique=True, max_size=20))
    def test_property_membership_matches_order(self, nodes):
        nl = NeighborList()
        for n in nodes:
            nl.add(n)
        assert list(nl) == nodes
        for n in nodes:
            assert n in nl
        assert len(nl) == len(nodes)


class TestView:
    def test_view_reflects_live_state(self):
        nl = NeighborList()
        view = nl.view()
        assert view == []
        nl.add(4)
        nl.add(9)
        assert view == [4, 9]
        nl.remove(4)
        assert view == [9]
        nl.discard(9)
        nl.discard(9)  # absent: no-op
        assert view == []

    def test_view_identity_stable_across_mutation(self):
        """The same list object survives add/remove/discard/clear.

        The flood fast path captures these objects once per snapshot; if any
        mutation rebound the internal list, the snapshot would silently go
        stale (the bug class the AsymmetricFastEngine rebind guards against).
        """
        nl = NeighborList(capacity=4)
        view = nl.view()
        for n in (1, 2, 3):
            nl.add(n)
        assert nl.view() is view
        nl.remove(2)
        nl.discard(3)
        assert nl.view() is view
        nl.clear()
        assert nl.view() is view
        assert view == []

    def test_view_preserves_insertion_order(self):
        nl = NeighborList()
        for n in (7, 2, 5):
            nl.add(n)
        assert nl.view() == [7, 2, 5]
        assert tuple(nl.view()) == nl.as_tuple()


class TestNeighborState:
    def test_capacities(self):
        s = NeighborState(0, out_capacity=4, in_capacity=math.inf)
        assert s.outgoing.capacity == 4
        assert s.incoming.capacity == math.inf
        assert s.node == 0

    def test_lists_independent(self):
        s = NeighborState(0, 2, 2)
        s.outgoing.add(1)
        assert 1 not in s.incoming
