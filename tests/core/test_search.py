"""Tests for the generic search engine (Algo 1)."""

import numpy as np
import pytest

from repro.core.search import NetworkView, generic_search, iterative_deepening_search
from repro.core.selection import SelectRandomK, SelectTopKBenefit
from repro.core.statistics import StatsTable
from repro.core.termination import MaxResultsTermination, TTLTermination


class FakeNetwork:
    """Explicit-topology network for exact assertions."""

    def __init__(self, edges, holdings, delay=0.1):
        self._edges = edges  # node -> list of neighbors
        self._holdings = holdings  # node -> set of items
        self._delay = delay

    def holds(self, node, item):
        return item in self._holdings.get(node, set())

    def neighbors(self, node):
        return self._edges.get(node, [])

    def link_delay(self, a, b):
        return self._delay


def chain(n, holders, **kw):
    """0 -> 1 -> ... -> n-1 chain with bidirectional edges."""
    edges = {i: [] for i in range(n)}
    for i in range(n - 1):
        edges[i].append(i + 1)
        edges[i + 1].append(i)
    return FakeNetwork(edges, {h: {7} for h in holders}, **kw)


class TestBasics:
    def test_satisfies_protocol(self):
        assert isinstance(chain(2, []), NetworkView)

    def test_direct_neighbor_hit(self):
        net = chain(3, holders=[1])
        out = generic_search(net, 0, 7, TTLTermination(2))
        assert out.hit
        assert out.result_count == 1
        assert out.results[0].responder == 1
        assert out.results[0].hops == 1
        assert out.results[0].delay == pytest.approx(0.2)  # round trip

    def test_miss_when_beyond_ttl(self):
        net = chain(5, holders=[4])
        out = generic_search(net, 0, 7, TTLTermination(2))
        assert not out.hit
        assert out.first_result_delay is None

    def test_hit_at_exact_ttl(self):
        net = chain(5, holders=[2])
        out = generic_search(net, 0, 7, TTLTermination(2))
        assert out.hit
        assert out.results[0].hops == 2
        assert out.results[0].delay == pytest.approx(0.4)

    def test_messages_counted_along_chain(self):
        # 0->1 (miss, forward) 1->2 (miss, forward) 2->3: TTL 3, no holder.
        net = chain(4, holders=[])
        out = generic_search(net, 0, 7, TTLTermination(3))
        assert out.messages == 3
        assert out.nodes_contacted == 3

    def test_holder_does_not_forward_by_default(self):
        net = chain(4, holders=[1])
        out = generic_search(net, 0, 7, TTLTermination(3))
        # 1 replies and stops: nodes 2,3 never contacted.
        assert out.nodes_contacted == 1
        assert out.messages == 1

    def test_forward_from_holders_extends_search(self):
        net = chain(4, holders=[1, 2])
        out = generic_search(net, 0, 7, TTLTermination(3), forward_from_holders=True)
        assert out.result_count == 2
        assert out.nodes_contacted == 3

    def test_issued_at_passthrough(self):
        out = generic_search(chain(2, []), 0, 7, TTLTermination(1), issued_at=123.0)
        assert out.issued_at == 123.0


class TestDuplicateSuppression:
    def test_diamond_topology(self):
        # 0 -> {1, 2} -> 3: 3 receives two copies, processes one.
        edges = {0: [1, 2], 1: [0, 3], 2: [0, 3], 3: [1, 2]}
        net = FakeNetwork(edges, {3: {7}})
        out = generic_search(net, 0, 7, TTLTermination(2))
        # Messages: 0->1, 0->2, 1->3, 2->3 = 4 (both copies count).
        assert out.messages == 4
        assert out.result_count == 1  # but only one reply
        assert out.nodes_contacted == 3

    def test_cycle_terminates(self):
        edges = {0: [1], 1: [2], 2: [0]}
        net = FakeNetwork(edges, {})
        out = generic_search(net, 0, 7, TTLTermination(50))
        assert out.messages <= 3

    def test_no_bounce_back_to_sender(self):
        # 0 <-> 1 only: 1 must not return the query to 0.
        net = chain(2, holders=[])
        out = generic_search(net, 0, 7, TTLTermination(10))
        assert out.messages == 1


class TestMultipleResults:
    def test_all_holders_within_ttl_reply(self):
        edges = {0: [1, 2, 3], 1: [0], 2: [0], 3: [0]}
        net = FakeNetwork(edges, {1: {7}, 2: {7}, 3: {9}})
        out = generic_search(net, 0, 7, TTLTermination(1))
        assert out.result_count == 2
        assert {r.responder for r in out.results} == {1, 2}

    def test_first_result_delay_is_nearest(self):
        class VariableDelay(FakeNetwork):
            def link_delay(self, a, b):
                return 0.1 if {a, b} == {0, 1} else 0.5

        edges = {0: [1, 2], 1: [0], 2: [0]}
        net = VariableDelay(edges, {1: {7}, 2: {7}})
        out = generic_search(net, 0, 7, TTLTermination(1))
        assert out.first_result_delay == pytest.approx(0.2)


class TestTerminationPolicies:
    def test_max_results_stops_early(self):
        net = chain(6, holders=[1, 3, 5])
        out = generic_search(net, 0, 7, MaxResultsTermination(max_hops=5, max_results=1))
        assert out.result_count == 1

    def test_randomized_selection_bounded_fanout(self):
        edges = {0: list(range(1, 9))}
        for i in range(1, 9):
            edges[i] = [0]
        net = FakeNetwork(edges, {})
        out = generic_search(
            net, 0, 7, TTLTermination(1),
            selection=SelectRandomK(3), rng=np.random.default_rng(0),
        )
        assert out.messages == 3

    def test_directed_bft_prefers_beneficial(self):
        edges = {0: [1, 2], 1: [0], 2: [0]}
        net = FakeNetwork(edges, {2: {7}})
        stats = StatsTable()
        stats.add_benefit(2, 10.0)
        out = generic_search(
            net, 0, 7, TTLTermination(1),
            selection=SelectTopKBenefit(1), stats=stats,
        )
        assert out.hit
        assert out.messages == 1
        assert out.results[0].responder == 2


class TestIterativeDeepening:
    def test_stops_at_first_successful_depth(self):
        net = chain(6, holders=[1])
        out = iterative_deepening_search(net, 0, 7, depths=(1, 2, 4))
        assert out.hit
        assert out.messages == 1  # found in the first (depth-1) cycle

    def test_accumulates_messages_across_cycles(self):
        net = chain(6, holders=[3])
        shallow = generic_search(net, 0, 7, TTLTermination(3))
        out = iterative_deepening_search(net, 0, 7, depths=(1, 2, 3))
        assert out.hit
        # cycles: depth1 (1 msg) + depth2 (2 msgs) + depth3 (3 msgs)
        assert out.messages == 1 + 2 + shallow.messages

    def test_exhausted_schedule_reports_miss(self):
        net = chain(6, holders=[5])
        out = iterative_deepening_search(net, 0, 7, depths=(1, 2))
        assert not out.hit


class TestNoNeighbors:
    def test_isolated_initiator(self):
        net = FakeNetwork({0: []}, {1: {7}})
        out = generic_search(net, 0, 7, TTLTermination(3))
        assert not out.hit
        assert out.messages == 0
        assert out.nodes_contacted == 0
