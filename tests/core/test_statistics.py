"""Tests for per-node statistics tables."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.statistics import StatsTable


class TestAccumulation:
    def test_add_and_query(self):
        s = StatsTable()
        s.add_benefit(1, 2.0)
        s.add_benefit(1, 3.0)
        assert s.benefit_of(1) == 5.0
        assert s.encounters_of(1) == 2

    def test_unknown_node_zero(self):
        s = StatsTable()
        assert s.benefit_of(99) == 0.0
        assert s.encounters_of(99) == 0

    def test_negative_benefit_rejected(self):
        with pytest.raises(ValueError):
            StatsTable().add_benefit(1, -0.5)

    def test_known_nodes_sorted(self):
        s = StatsTable()
        for n in (5, 2, 9):
            s.add_benefit(n, 1.0)
        assert s.known_nodes() == (2, 5, 9)

    def test_len(self):
        s = StatsTable()
        s.add_benefit(1, 1.0)
        s.add_benefit(2, 1.0)
        assert len(s) == 2


class TestReset:
    def test_reset_forgets_one_node(self):
        s = StatsTable()
        s.add_benefit(1, 5.0)
        s.add_benefit(2, 3.0)
        s.reset(1)
        assert s.benefit_of(1) == 0.0
        assert s.benefit_of(2) == 3.0
        assert s.known_nodes() == (2,)

    def test_reset_unknown_is_noop(self):
        StatsTable().reset(42)

    def test_clear(self):
        s = StatsTable()
        s.add_benefit(1, 1.0)
        s.clear()
        assert len(s) == 0


class TestDecay:
    def test_decay_scales(self):
        s = StatsTable()
        s.add_benefit(1, 10.0)
        s.decay(0.5)
        assert s.benefit_of(1) == 5.0

    def test_decay_bounds(self):
        with pytest.raises(ValueError):
            StatsTable().decay(1.5)
        with pytest.raises(ValueError):
            StatsTable().decay(-0.1)


class TestRanking:
    def test_ranked_by_benefit_desc(self):
        s = StatsTable()
        s.add_benefit(1, 1.0)
        s.add_benefit(2, 5.0)
        s.add_benefit(3, 3.0)
        assert s.ranked() == [2, 3, 1]

    def test_ties_break_by_ascending_id(self):
        s = StatsTable()
        s.add_benefit(9, 2.0)
        s.add_benefit(4, 2.0)
        s.add_benefit(7, 2.0)
        assert s.ranked() == [4, 7, 9]

    def test_exclude(self):
        s = StatsTable()
        s.add_benefit(1, 5.0)
        s.add_benefit(2, 4.0)
        assert s.ranked(exclude=[1]) == [2]

    def test_eligible_filter(self):
        s = StatsTable()
        s.add_benefit(1, 5.0)
        s.add_benefit(2, 4.0)
        s.add_benefit(3, 3.0)
        assert s.ranked(eligible=lambda n: n % 2 == 0) == [2]

    def test_top_k(self):
        s = StatsTable()
        for n, b in [(1, 5.0), (2, 4.0), (3, 3.0)]:
            s.add_benefit(n, b)
        assert s.top_k(2) == [1, 2]
        assert s.top_k(0) == []
        assert s.top_k(10) == [1, 2, 3]

    def test_top_k_negative_rejected(self):
        with pytest.raises(ValueError):
            StatsTable().top_k(-1)

    @given(
        st.dictionaries(
            st.integers(0, 30), st.floats(min_value=0.0, max_value=1e6), max_size=15
        )
    )
    def test_property_ranking_sorted_and_deterministic(self, benefits):
        s = StatsTable()
        for n, b in benefits.items():
            s.add_benefit(n, b)
        ranked = s.ranked()
        values = [s.benefit_of(n) for n in ranked]
        assert values == sorted(values, reverse=True)
        assert ranked == s.ranked()  # stable across calls
        assert len(ranked) == len(benefits)


class TestIncrementalRankingOracle:
    """The dirty-candidate cache must be invisible: after any mutation
    sequence, ranked()/top_k()/iter_ranked_runs() equal a from-scratch sort
    by the total (-benefit, id) key."""

    # op: 0 = add_benefit, 1 = reset, 2 = decay, 3 = consult (repairs the
    # cache mid-sequence, exercising the filter + insort path), 4 = clear.
    # Benefits come from a tiny grid so exact ties — and decay-induced tie
    # collapses — happen constantly.
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 4),
                st.integers(0, 12),
                st.sampled_from([0.0, 0.25, 0.5, 1.0, 1.0, 2.0]),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_matches_brute_force_after_any_mutation_sequence(self, ops):
        s = StatsTable()
        for op, node, value in ops:
            if op == 0:
                s.add_benefit(node, value)
            elif op == 1:
                s.reset(node)
            elif op == 2:
                s.decay(value if value <= 1.0 else 0.5)
            elif op == 3:
                s.ranked()
            else:
                s.clear()
        expected = sorted(s.known_nodes(), key=lambda n: (-s.benefit_of(n), n))
        assert s.ranked() == expected
        for k in (0, 1, 3, len(expected) + 2):
            assert s.top_k(k) == expected[:k]
        flattened = []
        run_benefits = []
        for benefit, run in s.iter_ranked_runs():
            run_benefits.append(benefit)
            assert run == sorted(run)
            assert all(s.benefit_of(n) == benefit for n in run)
            flattened.extend(run)
        assert flattened == expected
        assert run_benefits == sorted(set(run_benefits), reverse=True)

    def test_decay_collapsed_ties_still_ranked_by_id(self):
        s = StatsTable()
        s.add_benefit(7, 4.0)
        s.add_benefit(2, 2.0)
        s.ranked()  # cache the order [7, 2]
        s.decay(0.0)  # both collapse to 0.0 without dirtying anything
        assert s.ranked() == [2, 7]

    def test_knows(self):
        s = StatsTable()
        assert not s.knows(1)
        s.add_benefit(1, 1.0)
        assert s.knows(1)
        s.reset(1)
        assert not s.knows(1)
