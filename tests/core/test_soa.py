"""The struct-of-arrays slabs vs the object-per-peer layout, state for state.

``NeighborTable`` must be a dense array of ``NeighborList`` semantics —
insertion order, duplicate/overflow rejection, left-shifting removal — and
``PeerArrays``' views must give every consumer the exact ``PeerState``
interface. The hypothesis oracle drives a full :class:`GnutellaProtocol`
over both layouts with identical operation streams (login, logoff, random
fill, reconfigure, benefit credit, evict) and asserts the decoded state —
neighbor rows *in order*, degrees, online flags, counters, and benefit
ledgers — never diverges.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.neighbors import NeighborList
from repro.core.soa import NeighborTable, PeerArrays, SlotNeighborList
from repro.errors import NeighborListError
from repro.gnutella.bootstrap import BootstrapServer
from repro.gnutella.metrics import SimulationMetrics
from repro.gnutella.node import PeerState
from repro.gnutella.protocol import GnutellaProtocol


class TestNeighborTable:
    def test_add_preserves_insertion_order(self):
        table = NeighborTable(4, 3)
        table.add(0, 2)
        table.add(0, 1)
        table.add(0, 3)
        assert table.row(0) == [2, 1, 3]
        assert table.row_tuple(0) == (2, 1, 3)
        assert table.degree(0) == 3

    def test_rejects_duplicates_and_overflow(self):
        table = NeighborTable(4, 2)
        table.add(0, 1)
        with pytest.raises(NeighborListError, match="already a neighbor"):
            table.add(0, 1)
        table.add(0, 2)
        with pytest.raises(NeighborListError, match="full"):
            table.add(0, 3)

    def test_remove_left_shifts(self):
        table = NeighborTable(2, 4)
        for other in (5, 6, 7, 8):
            table.add(1, other)
        table.remove(1, 6)
        assert table.row(1) == [5, 7, 8]
        with pytest.raises(NeighborListError, match="not a neighbor"):
            table.remove(1, 6)

    def test_discard_and_clear_row(self):
        table = NeighborTable(2, 4)
        table.add(0, 1)
        assert table.discard(0, 1) is True
        assert table.discard(0, 1) is False
        table.add(0, 1)
        table.clear_row(0)
        assert table.row(0) == []
        assert not table.contains(0, 1)

    def test_rows_are_independent(self):
        table = NeighborTable(3, 2)
        table.add(0, 1)
        table.add(1, 0)
        table.add(2, 0)
        assert table.row(0) == [1]
        assert table.row(1) == [0]
        assert table.row(2) == [0]
        assert len(table) == 3


class TestSlotNeighborList:
    def test_matches_neighbor_list_interface(self):
        table = NeighborTable(3, 2)
        row = SlotNeighborList(table, 0)
        assert row.capacity == 2
        assert not row.is_full and row.free_slots == 2
        row.add(2)
        assert 2 in row and len(row) == 1 and list(row) == [2]
        row.add(1)
        assert row.is_full and row.free_slots == 0
        assert row.as_tuple() == (2, 1)
        assert row.view() == [2, 1]
        row.remove(2)
        assert row.as_tuple() == (1,)
        assert row.discard(1) is True and row.discard(1) is False
        row.add(1)
        row.clear()
        assert len(row) == 0

    def test_view_is_a_copy(self):
        table = NeighborTable(2, 2)
        row = SlotNeighborList(table, 0)
        row.add(1)
        snapshot = row.view()
        row.add(0)  # mutate after the copy
        assert snapshot == [1]


class TestSoAPeerViews:
    def test_scalar_fields_land_in_arrays(self):
        arrays = PeerArrays(3, 2)
        peers = arrays.peers()
        peer = peers[1]
        assert not peer.online
        peer.online = True
        assert arrays.online[1] == 1
        peer.sessions += 1
        peer.query_epoch += 2
        peer.requests_since_update = 5
        assert arrays.sessions[1] == 1
        assert arrays.query_epoch[1] == 2
        assert arrays.requests_since_update[1] == 5
        assert peer.stats is arrays.stats[1]

    def test_neighbor_views_land_in_tables(self):
        arrays = PeerArrays(3, 2)
        peer = arrays.peers()[0]
        assert peer.has_free_slot and peer.degree == 0
        peer.neighbors.outgoing.add(2)
        peer.neighbors.incoming.add(2)
        assert arrays.out.row(0) == [2]
        assert arrays.incoming.row(0) == [2]
        assert peer.degree == 1

    def test_peer_list_exposes_arrays(self):
        arrays = PeerArrays(2, 2)
        peers = arrays.peers()
        assert peers.arrays is arrays
        assert len(peers) == 2
        assert [p.node for p in peers] == [0, 1]


# ---------------------------------------------------------------------------
# Hypothesis oracle: protocol over slabs == protocol over objects
# ---------------------------------------------------------------------------
N_PEERS = 10
SLOTS = 3


def _build(soa: bool):
    if soa:
        arrays = PeerArrays(N_PEERS, SLOTS)
        peers = arrays.peers()
    else:
        peers = [PeerState(i, SLOTS) for i in range(N_PEERS)]
    bootstrap = BootstrapServer()
    metrics = SimulationMetrics(horizon=3600.0)
    protocol = GnutellaProtocol(peers, bootstrap, metrics, SLOTS)
    return peers, bootstrap, protocol


def _apply(ops, seed, peers, bootstrap, protocol):
    rng = np.random.default_rng(seed)
    for op, node, arg in ops:
        peer = peers[node]
        if op == 0:  # toggle churn
            if peer.online:
                peer.online = False
                peer.query_epoch += 1
                bootstrap.leave(node)
                protocol.sever_all(node)
            else:
                peer.online = True
                peer.sessions += 1
                bootstrap.join(node)
        elif op == 1 and peer.online:
            protocol.fill_random(node, rng)
        elif op == 2 and peer.online:
            protocol.reconfigure(node, max_swaps=1, swap_margin=0.0)
        elif op == 3 and arg != node:  # credit benefit toward a future invite
            peer.stats.add_benefit(arg, float((node + arg) % 5) + 0.25)
            peer.requests_since_update += 1
        elif op == 4 and peer.online:  # direct eviction of a current neighbor
            out = peer.neighbors.outgoing.as_tuple()
            if out:
                protocol.evict(node, out[arg % len(out)])


def _decode(peers):
    """Layout-independent snapshot of everything the slabs store."""
    return [
        {
            "online": peer.online,
            "sessions": peer.sessions,
            "epoch": peer.query_epoch,
            "requests": peer.requests_since_update,
            "out": peer.neighbors.outgoing.as_tuple(),
            "in": peer.neighbors.incoming.as_tuple(),
            "benefit": {
                n: peer.stats.benefit_of(n) for n in peer.stats.known_nodes()
            },
            "encounters": {
                n: peer.stats.encounters_of(n) for n in peer.stats.known_nodes()
            },
            "ranked": peer.stats.ranked(),
        }
        for peer in peers
    ]


@given(
    st.integers(0, 2**31 - 1),
    st.lists(
        st.tuples(
            st.integers(0, 4),
            st.integers(0, N_PEERS - 1),
            st.integers(0, N_PEERS - 1),
        ),
        min_size=5,
        max_size=100,
    ),
)
@settings(max_examples=40, deadline=None)
def test_soa_protocol_state_matches_object_oracle(seed, ops):
    """Same op stream, same RNG seed: both layouts decode to identical state."""
    ref_peers, ref_bootstrap, ref_protocol = _build(soa=False)
    soa_peers, soa_bootstrap, soa_protocol = _build(soa=True)
    _apply(ops, seed, ref_peers, ref_bootstrap, ref_protocol)
    _apply(ops, seed, soa_peers, soa_bootstrap, soa_protocol)
    assert _decode(soa_peers) == _decode(ref_peers)


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 7)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_neighbor_table_row_matches_neighbor_list(ops):
    """One slab row driven op-for-op against a real NeighborList."""
    table = NeighborTable(1, SLOTS)
    slab_row = SlotNeighborList(table, 0)
    reference = NeighborList(capacity=SLOTS)
    for op, other in ops:
        if op == 0:
            slab_err = ref_err = None
            try:
                slab_row.add(other)
            except NeighborListError as exc:
                slab_err = str(exc)
            try:
                reference.add(other)
            except NeighborListError as exc:
                ref_err = str(exc)
            assert (slab_err is None) == (ref_err is None)
        elif op == 1:
            assert slab_row.discard(other) == reference.discard(other)
        elif op == 2:
            assert (other in slab_row) == (other in reference)
        else:
            assert slab_row.as_tuple() == reference.as_tuple()
    assert slab_row.as_tuple() == reference.as_tuple()
    assert len(slab_row) == len(reference)
    assert slab_row.is_full == reference.is_full
