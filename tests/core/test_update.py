"""Tests for the neighbor-update decision functions (Algos 3-4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.neighbors import NeighborState
from repro.core.statistics import StatsTable
from repro.core.update import (
    EvictAction,
    InviteAction,
    asymmetric_update,
    plan_reconfiguration,
    plan_reconfiguration_full_scan,
    process_invitation,
    reconfiguration_actions,
)
from repro.errors import FrameworkError


def stats_of(**benefits):
    s = StatsTable()
    for node, benefit in benefits.items():
        s.add_benefit(int(node.lstrip("n")), benefit)
    return s


class TestPlanReconfiguration:
    def test_selects_top_k_by_benefit(self):
        stats = stats_of(n1=5.0, n2=9.0, n3=1.0)
        assert plan_reconfiguration([], stats, k=2) == [2, 1]

    def test_current_neighbors_compete(self):
        # Current neighbor with low benefit loses to a better-known outsider.
        stats = stats_of(n1=1.0, n9=10.0)
        assert plan_reconfiguration([1], stats, k=1) == [9]

    def test_zero_benefit_current_kept_over_unknown(self):
        # A neighbor with no stats still beats an unknown node (tie broken
        # toward the incumbent).
        stats = stats_of(n9=0.0)
        stats.add_benefit(9, 0.0)
        assert plan_reconfiguration([1], stats, k=1) == [1]

    def test_exclude_self(self):
        stats = stats_of(n0=100.0, n1=5.0)
        assert plan_reconfiguration([], stats, k=2, exclude=(0,)) == [1]

    def test_eligible_filter_drops_offline_candidates(self):
        stats = stats_of(n1=5.0, n2=9.0)
        plan = plan_reconfiguration([], stats, k=2, eligible=lambda n: n != 2)
        assert plan == [1]

    def test_offline_current_neighbor_retained(self):
        # eligible() applies to candidates, but incumbents stay plannable
        # (the caller decides separately when a link must drop).
        stats = stats_of(n1=5.0)
        plan = plan_reconfiguration([1], stats, k=1, eligible=lambda n: False)
        assert plan == [1]

    def test_k_zero(self):
        assert plan_reconfiguration([1], stats_of(n1=5.0), k=0) == []

    def test_negative_k_rejected(self):
        with pytest.raises(FrameworkError):
            plan_reconfiguration([], StatsTable(), k=-1)

    def test_deterministic_tie_breaking(self):
        stats = stats_of(n5=2.0, n3=2.0, n8=2.0)
        assert plan_reconfiguration([], stats, k=3) == [3, 5, 8]


# Benefit values drawn from a tiny grid so ties — including the exact-tie
# runs the incremental ranking must re-sort by id — occur constantly.
_LEDGERS = st.dictionaries(
    st.integers(0, 15), st.sampled_from([0.0, 0.5, 1.0, 1.0, 2.0]), max_size=12
)


class TestIncrementalPlanMatchesFullScan:
    """The early-exit ranked walk is an optimization, never a policy change."""

    @given(
        _LEDGERS,
        st.lists(st.integers(0, 15), max_size=4, unique=True),
        st.integers(0, 6),
        st.lists(st.integers(0, 15), max_size=3, unique=True),
        st.sets(st.integers(0, 15)),
    )
    @settings(max_examples=200, deadline=None)
    def test_equivalence_over_arbitrary_ledgers(
        self, ledger, current, k, exclude, offline
    ):
        stats = StatsTable()
        for node, benefit in ledger.items():
            stats.add_benefit(node, benefit)
        eligible = lambda n: n not in offline  # noqa: E731

        def both(*args, **kwargs):
            return (
                plan_reconfiguration(*args, **kwargs),
                plan_reconfiguration_full_scan(*args, **kwargs),
            )

        fast, oracle = both(current, stats, k, exclude=exclude, eligible=eligible)
        assert fast == oracle
        # Repeat after mutations that dirty / reset / decay the cached order.
        for node in current[:2]:
            stats.add_benefit(node, 0.5)
        if ledger:
            stats.reset(next(iter(ledger)))
        stats.decay(0.5)
        fast, oracle = both(current, stats, k, exclude=exclude, eligible=eligible)
        assert fast == oracle

    def test_statless_current_neighbors_interleave_with_zero_benefit_peers(self):
        # Nodes 2 and 6 are known at benefit zero; current neighbors 4 and 5
        # have no stats at all. The shared id tiebreak must interleave them
        # (current-first within the zero run): 2 and 4,5 are current.
        stats = stats_of(n2=0.0, n6=0.0, n9=3.0)
        plan = plan_reconfiguration([4, 5, 2], stats, k=4)
        assert plan == [9, 2, 4, 5]
        assert plan == plan_reconfiguration_full_scan([4, 5, 2], stats, k=4)


class TestReconfigurationActions:
    def test_invites_and_evictions(self):
        invites, evicts = reconfiguration_actions(0, current=[1, 2], desired=[2, 3])
        assert invites == [InviteAction(0, 3)]
        assert evicts == [EvictAction(0, 1)]

    def test_no_change_no_actions(self):
        invites, evicts = reconfiguration_actions(0, [1, 2], [2, 1])
        assert invites == [] and evicts == []

    def test_full_replacement(self):
        invites, evicts = reconfiguration_actions(0, [1], [2])
        assert invites == [InviteAction(0, 2)]
        assert evicts == [EvictAction(0, 1)]


class TestAsymmetricUpdate:
    def test_swaps_to_most_beneficial(self):
        state = NeighborState(0, out_capacity=2, in_capacity=float("inf"))
        state.outgoing.add(1)
        state.outgoing.add(2)
        stats = stats_of(n1=1.0, n2=5.0, n3=9.0)
        added, evicted = asymmetric_update(state, stats)
        assert added == [3]
        assert evicted == [1]

    def test_no_change_when_already_optimal(self):
        state = NeighborState(0, out_capacity=2, in_capacity=float("inf"))
        state.outgoing.add(1)
        state.outgoing.add(2)
        stats = stats_of(n1=9.0, n2=5.0, n3=1.0)
        added, evicted = asymmetric_update(state, stats)
        assert added == [] and evicted == []

    def test_unbounded_capacity_rejected(self):
        state = NeighborState(0)
        with pytest.raises(FrameworkError):
            asymmetric_update(state, StatsTable())

    def test_eligibility_respected(self):
        state = NeighborState(0, out_capacity=1, in_capacity=float("inf"))
        stats = stats_of(n1=1.0, n2=9.0)
        added, _ = asymmetric_update(state, stats, eligible=lambda n: n != 2)
        assert added == [1]


class TestProcessInvitation:
    def make_state(self, node, neighbors, capacity=4):
        s = NeighborState(node, capacity, capacity)
        for n in neighbors:
            s.outgoing.add(n)
            s.incoming.add(n)
        return s

    def test_free_slot_accepts_without_eviction(self):
        state = self.make_state(5, [1, 2])
        decision = process_invitation(state, inviter=9, stats=StatsTable())
        assert decision.accepted and decision.evicted is None

    def test_full_always_accept_evicts_least_beneficial(self):
        state = self.make_state(5, [1, 2, 3, 4])
        stats = stats_of(n1=4.0, n2=1.0, n3=3.0, n4=2.0)
        decision = process_invitation(state, inviter=9, stats=stats)
        assert decision.accepted
        assert decision.evicted == 2

    def test_full_benefit_gated_refuses_unknown_inviter(self):
        state = self.make_state(5, [1, 2])
        # capacity 2 -> full; inviter 9 has no stats, worst neighbor has 1.0.
        state = self.make_state(5, [1, 2], capacity=2)
        stats = stats_of(n1=2.0, n2=1.0)
        decision = process_invitation(state, 9, stats, always_accept=False)
        assert not decision.accepted

    def test_full_benefit_gated_accepts_better_inviter(self):
        state = self.make_state(5, [1, 2], capacity=2)
        stats = stats_of(n1=2.0, n2=1.0, n9=5.0)
        decision = process_invitation(state, 9, stats, always_accept=False)
        assert decision.accepted
        assert decision.evicted == 2

    def test_self_invitation_rejected(self):
        state = self.make_state(5, [])
        with pytest.raises(FrameworkError):
            process_invitation(state, 5, StatsTable())

    def test_existing_neighbor_invitation_is_noop_accept(self):
        state = self.make_state(5, [1, 2], capacity=2)
        decision = process_invitation(state, 1, StatsTable())
        assert decision.accepted and decision.evicted is None

    def test_eviction_tie_breaks_toward_newer_node(self):
        state = self.make_state(5, [1, 2], capacity=2)
        decision = process_invitation(state, 9, StatsTable())
        # Both have zero benefit; the larger id (2) is evicted.
        assert decision.evicted == 2
