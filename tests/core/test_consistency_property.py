"""Property tests: the consistency predicates agree with brute-force oracles.

Random neighbor states (including out-edges to nodes missing from the
snapshot, and deliberately asymmetric Out/In lists) are generated with
hypothesis; :func:`state_inconsistencies` and :func:`symmetric_violations`
must agree with straight-from-the-definition oracles (Section 3.1).
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistency import (
    check_consistent,
    state_inconsistencies,
    symmetric_violations,
)
from repro.core.neighbors import NeighborState
from repro.types import NodeId

#: Node ids may exceed the snapshot's population: a recorded out-edge to a
#: node with no state is a dangling (inconsistent) edge by definition.
_NODE_IDS = st.integers(min_value=0, max_value=11)


@st.composite
def neighbor_states(draw) -> dict[NodeId, NeighborState]:
    n_nodes = draw(st.integers(min_value=0, max_value=8))
    states: dict[NodeId, NeighborState] = {}
    for node in range(n_nodes):
        state = NeighborState(NodeId(node), math.inf, math.inf)
        outgoing = draw(st.sets(_NODE_IDS.filter(lambda x: x != node), max_size=5))
        incoming = draw(st.sets(_NODE_IDS.filter(lambda x: x != node), max_size=5))
        for other in sorted(outgoing):
            state.outgoing.add(NodeId(other))
        for other in sorted(incoming):
            state.incoming.add(NodeId(other))
        states[NodeId(node)] = state
    return states


def oracle_inconsistencies(states) -> set[tuple[NodeId, NodeId]]:
    """Literal Section 3.1: all (i, j) with j in Out(i) but i not in In(j)."""
    bad = set()
    for i, state in states.items():
        for j in state.outgoing.as_tuple():
            j_state = states.get(j)
            if j_state is None or i not in j_state.incoming.as_tuple():
                bad.add((i, j))
    return bad


def oracle_symmetric_violations(states) -> set[NodeId]:
    """Nodes whose Out and In differ as sets (symmetric relations forbid it)."""
    return {
        n
        for n, state in states.items()
        if set(state.outgoing.as_tuple()) != set(state.incoming.as_tuple())
    }


@settings(max_examples=200, deadline=None)
@given(states=neighbor_states())
def test_state_inconsistencies_matches_oracle(states):
    reported = state_inconsistencies(states)
    assert len(reported) == len(set(reported)), "no duplicate reports"
    assert set(reported) == oracle_inconsistencies(states)
    assert check_consistent(states) == (not oracle_inconsistencies(states))


@settings(max_examples=200, deadline=None)
@given(states=neighbor_states())
def test_symmetric_violations_matches_oracle(states):
    reported = symmetric_violations(states)
    assert len(reported) == len(set(reported)), "no duplicate reports"
    assert set(reported) == oracle_symmetric_violations(states)


@settings(max_examples=100, deadline=None)
@given(states=neighbor_states())
def test_mutual_completion_restores_consistency(states):
    """Adding the reciprocal in-edge for every reported pair always repairs
    the snapshot — the predicate is exactly the set of missing reciprocals."""
    for i, j in state_inconsistencies(states):
        j_state = states.get(j)
        if j_state is None:
            j_state = NeighborState(j, math.inf, math.inf)
            states[j] = j_state
        if i not in j_state.incoming:
            j_state.incoming.add(i)
    assert check_consistent(states)
