"""Integration tests for RepositoryNetwork: the three mechanisms together."""

import numpy as np
import pytest

from repro.core import (
    HitCountBenefit,
    NodeConfig,
    PureAsymmetricRelation,
    RepositoryNetwork,
    SymmetricRelation,
    TTLTermination,
)
from repro.core.consistency import check_consistent, symmetric_violations
from repro.errors import ConfigurationError, FrameworkError


def ring_network(relation, n=6, items_fn=None):
    net = RepositoryNetwork(relation, termination=TTLTermination(2))
    for i in range(n):
        net.add_repository(items=items_fn(i) if items_fn else [])
    for a in range(n):
        net.connect(a, (a + 1) % n)
    return net


class TestPopulation:
    def test_add_repository_sequential_ids(self):
        net = RepositoryNetwork(SymmetricRelation(2))
        assert net.add_repository() == 0
        assert net.add_repository() == 1

    def test_unknown_node_rejected(self):
        net = RepositoryNetwork(SymmetricRelation(2))
        with pytest.raises(FrameworkError):
            net.repo(5)

    def test_connect_disconnect(self):
        net = RepositoryNetwork(SymmetricRelation(2))
        net.add_repository()
        net.add_repository()
        net.connect(0, 1)
        assert net.neighbors(0) == [1]
        net.disconnect(0, 1)
        assert net.neighbors(0) == []


class TestSearchMechanism:
    def test_local_hit_costs_nothing(self):
        net = RepositoryNetwork(SymmetricRelation(2))
        net.add_repository(items=[7])
        out = net.search(0, 7)
        assert out.hit
        assert out.messages == 0
        assert out.results[0].delay == 0.0

    def test_remote_hit_updates_stats(self):
        net = ring_network(SymmetricRelation(2), items_fn=lambda i: [7] if i == 1 else [])
        out = net.search(0, 7)
        assert out.hit
        assert net.repo(0).stats.benefit_of(1) > 0

    def test_offline_node_cannot_search(self):
        net = ring_network(SymmetricRelation(2))
        net.set_online(0, False)
        with pytest.raises(FrameworkError):
            net.search(0, 7)

    def test_offline_nodes_invisible_to_search(self):
        net = ring_network(SymmetricRelation(2), items_fn=lambda i: [7] if i == 1 else [])
        net.set_online(1, False)
        out = net.search(0, 7)
        assert not out.hit

    def test_request_counter_increments(self):
        net = ring_network(SymmetricRelation(2))
        net.search(0, 7)
        net.search(0, 8)
        assert net.repo(0).requests_since_update == 2


class TestChurn:
    def test_logoff_severs_all_links_consistently(self):
        net = ring_network(SymmetricRelation(2))
        net.set_online(1, False)
        assert net.repo(1).state.outgoing.as_tuple() == ()
        assert 1 not in net.repo(0).state.outgoing
        assert 1 not in net.repo(2).state.outgoing
        assert check_consistent(net.states())
        assert symmetric_violations(net.states()) == []

    def test_logoff_pure_asymmetric(self):
        relation = PureAsymmetricRelation(out_capacity=2)
        net = RepositoryNetwork(relation)
        for _ in range(3):
            net.add_repository()
        net.connect(0, 1)
        net.connect(2, 1)
        net.set_online(1, False)
        assert net.neighbors(0) == []
        assert check_consistent(net.states())

    def test_relogin_starts_fresh(self):
        net = ring_network(SymmetricRelation(2))
        net.set_online(1, False)
        net.set_online(1, True)
        assert net.repo(1).state.outgoing.as_tuple() == ()
        # Nodes 0 and 2 each freed a slot when 1 left; reconnect to one.
        net.connect(1, 0)
        assert net.neighbors(1) == [0]

    def test_idempotent_toggle(self):
        net = ring_network(SymmetricRelation(2))
        net.set_online(0, True)  # already online: no-op
        assert net.neighbors(0) == [1, 5]


class TestSymmetricUpdate:
    def test_adopts_discovered_holder(self):
        # Item 7 lives 2 hops away; after searching, node 0 reconfigures and
        # the holder becomes a direct neighbor.
        net = ring_network(SymmetricRelation(2), items_fn=lambda i: [7] if i == 2 else [])
        out = net.search(0, 7)
        assert out.hit
        net.update_neighbors(0)
        assert 2 in net.repo(0).state.outgoing
        assert 0 in net.repo(2).state.outgoing  # mutual
        assert check_consistent(net.states())
        assert symmetric_violations(net.states()) == []

    def test_second_search_is_cheaper(self):
        net = ring_network(SymmetricRelation(2), items_fn=lambda i: [7] if i == 2 else [])
        first = net.search(0, 7)
        net.update_neighbors(0)
        second = net.search(0, 7)
        assert second.hit
        assert second.results[0].hops == 1
        assert second.first_result_delay < first.first_result_delay

    def test_eviction_resets_evicted_nodes_stats_about_evictor(self):
        net = ring_network(SymmetricRelation(2), items_fn=lambda i: [7] if i == 2 else [])
        # Give node 1 stats about node 0 first.
        net.repo(1).stats.add_benefit(0, 5.0)
        net.search(0, 7)
        # Make node 0 rank 2 above 1 so 1 is evicted; node 0's slots: 1,5.
        net.repo(0).stats.add_benefit(2, 100.0)
        net.repo(0).stats.add_benefit(5, 50.0)
        net.update_neighbors(0)
        assert 1 not in net.repo(0).state.outgoing
        assert net.repo(1).stats.benefit_of(0) == 0.0

    def test_invitee_counter_reset_damps_cascades(self):
        net = ring_network(SymmetricRelation(2), items_fn=lambda i: [7] if i == 2 else [])
        net.repo(2).requests_since_update = 99
        net.search(0, 7)
        net.repo(0).stats.add_benefit(2, 100.0)
        net.update_neighbors(0)
        assert net.repo(2).requests_since_update == 0

    def test_offline_candidates_not_invited(self):
        net = ring_network(SymmetricRelation(2), items_fn=lambda i: [7] if i == 2 else [])
        net.search(0, 7)
        net.set_online(2, False)
        net.update_neighbors(0)
        assert 2 not in net.repo(0).state.outgoing
        assert check_consistent(net.states())

    def test_reconfiguration_counter_reset(self):
        net = ring_network(SymmetricRelation(2))
        net.search(0, 7)
        net.update_neighbors(0)
        assert net.repo(0).requests_since_update == 0
        assert net.reconfigurations == 1


class TestAsymmetricUpdateIntegration:
    def test_unilateral_rewiring(self):
        relation = PureAsymmetricRelation(out_capacity=1)
        net = RepositoryNetwork(relation, termination=TTLTermination(3))
        for i in range(4):
            net.add_repository(items=[7] if i == 3 else [])
        # chain 0 -> 1 -> 2 -> 3
        net.connect(0, 1)
        net.connect(1, 2)
        net.connect(2, 3)
        out = net.search(0, 7)
        assert out.hit
        net.update_neighbors(0)
        assert net.repo(0).state.outgoing.as_tuple() == (3,)
        assert check_consistent(net.states())
        # Node 1 keeps serving its own interests untouched.
        assert net.repo(1).state.outgoing.as_tuple() == (2,)


class TestExplorationMechanism:
    def test_explore_discovers_distant_holder(self):
        relation = PureAsymmetricRelation(out_capacity=1)
        net = RepositoryNetwork(
            relation, termination=TTLTermination(3), benefit=HitCountBenefit()
        )
        for i in range(4):
            net.add_repository(items=[7] if i == 3 else [])
        net.connect(0, 1)
        net.connect(1, 2)
        net.connect(2, 3)
        out = net.explore(0, items=[7])
        assert {r.node for r in out.reports} == {1, 2, 3}
        assert net.repo(0).stats.benefit_of(3) > 0
        assert net.repo(0).stats.benefit_of(1) == 0.0

    def test_offline_node_cannot_explore(self):
        net = ring_network(SymmetricRelation(2))
        net.set_online(0, False)
        with pytest.raises(FrameworkError):
            net.explore(0, items=[7])


class TestNodeConfig:
    def test_defaults(self):
        cfg = NodeConfig()
        assert cfg.neighbor_slots == 4
        assert cfg.reconfiguration_threshold == 2
        assert cfg.always_accept_invitations

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(neighbor_slots=0)
        with pytest.raises(ConfigurationError):
            NodeConfig(reconfiguration_threshold=0)


class TestDeterminism:
    def test_same_seed_same_evolution(self):
        def run(seed):
            rng = np.random.default_rng(seed)
            net = ring_network(
                SymmetricRelation(2),
                items_fn=lambda i: [7, i] if i % 2 else [i],
            )
            net.rng = rng
            for step in range(20):
                node = step % 6
                if net.repo(node).online:
                    net.search(node, 7)
                    if net.repo(node).requests_since_update >= 2:
                        net.update_neighbors(node)
            return net.neighbor_snapshot()

        assert run(3) == run(3)
