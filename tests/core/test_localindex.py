"""Tests for r-hop local indices."""

import pytest

from repro.core.localindex import LocalIndex
from repro.errors import FrameworkError


def ring_neighbors(n):
    return lambda node: [(node + 1) % n, (node - 1) % n]


class TestLocalIndex:
    def test_radius_one_indexes_direct_neighbors(self):
        idx = LocalIndex(owner=0, radius=1)
        items = {1: [7], 4: [9], 2: [8]}
        idx.rebuild(ring_neighbors(5), lambda n: items.get(n, []))
        assert idx.indexed_nodes == frozenset({1, 4})
        assert idx.holders_of(7) == frozenset({1})
        assert idx.holders_of(9) == frozenset({4})
        assert idx.holders_of(8) == frozenset()

    def test_radius_two_reaches_further(self):
        idx = LocalIndex(owner=0, radius=2)
        items = {2: [8]}
        idx.rebuild(ring_neighbors(6), lambda n: items.get(n, []))
        assert 2 in idx.indexed_nodes
        assert idx.holders_of(8) == frozenset({2})

    def test_owner_not_indexed(self):
        idx = LocalIndex(owner=0, radius=2)
        idx.rebuild(ring_neighbors(4), lambda n: [7])
        assert 0 not in idx.indexed_nodes

    def test_knows_holder(self):
        idx = LocalIndex(owner=0, radius=1)
        idx.rebuild(ring_neighbors(3), lambda n: [n * 10])
        assert idx.knows_holder(10)
        assert not idx.knows_holder(99)

    def test_rebuild_reflects_rewiring(self):
        idx = LocalIndex(owner=0, radius=1)
        idx.rebuild(lambda n: [1] if n == 0 else [], lambda n: [7])
        assert idx.holders_of(7) == frozenset({1})
        idx.rebuild(lambda n: [2] if n == 0 else [], lambda n: [7])
        assert idx.holders_of(7) == frozenset({2})
        assert idx.indexed_nodes == frozenset({2})

    def test_forget_node(self):
        idx = LocalIndex(owner=0, radius=1)
        idx.rebuild(lambda n: [1, 2] if n == 0 else [], lambda n: [7])
        idx.forget(1)
        assert idx.holders_of(7) == frozenset({2})
        idx.forget(2)
        assert idx.holders_of(7) == frozenset()
        assert len(idx) == 0

    def test_forget_unknown_is_noop(self):
        LocalIndex(owner=0).forget(99)

    def test_invalid_radius(self):
        with pytest.raises(FrameworkError):
            LocalIndex(owner=0, radius=0)

    def test_shared_holders_multiple_nodes(self):
        idx = LocalIndex(owner=0, radius=1)
        idx.rebuild(lambda n: [1, 2] if n == 0 else [], lambda n: [7])
        assert idx.holders_of(7) == frozenset({1, 2})
