"""Tests for the Section 3.4 invitation-assessment policies.

The paper gives two options for an invitee facing an unknown inviter:
(a) a temporary relationship that becomes permanent only if statistics
accumulate in its favor; (b) assessment from exchanged summarized
information. Both are RepositoryNetwork invitation policies here, alongside
the case study's "always" and Algo 4's "benefit".
"""

import pytest

from repro.core import RepositoryNetwork, SymmetricRelation, TTLTermination
from repro.core.consistency import check_consistent
from repro.errors import FrameworkError


def make_network(policy="always", capacity=2, **kwargs):
    return RepositoryNetwork(
        SymmetricRelation(capacity=capacity),
        termination=TTLTermination(3),
        invitation_policy=policy,
        **kwargs,
    )


def ring(net, n):
    for node in range(n):
        net.connect(node, (node + 1) % n)


class TestPolicyValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(FrameworkError):
            make_network(policy="vibes")

    def test_invalid_trial_searches(self):
        with pytest.raises(FrameworkError):
            make_network(policy="trial", trial_searches=0)

    def test_invalid_summary_threshold(self):
        with pytest.raises(FrameworkError):
            make_network(policy="summary", summary_threshold=1.5)


class TestSummaryPolicy:
    def build(self, threshold):
        # Node 0 searches; node 2 holds the item. Node 2's library overlaps
        # node... the *invitee* is node 2 (full), assessed against inviter 0.
        net = make_network(policy="summary", summary_threshold=threshold)
        net.add_repository(items=[1, 2, 3])          # 0: inviter
        net.add_repository(items=[100])               # 1
        net.add_repository(items=[7, 2, 3])           # 2: target, overlaps 0
        net.add_repository(items=[200])               # 3
        net.add_repository(items=[300])               # 4
        net.add_repository(items=[400])               # 5
        ring(net, 6)
        return net

    def test_similar_inviter_accepted(self):
        net = self.build(threshold=0.2)
        net.search(0, 7)  # discovers node 2 (overlap {2,3} of union 4 = 0.5)
        net.update_neighbors(0)
        assert 2 in net.repo(0).state.outgoing
        assert check_consistent(net.states())

    def test_dissimilar_inviter_refused_when_full(self):
        net = self.build(threshold=0.9)  # 0 and 2 overlap only 0.5
        net.search(0, 7)
        net.update_neighbors(0)
        assert 2 not in net.repo(0).state.outgoing
        assert check_consistent(net.states())

    def test_free_slot_accepts_regardless(self):
        net = self.build(threshold=0.9)
        # Free a slot at node 2 first.
        net.disconnect(2, 3)
        net.search(0, 7)
        net.update_neighbors(0)
        assert 2 in net.repo(0).state.outgoing


class TestTrialPolicy:
    def build(self, trial_searches=3):
        net = make_network(policy="trial", trial_searches=trial_searches)
        # Node 2 holds items 7 (queried once) and nothing else useful;
        # node 0 will invite it after a successful search.
        net.add_repository(items=[50])        # 0
        net.add_repository(items=[100])       # 1
        net.add_repository(items=[7, 8, 9])   # 2
        net.add_repository(items=[200])       # 3
        net.add_repository(items=[300])       # 4
        net.add_repository(items=[400])       # 5
        ring(net, 6)
        return net

    def test_trial_started_on_adoption(self):
        net = self.build()
        net.search(0, 7)
        net.update_neighbors(0)
        assert 2 in net.repo(0).state.outgoing
        assert net.trials_started == 1
        assert 0 in net.repo(2).trials

    def test_unproductive_trial_dropped(self):
        net = self.build(trial_searches=2)
        net.search(0, 7)
        net.update_neighbors(0)
        assert 0 in net.repo(2).trials
        # Node 2 now searches for things node 0 cannot provide.
        net.search(2, 999)
        net.search(2, 998)
        assert net.trials_dropped == 1
        assert 0 not in net.repo(2).state.outgoing
        assert net.repo(2).stats.benefit_of(0) == 0.0
        assert check_consistent(net.states())

    def test_productive_trial_kept(self):
        net = self.build(trial_searches=2)
        net.search(0, 7)
        net.update_neighbors(0)
        # Node 2 searches for item 50, which node 0 (its trial partner)
        # holds: benefit accrues, the relationship becomes permanent.
        net.search(2, 50)
        net.search(2, 50)
        assert net.trials_kept == 1
        assert 0 in net.repo(2).state.outgoing
        assert net.repo(2).trials == {}

    def test_trial_entry_cleared_when_link_lost_early(self):
        net = self.build(trial_searches=5)
        net.search(0, 7)
        net.update_neighbors(0)
        assert 0 in net.repo(2).trials
        net.disconnect(0, 2)  # external event severs the pair mid-trial
        net.search(2, 999)
        assert net.repo(2).trials == {}
        assert net.trials_dropped == 0  # no verdict: the link just vanished


class TestBenefitPolicy:
    def test_unknown_inviter_refused_when_full(self):
        net = make_network(policy="benefit")
        net.add_repository(items=[1])
        net.add_repository(items=[100])
        net.add_repository(items=[7])
        net.add_repository(items=[200])
        net.add_repository(items=[300])
        net.add_repository(items=[400])
        ring(net, 6)
        net.search(0, 7)  # node 2 discovered, but it has no stats about 0
        net.update_neighbors(0)
        assert 2 not in net.repo(0).state.outgoing
        assert check_consistent(net.states())
