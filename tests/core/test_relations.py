"""Tests for relation policies and the consistency invariant under churn."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistency import (
    check_consistent,
    state_inconsistencies,
    symmetric_violations,
)
from repro.core.relations import (
    AllToAllRelation,
    AsymmetricRelation,
    PureAsymmetricRelation,
    RelationPolicy,
    SymmetricRelation,
)
from repro.errors import TopologyError


def make_states(relation, n):
    return {i: relation.make_state(i) for i in range(n)}


class TestAllToAll:
    def test_full_mesh_consistent(self):
        relation = AllToAllRelation()
        states = make_states(relation, 5)
        AllToAllRelation.full_mesh(states)
        assert check_consistent(states)
        for s in states.values():
            assert len(s.outgoing) == 4
            assert len(s.incoming) == 4

    def test_unbounded_capacities(self):
        s = AllToAllRelation().make_state(0)
        assert s.outgoing.capacity == math.inf
        assert s.incoming.capacity == math.inf


class TestPureAsymmetric:
    def test_unilateral_rewiring_stays_consistent(self):
        relation = PureAsymmetricRelation(out_capacity=2)
        states = make_states(relation, 6)
        relation.connect(states[0], states[1])
        relation.connect(states[0], states[2])
        assert check_consistent(states)
        relation.disconnect(states[0], states[1])
        relation.connect(states[0], states[3])
        assert check_consistent(states)

    def test_incoming_never_full(self):
        relation = PureAsymmetricRelation(out_capacity=1)
        states = make_states(relation, 10)
        for i in range(1, 10):
            relation.connect(states[i], states[0])
        assert len(states[0].incoming) == 9

    def test_out_capacity_enforced(self):
        relation = PureAsymmetricRelation(out_capacity=1)
        states = make_states(relation, 3)
        relation.connect(states[0], states[1])
        assert not relation.can_connect(states[0], states[2])
        with pytest.raises(TopologyError):
            relation.connect(states[0], states[2])

    def test_invalid_capacity(self):
        with pytest.raises(TopologyError):
            PureAsymmetricRelation(out_capacity=0)


class TestAsymmetric:
    def test_full_incoming_refuses(self):
        relation = AsymmetricRelation(out_capacity=3, in_capacity=1)
        states = make_states(relation, 3)
        relation.connect(states[0], states[2])
        assert not relation.can_connect(states[1], states[2])
        with pytest.raises(TopologyError):
            relation.connect(states[1], states[2])

    def test_self_loop_rejected(self):
        relation = AsymmetricRelation(2, 2)
        states = make_states(relation, 1)
        assert not relation.can_connect(states[0], states[0])

    def test_duplicate_rejected(self):
        relation = AsymmetricRelation(2, 2)
        states = make_states(relation, 2)
        relation.connect(states[0], states[1])
        assert not relation.can_connect(states[0], states[1])

    def test_disconnect_unknown_rejected(self):
        relation = AsymmetricRelation(2, 2)
        states = make_states(relation, 2)
        with pytest.raises(TopologyError):
            relation.disconnect(states[0], states[1])

    def test_invalid_capacities(self):
        with pytest.raises(TopologyError):
            AsymmetricRelation(0, 1)
        with pytest.raises(TopologyError):
            AsymmetricRelation(1, 0)


class TestSymmetric:
    def test_connect_is_mutual(self):
        relation = SymmetricRelation(capacity=4)
        states = make_states(relation, 2)
        relation.connect(states[0], states[1])
        assert 1 in states[0].outgoing and 1 in states[0].incoming
        assert 0 in states[1].outgoing and 0 in states[1].incoming
        assert check_consistent(states)
        assert symmetric_violations(states) == []

    def test_disconnect_is_mutual(self):
        relation = SymmetricRelation(capacity=4)
        states = make_states(relation, 2)
        relation.connect(states[0], states[1])
        relation.disconnect(states[1], states[0])
        assert len(states[0].outgoing) == 0
        assert len(states[1].outgoing) == 0
        assert check_consistent(states)

    def test_capacity_counts_pairs(self):
        relation = SymmetricRelation(capacity=2)
        states = make_states(relation, 4)
        relation.connect(states[0], states[1])
        relation.connect(states[0], states[2])
        assert not relation.can_connect(states[0], states[3])
        assert not relation.can_connect(states[3], states[0])

    def test_invalid_capacity(self):
        with pytest.raises(TopologyError):
            SymmetricRelation(0)

    def test_policies_satisfy_protocol(self):
        for p in (
            AllToAllRelation(),
            PureAsymmetricRelation(2),
            AsymmetricRelation(2, 2),
            SymmetricRelation(2),
        ):
            assert isinstance(p, RelationPolicy)


class TestConsistencyPropertyUnderChurn:
    """Random connect/disconnect sequences must never break consistency —
    the Section 3.1 invariant that motivates the whole relation machinery."""

    @given(st.integers(0, 2**31 - 1), st.integers(10, 120))
    @settings(max_examples=20, deadline=None)
    def test_symmetric_random_ops(self, seed, n_ops):
        rng = np.random.default_rng(seed)
        relation = SymmetricRelation(capacity=3)
        states = make_states(relation, 8)
        for _ in range(n_ops):
            a, b = rng.integers(8), rng.integers(8)
            sa, sb = states[int(a)], states[int(b)]
            if relation.can_connect(sa, sb):
                relation.connect(sa, sb)
            elif a != b and b in sa.outgoing:
                relation.disconnect(sa, sb)
            assert check_consistent(states)
            assert symmetric_violations(states) == []

    @given(st.integers(0, 2**31 - 1), st.integers(10, 120))
    @settings(max_examples=20, deadline=None)
    def test_pure_asymmetric_random_ops(self, seed, n_ops):
        rng = np.random.default_rng(seed)
        relation = PureAsymmetricRelation(out_capacity=3)
        states = make_states(relation, 8)
        for _ in range(n_ops):
            a, b = int(rng.integers(8)), int(rng.integers(8))
            sa, sb = states[a], states[b]
            if relation.can_connect(sa, sb):
                relation.connect(sa, sb)
            elif a != b and b in sa.outgoing:
                relation.disconnect(sa, sb)
            assert state_inconsistencies(states) == []
