"""Property tests: generic_search invariants over random networks.

Whatever the topology, holdings and TTL, a search must satisfy structural
invariants — these are the guarantees every simulation result rests on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.search import generic_search
from repro.core.selection import SelectRandomK
from repro.core.termination import TTLTermination


class RandomNetwork:
    """A random directed network with random holdings."""

    def __init__(self, n_nodes, edge_prob, holder_prob, delay_scale, seed):
        rng = np.random.default_rng(seed)
        self.edges = {
            u: [v for v in range(n_nodes) if v != u and rng.random() < edge_prob]
            for u in range(n_nodes)
        }
        self.holders = {u for u in range(n_nodes) if rng.random() < holder_prob}
        self._delays = {}
        self._rng = np.random.default_rng(seed + 1)
        self._delay_scale = delay_scale

    def holds(self, node, item):
        return node in self.holders

    def neighbors(self, node):
        return self.edges[node]

    def link_delay(self, a, b):
        key = (min(a, b), max(a, b))
        if key not in self._delays:
            self._delays[key] = self._delay_scale * (0.5 + self._rng.random())
        return self._delays[key]

    def reachable_within(self, source, max_hops):
        seen = {source}
        frontier = [source]
        for _ in range(max_hops):
            nxt = []
            for u in frontier:
                for v in self.edges[u]:
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        seen.discard(source)
        return seen


network_params = st.tuples(
    st.integers(3, 25),                     # n_nodes
    st.floats(0.05, 0.5),                   # edge_prob
    st.floats(0.0, 0.5),                    # holder_prob
    st.integers(1, 5),                      # max_hops
    st.integers(0, 2**31 - 1),              # seed
)


@given(network_params)
@settings(max_examples=60, deadline=None)
def test_search_invariants(params):
    n_nodes, edge_prob, holder_prob, max_hops, seed = params
    net = RandomNetwork(n_nodes, edge_prob, holder_prob, 0.1, seed)
    initiator = 0
    outcome = generic_search(net, initiator, 7, TTLTermination(max_hops))

    # 1. Responders actually hold the item and were reachable within TTL.
    reachable = net.reachable_within(initiator, max_hops)
    for result in outcome.results:
        assert result.responder in net.holders
        assert result.responder in reachable
        assert 1 <= result.hops <= max_hops
        assert result.delay > 0

    # 2. Each responder replies at most once.
    responders = [r.responder for r in outcome.results]
    assert len(responders) == len(set(responders))

    # 3. The initiator never answers its own query.
    assert initiator not in responders

    # 4. Conservation: contacted nodes <= messages (every contact costs at
    #    least one message) and contacted <= reachable set size.
    assert outcome.nodes_contacted <= outcome.messages
    assert outcome.nodes_contacted <= len(reachable)

    # 5. Delay lower bound: a result at hop h travelled >= 2*h minimal links.
    for result in outcome.results:
        assert result.delay >= 2 * result.hops * 0.05 - 1e-9


@given(network_params)
@settings(max_examples=40, deadline=None)
def test_deeper_ttl_never_finds_less(params):
    n_nodes, edge_prob, holder_prob, max_hops, seed = params
    net = RandomNetwork(n_nodes, edge_prob, holder_prob, 0.1, seed)
    shallow = generic_search(net, 0, 7, TTLTermination(max_hops))
    deep = generic_search(net, 0, 7, TTLTermination(max_hops + 2))
    assert deep.result_count >= shallow.result_count
    assert deep.messages >= shallow.messages
    assert {r.responder for r in shallow.results} <= {
        r.responder for r in deep.results
    }


@given(network_params, st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_bounded_selection_is_subset_of_flood(params, k):
    n_nodes, edge_prob, holder_prob, max_hops, seed = params
    net = RandomNetwork(n_nodes, edge_prob, holder_prob, 0.1, seed)
    flood = generic_search(net, 0, 7, TTLTermination(max_hops))
    bounded = generic_search(
        net, 0, 7, TTLTermination(max_hops),
        selection=SelectRandomK(k), rng=np.random.default_rng(seed),
    )
    assert bounded.messages <= flood.messages
    assert bounded.nodes_contacted <= flood.nodes_contacted
    assert {r.responder for r in bounded.results} <= {
        r.responder for r in flood.results
    }


@given(network_params)
@settings(max_examples=40, deadline=None)
def test_search_deterministic(params):
    n_nodes, edge_prob, holder_prob, max_hops, seed = params
    net = RandomNetwork(n_nodes, edge_prob, holder_prob, 0.1, seed)
    a = generic_search(net, 0, 7, TTLTermination(max_hops))
    b = generic_search(net, 0, 7, TTLTermination(max_hops))
    assert a == b
