"""Tests for the shared result types."""

import pytest

from repro.types import DAY, HOUR, QueryOutcome, QueryResult


def make_outcome(results, messages=10, contacted=5):
    return QueryOutcome(
        initiator=0,
        item=7,
        issued_at=100.0,
        results=tuple(results),
        messages=messages,
        nodes_contacted=contacted,
    )


class TestQueryResult:
    def test_fields(self):
        r = QueryResult(responder=3, item=7, hops=2, delay=0.45)
        assert r.responder == 3
        assert r.item == 7
        assert r.hops == 2
        assert r.delay == pytest.approx(0.45)

    def test_frozen(self):
        r = QueryResult(responder=3, item=7, hops=2, delay=0.45)
        with pytest.raises(AttributeError):
            r.hops = 5  # type: ignore[misc]


class TestQueryOutcome:
    def test_miss_has_no_hit(self):
        o = make_outcome([])
        assert not o.hit
        assert o.first_result_delay is None
        assert o.result_count == 0

    def test_hit_and_first_delay_is_minimum(self):
        o = make_outcome(
            [
                QueryResult(1, 7, 2, 0.9),
                QueryResult(2, 7, 1, 0.3),
                QueryResult(3, 7, 3, 1.2),
            ]
        )
        assert o.hit
        assert o.result_count == 3
        assert o.first_result_delay == pytest.approx(0.3)

    def test_message_accounting_passthrough(self):
        o = make_outcome([], messages=42, contacted=17)
        assert o.messages == 42
        assert o.nodes_contacted == 17


def test_time_constants():
    assert HOUR == 3600.0
    assert DAY == 24 * HOUR
