"""Smoke tests: every shipped example must run clean and tell its story.

Examples are documentation that executes; breaking one silently is how
reproduction repos rot. Each runs in a subprocess exactly as a user would
run it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXPECTED_PHRASES = {
    "quickstart.py": ["adaptation cut messages"],
    "music_sharing.py": ["static vs dynamic", "reconfigurations performed"],
    "web_cache.py": ["neighbor hit rate", "+digests"],
    "olap_cache.py": ["warehouse offload", "saved an extra"],
    "strategy_comparison.py": ["directed BFT", "local indices"],
    "convergence.py": ["taste clustering over", "mean neighbor degree"],
    "serve_client.py": ["service mode", "latency p50="],
}


@pytest.mark.parametrize("script", sorted(EXPECTED_PHRASES))
def test_example_runs_and_reports(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr[-2000:]}"
    for phrase in EXPECTED_PHRASES[script]:
        assert phrase in result.stdout, (
            f"{script} output lost its '{phrase}' line:\n{result.stdout[-2000:]}"
        )


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_PHRASES), (
        "examples/ and the smoke-test table drifted apart"
    )
