"""Grid expansion, cross-figure dedup, and figure-level failure isolation."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import SimRequest, preset_config
from repro.orchestrate.grid import (
    FIGURES,
    FigureJob,
    expand_grid,
    grid_tasks,
    plan_figure,
    run_grid,
)

from .conftest import TINY


class TestPlanFigure:
    def test_every_known_figure_plans(self):
        for figure in FIGURES:
            job = plan_figure(figure, "smoke", seed=0, overrides=TINY)
            assert job.figure == figure
            assert job.label == f"{figure}/smoke/seed=0"
            assert len(job.requests) >= 2

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_figure("fig9", "smoke")

    def test_replicate_respects_replicates(self):
        job = plan_figure("replicate", "smoke", seed=3, replicates=4, overrides=TINY)
        # One static + one dynamic request per seed.
        assert len(job.requests) == 8
        assert any("seed=6" in r.key for r in job.requests)
        assert not any("seed=7" in r.key for r in job.requests)


class TestExpandGrid:
    def test_figures_times_seeds(self):
        jobs = expand_grid(("fig1", "fig2"), "smoke", seeds=(0, 1), overrides=TINY)
        assert [job.label for job in jobs] == [
            "fig1/smoke/seed=0",
            "fig2/smoke/seed=0",
            "fig1/smoke/seed=1",
            "fig2/smoke/seed=1",
        ]

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_grid((), "smoke")
        with pytest.raises(ConfigurationError):
            expand_grid(("fig1",), "smoke", seeds=())

    def test_duplicate_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_grid(("fig1", "fig1"), "smoke")


class TestGridTasks:
    def test_cross_figure_dedup(self):
        # Figure 1 is the TTL-2 paired run; Figure 3(a) sweeps TTL 1-4 and
        # therefore contains that exact pair as its hops=2 column. The grid
        # must run 8 unique simulations, not 10.
        jobs = expand_grid(("fig1", "fig3a"), "smoke", overrides=TINY)
        total_requests = sum(len(job.requests) for job in jobs)
        tasks, per_job = grid_tasks(jobs)
        assert total_requests == 10
        assert len(tasks) == 8
        fig1_keys = set(per_job["fig1/smoke/seed=0"].values())
        fig3a_keys = set(per_job["fig3a/smoke/seed=0"].values())
        assert fig1_keys <= fig3a_keys

    def test_full_paper_grid_is_12_tasks(self):
        # fig1 (2) + fig2 (2) + fig3a (8) + fig3b (1+5): fig1 == fig3a's
        # hops=2 column, fig2 == fig3a's hops=4 column, and fig3b's static
        # and T=2 dynamic (the config default) == the fig1 pair -> 12
        # unique simulations, not 18.
        jobs = expand_grid(("fig1", "fig2", "fig3a", "fig3b"), "smoke", overrides=TINY)
        tasks, _ = grid_tasks(jobs)
        assert sum(len(job.requests) for job in jobs) == 18
        assert len(tasks) == 12

    def test_distinct_seeds_share_nothing(self):
        jobs = expand_grid(("fig1",), "smoke", seeds=(0, 1), overrides=TINY)
        tasks, _ = grid_tasks(jobs)
        assert len(tasks) == 4


def failing_job(label="boom/smoke/seed=0"):
    """A figure job whose assembly always explodes."""
    config = preset_config("smoke", seed=0, **TINY).as_static()

    def assemble(results):
        raise ValueError("assembly exploded")

    return FigureJob(
        figure="boom",
        label=label,
        requests=(SimRequest("static", config),),
        assemble=assemble,
        print_report=lambda result: None,
    )


class TestRunGrid:
    def test_assembles_each_figure(self):
        jobs = expand_grid(("fig1",), "smoke", overrides=TINY)
        outcome = run_grid(jobs)
        assert not outcome.failed
        (figure,) = outcome.figures
        assert figure.error is None
        assert figure.result.dynamic_hits.sum() > 0
        assert len(figure.keys) == 2
        assert outcome.run.executed == 2

    def test_bad_simulation_breaks_only_its_figures(self):
        config = preset_config("smoke", seed=0, **TINY).as_static()
        bad = FigureJob(
            figure="bad",
            label="bad/smoke/seed=0",
            requests=(SimRequest("static", config, engine="bogus"),),
            assemble=lambda results: "assembled",
            print_report=lambda result: None,
        )
        good = plan_figure("fig1", "smoke", overrides=TINY)
        outcome = run_grid((bad, good), on_error="record")
        assert outcome.failed
        bad_outcome, good_outcome = outcome.figures
        assert bad_outcome.result is None
        assert "bogus" in bad_outcome.error
        assert good_outcome.error is None
        assert good_outcome.result is not None

    def test_assembly_failure_recorded(self):
        outcome = run_grid((failing_job(),), on_error="record")
        assert outcome.failed
        assert "assembly exploded" in outcome.figures[0].error

    def test_assembly_failure_raises_when_asked(self):
        with pytest.raises(ValueError):
            run_grid((failing_job(),), on_error="raise")
