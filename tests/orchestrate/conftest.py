"""Shared scaffolding for the orchestration tests: a tiny, fast world."""

import pytest

from repro.experiments.common import preset_config
from repro.types import HOUR

#: Overrides shrinking the smoke preset to sub-second simulations.
TINY = {"n_users": 60, "n_items": 3000, "horizon": 4 * HOUR}

#: The same overrides as CLI --set arguments.
TINY_ARGS = [
    "--set", "n_users=60",
    "--set", "n_items=3000",
    "--set", f"horizon={float(4 * HOUR)}",
]


@pytest.fixture()
def tiny_config():
    """One tiny static configuration (smoke preset shrunk further)."""
    return preset_config("smoke", seed=0, **TINY).as_static()
