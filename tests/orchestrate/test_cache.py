"""Content addressing and the on-disk result cache."""

import pickle

import pytest

from repro.gnutella.simulation import run_simulation
from repro.orchestrate.cache import ResultCache, code_fingerprint, task_key

from .conftest import TINY


class TestTaskKey:
    def test_deterministic(self, tiny_config):
        assert task_key(tiny_config) == task_key(tiny_config)

    def test_sensitive_to_seed(self, tiny_config):
        import dataclasses

        other = dataclasses.replace(tiny_config, seed=tiny_config.seed + 1)
        assert task_key(tiny_config) != task_key(other)

    def test_sensitive_to_any_config_field(self, tiny_config):
        import dataclasses

        other = dataclasses.replace(tiny_config, queries_per_hour=9.5)
        assert task_key(tiny_config) != task_key(other)

    def test_sensitive_to_engine(self, tiny_config):
        assert task_key(tiny_config, "fast") != task_key(tiny_config, "detailed")

    def test_sensitive_to_code_fingerprint(self, tiny_config):
        a = task_key(tiny_config, fingerprint="aaaa")
        b = task_key(tiny_config, fingerprint="bbbb")
        assert a != b
        # And the default fingerprint is the real one.
        assert task_key(tiny_config) == task_key(
            tiny_config, fingerprint=code_fingerprint()
        )

    def test_shape(self, tiny_config):
        key = task_key(tiny_config)
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")


class TestCodeFingerprint:
    def test_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()

    def test_hex_digest(self):
        fp = code_fingerprint()
        assert len(fp) == 64
        assert set(fp) <= set("0123456789abcdef")


@pytest.fixture(scope="module")
def tiny_result():
    """One real simulation result to round-trip through the cache."""
    from repro.experiments.common import preset_config

    return run_simulation(preset_config("smoke", seed=0, **TINY).as_static())


class TestResultCache:
    def test_roundtrip(self, tmp_path, tiny_result):
        cache = ResultCache(tmp_path / "cache")
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        assert key not in cache
        cache.put(key, tiny_result, {"note": "test"})
        assert key in cache
        assert len(cache) == 1
        got = cache.get(key)
        assert got is not None
        from repro.orchestrate.pool import result_digest

        assert got.scheme == tiny_result.scheme
        assert result_digest(got) == result_digest(tiny_result)

    def test_sidecar_written(self, tmp_path, tiny_result):
        cache = ResultCache(tmp_path)
        key = "cd" + "1" * 62
        cache.put(key, tiny_result, {"engine": "fast", "seed": 0})
        sidecar = tmp_path / key[:2] / f"{key}.json"
        assert sidecar.is_file()
        assert '"engine"' in sidecar.read_text()

    def test_corrupt_entry_is_a_miss(self, tmp_path, tiny_result):
        cache = ResultCache(tmp_path)
        key = "ef" + "2" * 62
        cache.put(key, tiny_result, {})
        entry = tmp_path / key[:2] / f"{key}.pkl"
        entry.write_bytes(b"not a pickle at all")
        assert cache.get(key) is None

    def test_wrong_type_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "01" + "3" * 62
        entry = tmp_path / key[:2] / f"{key}.pkl"
        entry.parent.mkdir(parents=True)
        entry.write_bytes(pickle.dumps({"not": "a result"}))
        assert cache.get(key) is None

    def test_sharded_layout(self, tmp_path, tiny_result):
        cache = ResultCache(tmp_path)
        key = "7f" + "4" * 62
        cache.put(key, tiny_result, {})
        assert (tmp_path / "7f" / f"{key}.pkl").is_file()


class TestCacheStats:
    """Hit/miss/put tallies surfaced in the manifest and progress line."""

    def test_counts_follow_the_lookup_lifecycle(self, tmp_path, tiny_result):
        cache = ResultCache(tmp_path)
        key = "ab" + "5" * 62
        assert cache.stats() == {"lookups": 0, "hits": 0, "misses": 0, "puts": 0}
        assert cache.get(key) is None  # cold miss
        cache.put(key, tiny_result, {})
        assert cache.get(key) is not None  # hit
        assert cache.stats() == {"lookups": 2, "hits": 1, "misses": 1, "puts": 1}

    def test_corrupt_entry_counts_as_miss(self, tmp_path, tiny_result):
        cache = ResultCache(tmp_path)
        key = "cd" + "6" * 62
        cache.put(key, tiny_result, {})
        (tmp_path / key[:2] / f"{key}.pkl").write_bytes(b"garbage")
        assert cache.get(key) is None
        assert cache.stats()["misses"] == 1

    def test_manifest_carries_runtime_stats_and_stable_view_strips_them(
        self, tmp_path, tiny_result
    ):
        from repro.orchestrate.manifest import build_manifest, stable_view

        cache = ResultCache(tmp_path)
        key = "ef" + "7" * 62
        cache.get(key)
        cache.put(key, tiny_result, {})
        manifest = build_manifest(
            grid={"preset": "smoke"},
            jobs=1,
            records=[],
            cache_dir=str(tmp_path),
            wall_s=0.1,
            cache_stats=cache.stats(),
        )
        assert manifest["cache"]["runtime"] == {
            "lookups": 1,
            "hits": 0,
            "misses": 1,
            "puts": 1,
        }
        assert "runtime" not in stable_view(manifest)["cache"]

    def test_manifest_without_stats_has_null_runtime(self):
        from repro.orchestrate.manifest import build_manifest

        manifest = build_manifest(
            grid={}, jobs=1, records=[], cache_dir=None, wall_s=0.0
        )
        assert manifest["cache"]["runtime"] is None
