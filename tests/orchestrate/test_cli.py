"""The repro-orchestrate CLI: argument parsing and end-to-end smoke."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.orchestrate.cli import (
    CACHE_DIR_ENV,
    default_cache_dir,
    main,
    parse_figures,
    parse_overrides,
    parse_seeds,
)

from .conftest import TINY_ARGS


class TestParseFigures:
    def test_all_excludes_replicate(self):
        assert parse_figures("all") == ("fig1", "fig2", "fig3a", "fig3b")

    def test_comma_list(self):
        assert parse_figures("fig1, fig3b") == ("fig1", "fig3b")

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_figures("fig9")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_figures(",")


class TestParseSeeds:
    def test_comma_list(self):
        assert parse_seeds("0,5,7") == (0, 5, 7)

    def test_range(self):
        assert parse_seeds("0-3") == (0, 1, 2, 3)

    def test_mixed(self):
        assert parse_seeds("9,0-2") == (9, 0, 1, 2)

    def test_negative_seed(self):
        assert parse_seeds("-1") == (-1,)

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_seeds("1,1")
        with pytest.raises(ConfigurationError):
            parse_seeds("0-2,1")

    def test_empty_and_malformed_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_seeds("")
        with pytest.raises(ConfigurationError):
            parse_seeds("two")
        with pytest.raises(ConfigurationError):
            parse_seeds("3-1")


class TestParseOverrides:
    def test_literals_and_strings(self):
        overrides = parse_overrides(
            ["n_users=60", "horizon=14400.0", "benefit=hit-count", "dynamic=True"]
        )
        assert overrides == {
            "n_users": 60,
            "horizon": 14400.0,
            "benefit": "hit-count",
            "dynamic": True,
        }

    def test_missing_equals_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_overrides(["n_users"])
        with pytest.raises(ConfigurationError):
            parse_overrides(["=60"])

    def test_empty_is_empty(self):
        assert parse_overrides([]) == {}


class TestDefaultCacheDir:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, "/tmp/somewhere")
        assert str(default_cache_dir()) == "/tmp/somewhere"

    def test_fallback(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert str(default_cache_dir()) == ".repro-cache"


class TestMain:
    def test_bad_arguments_exit_2(self, capsys):
        assert main(["--figures", "fig9"]) == 2
        assert "unknown figure" in capsys.readouterr().err
        assert main(["--figures", "fig1", "--seeds", "nope"]) == 2

    def test_smoke_grid_end_to_end(self, tmp_path, capsys):
        manifest_path = tmp_path / "manifest.json"
        json_path = tmp_path / "out.json"
        code = main(
            [
                "--figures",
                "fig1",
                "--preset",
                "smoke",
                "--seeds",
                "0",
                *TINY_ARGS,
                "--cache-dir",
                str(tmp_path / "cache"),
                "--manifest",
                str(manifest_path),
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "panel (a)" in out  # figure report printed
        assert "manifest written" in out
        manifest = json.loads(manifest_path.read_text())
        assert manifest["grid"]["figures"] == ["fig1"]
        assert len(manifest["tasks"]) == 2
        assert json_path.is_file()

    def test_multi_figure_json_gets_suffixes(self, tmp_path):
        code = main(
            [
                "--figures",
                "fig1,fig2",
                "--preset",
                "smoke",
                "--seeds",
                "0",
                "--quiet",
                *TINY_ARGS,
                "--cache-dir",
                str(tmp_path / "cache"),
                "--json",
                str(tmp_path / "out.json"),
            ]
        )
        assert code == 0
        written = sorted(p.name for p in tmp_path.glob("out-*.json"))
        assert written == ["out-fig1-smoke-seed0.json", "out-fig2-smoke-seed0.json"]

    def test_quiet_silences_reports(self, tmp_path, capsys):
        code = main(
            [
                "--figures",
                "fig1",
                "--preset",
                "smoke",
                "--seeds",
                "0",
                "--quiet",
                *TINY_ARGS,
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out == ""
