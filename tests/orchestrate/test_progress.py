"""Tests for the live progress printer."""

import io

from repro.orchestrate.pool import TaskRecord
from repro.orchestrate.progress import ProgressPrinter


def _record(**overrides):
    base = dict(
        task_id="fig1/smoke/seed=0/static",
        key="k" * 16,
        engine="fast",
        cache_hit=False,
        elapsed_s=2.5,
        result_digest="d",
    )
    base.update(overrides)
    return TaskRecord(**base)


class TestProgressPrinter:
    def test_run_line_shows_wall_seconds_and_eta(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer(_record(), done=1, total=3)
        line = stream.getvalue()
        assert "run " in line
        assert "(2.5s)" in line
        assert "eta" in line  # two tasks remain

    def test_final_task_has_no_eta(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer(_record(), done=3, total=3)
        assert "eta" not in stream.getvalue()

    def test_cache_hit_line(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer(_record(cache_hit=True, elapsed_s=0.0), done=1, total=1)
        assert "hit " in stream.getvalue()
        assert "cached" in stream.getvalue()

    def test_failure_line_shows_error(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer(_record(error="ValueError: boom"), done=1, total=1)
        assert "FAIL" in stream.getvalue()
        assert "boom" in stream.getvalue()

    def test_disabled_printer_is_silent_but_counts(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream, enabled=False)
        printer(_record(), done=1, total=2)
        printer.summary(0, 1, 0, 1.0)
        assert stream.getvalue() == ""
        assert printer.seen == 1

    def test_summary_line(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer(_record(), done=1, total=1)
        printer.summary(hits=0, executed=1, errors=0, wall_s=3.0)
        assert "orchestrated 1 task(s)" in stream.getvalue()

    def test_cache_tally_in_every_line(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer(_record(cache_hit=True, elapsed_s=0.0), done=1, total=3)
        printer(_record(), done=2, total=3)
        lines = stream.getvalue().splitlines()
        assert "[cache 1h/0m]" in lines[0]
        assert "[cache 1h/1m]" in lines[1]

    def test_disabled_printer_still_tallies_cache(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream, enabled=False)
        printer(_record(cache_hit=True, elapsed_s=0.0), done=1, total=2)
        printer(_record(), done=2, total=2)
        assert stream.getvalue() == ""
        assert printer.hits == 1
        assert printer.misses == 1
