"""Cross-process telemetry aggregation: jobs=1 and jobs=N report as one.

Each pool task emits a per-task metrics-registry snapshot (built inside the
worker process); the manifest folds them into ``obs.telemetry`` via
:func:`repro.obs.telemetry.merge_snapshots`. Per-task snapshots are pure
functions of the task results, so the merged aggregate must be identical
whether the tasks ran inline or across a process pool — and the volatile
``obs`` block must not disturb the stable-view byte-equality contract.
"""

import json

import pytest

from repro.obs.telemetry.exposition import parse_prometheus, render_prometheus
from repro.orchestrate.grid import expand_grid, grid_tasks
from repro.orchestrate.manifest import build_manifest, stable_view
from repro.orchestrate.pool import run_tasks, task_metrics_snapshot

from .conftest import TINY

GRID = {"figures": ["fig1"], "preset": "smoke", "seeds": [0, 1]}


def _run(jobs: int):
    tasks, _ = grid_tasks(
        expand_grid(GRID["figures"], GRID["preset"], GRID["seeds"], overrides=TINY)
    )
    return run_tasks(tasks, jobs=jobs)


def _manifest(run, jobs: int) -> dict:
    return build_manifest(
        grid=GRID, jobs=jobs, records=run.records, cache_dir=None, wall_s=run.wall_s
    )


@pytest.fixture(scope="module")
def serial_and_parallel():
    serial = _manifest(_run(jobs=1), jobs=1)
    parallel = _manifest(_run(jobs=2), jobs=2)
    return serial, parallel


class TestParallelAggregation:
    def test_parallel_aggregate_equals_serial(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        telemetry = serial["obs"]["telemetry"]
        assert telemetry, "aggregate telemetry must not be empty"
        assert json.dumps(telemetry, sort_keys=True) == json.dumps(
            parallel["obs"]["telemetry"], sort_keys=True
        )

    def test_stable_views_stay_byte_identical(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert json.dumps(stable_view(serial), sort_keys=True) == json.dumps(
            stable_view(parallel), sort_keys=True
        )

    def test_aggregate_is_volatile_in_stable_view(self, serial_and_parallel):
        serial, _ = serial_and_parallel
        assert "obs" not in stable_view(serial)

    def test_aggregate_sums_task_values(self):
        run = _run(jobs=1)
        telemetry = _manifest(run, jobs=1)["obs"]["telemetry"]
        per_task = [r.metrics for r in run.records]
        assert all(per_task)
        expected = sum(s["sim.total_queries"]["value"] for s in per_task)
        assert telemetry["sim.total_queries"]["value"] == expected
        assert telemetry["sim.queries"]["type"] == "buckets"
        # The merged welford moments span every task's delay samples.
        assert telemetry["sim.first_result_delay"]["count"] == sum(
            s["sim.first_result_delay"]["count"] for s in per_task
        )

    def test_task_records_carry_worker_snapshots(self):
        run = _run(jobs=2)
        for record in run.records:
            assert record.error is None
            assert record.metrics
            assert record.metrics["sim.total_queries"]["type"] == "value"
            # Rebuilding from the result reproduces the worker's snapshot
            # (the cache-hit path relies on this equivalence).
            rebuilt = task_metrics_snapshot(run.results[record.key])
            assert json.dumps(rebuilt, sort_keys=True) == json.dumps(
                record.metrics, sort_keys=True
            )

    def test_aggregate_renders_as_exposition(self):
        telemetry = _manifest(_run(jobs=1), jobs=1)["obs"]["telemetry"]
        parsed = parse_prometheus(render_prometheus(telemetry))
        assert parsed["sim_total_queries"]["samples"][0][1] > 0
