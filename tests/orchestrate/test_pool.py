"""The task executor: dedup, cache integration, error policy."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import SimRequest, preset_config
from repro.gnutella.simulation import run_simulation
from repro.orchestrate.cache import ResultCache, task_key
from repro.orchestrate.pool import (
    SimTask,
    requests_to_tasks,
    result_digest,
    run_requests,
    run_tasks,
)

from .conftest import TINY


def tiny(seed=0, **overrides):
    return preset_config("smoke", seed=seed, **{**TINY, **overrides})


def make_task(config, task_id="t", engine="fast"):
    return SimTask(task_id, task_key(config, engine), config, engine)


class TestRequestsToTasks:
    def test_dedup_by_content(self):
        cfg = tiny().as_static()
        requests = [SimRequest("a", cfg), SimRequest("b", cfg)]
        tasks, mapping = requests_to_tasks(requests)
        assert len(tasks) == 1
        assert mapping["a"] == mapping["b"] == tasks[0].key
        assert tasks[0].task_id == "a"  # first occurrence names the task

    def test_distinct_configs_stay_distinct(self):
        tasks, _ = requests_to_tasks(
            [SimRequest("a", tiny(0).as_static()), SimRequest("b", tiny(1).as_static())]
        )
        assert len(tasks) == 2

    def test_duplicate_request_keys_rejected(self):
        cfg = tiny().as_static()
        with pytest.raises(ConfigurationError):
            requests_to_tasks([SimRequest("a", cfg), SimRequest("a", cfg)])


class TestRunTasks:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            run_tasks([], jobs=0)

    def test_on_error_validated(self):
        with pytest.raises(ConfigurationError):
            run_tasks([], on_error="ignore")

    def test_duplicate_task_keys_rejected(self):
        task = make_task(tiny().as_static())
        with pytest.raises(ConfigurationError):
            run_tasks([task, task])

    def test_inline_matches_direct_simulation(self):
        cfg = tiny().as_static()
        run = run_tasks([make_task(cfg)], jobs=1)
        direct = run_simulation(cfg)
        assert run.executed == 1
        assert run.cache_hits == 0
        record = run.records[0]
        assert not record.cache_hit
        assert record.elapsed_s > 0
        assert record.result_digest == result_digest(direct)

    def test_cache_roundtrip_and_resume(self, tmp_path):
        cfg = tiny().as_static()
        cache = ResultCache(tmp_path)
        cold = run_tasks([make_task(cfg)], cache=cache)
        assert cold.executed == 1 and cold.cache_hits == 0
        warm = run_tasks([make_task(cfg)], cache=cache)
        assert warm.executed == 0 and warm.cache_hits == 1
        assert warm.records[0].result_digest == cold.records[0].result_digest
        assert warm.records[0].elapsed_s == 0.0

    def test_on_error_record_captures_failure(self):
        bad = make_task(tiny().as_static(), task_id="bad", engine="bogus")
        good = make_task(tiny(seed=1).as_static(), task_id="good")
        run = run_tasks([bad, good], on_error="record")
        assert run.errors == {bad.key: run.records[0].error}
        assert "bogus" in run.records[0].error
        assert run.records[1].error is None
        assert good.key in run.results
        assert bad.key not in run.results

    def test_on_error_raise_propagates(self):
        bad = make_task(tiny().as_static(), engine="bogus")
        with pytest.raises(ConfigurationError):
            run_tasks([bad], on_error="raise")

    def test_progress_callback_sees_every_task(self):
        seen = []
        run_tasks(
            [make_task(tiny().as_static())],
            progress=lambda record, done, total: seen.append((record.task_id, done, total)),
        )
        assert seen == [("t", 1, 1)]

    def test_records_in_task_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = [
            make_task(tiny(seed=s).as_static(), task_id=f"s{s}") for s in (0, 1, 2)
        ]
        # Pre-warm the middle task so hits and misses interleave.
        run_tasks([tasks[1]], cache=cache)
        run = run_tasks(tasks, cache=cache)
        assert [r.task_id for r in run.records] == ["s0", "s1", "s2"]
        assert [r.cache_hit for r in run.records] == [False, True, False]


class TestRunRequests:
    def test_maps_results_back_to_request_keys(self):
        cfg = tiny()
        results = run_requests(
            [SimRequest("static", cfg.as_static()), SimRequest("dynamic", cfg.as_dynamic())]
        )
        assert set(results) == {"static", "dynamic"}
        assert not results["static"].config.dynamic
        assert results["dynamic"].config.dynamic

    def test_shared_content_executes_once(self, tmp_path):
        cfg = tiny().as_static()
        cache = ResultCache(tmp_path)
        results = run_requests(
            [SimRequest("a", cfg), SimRequest("b", cfg)], cache=cache
        )
        assert len(cache) == 1  # one simulation stored, two keys served
        assert result_digest(results["a"]) == result_digest(results["b"])
