"""Satellite contract: parallel execution is bit-identical to serial.

Runs the same small grid through the CLI twice — once with ``--jobs 1``
(the inline reference path) and once with ``--jobs 4`` (the process pool) —
into separate caches, then compares the manifests: every task's result
digest must match, and the stable views must be byte-identical. A third
invocation against the warm serial cache must execute zero simulations.
"""

import json

import pytest

from repro.orchestrate.cli import main
from repro.orchestrate.manifest import MANIFEST_SCHEMA, stable_view

from .conftest import TINY_ARGS

GRID = ["--figures", "fig1", "--preset", "smoke", "--seeds", "0,1", "--quiet"]


def run_grid_cli(tmp_path, name, jobs):
    """One CLI invocation into its own cache dir; returns the manifest."""
    manifest_path = tmp_path / f"{name}.json"
    code = main(
        [
            *GRID,
            *TINY_ARGS,
            "--jobs",
            str(jobs),
            "--cache-dir",
            str(tmp_path / f"cache-{name}"),
            "--manifest",
            str(manifest_path),
        ]
    )
    assert code == 0
    return json.loads(manifest_path.read_text())


@pytest.fixture(scope="module")
def serial_and_parallel(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("determinism")
    serial = run_grid_cli(tmp_path, "serial", jobs=1)
    parallel = run_grid_cli(tmp_path, "parallel", jobs=4)
    return tmp_path, serial, parallel


class TestSerialVsParallel:
    def test_manifest_schema(self, serial_and_parallel):
        _, serial, parallel = serial_and_parallel
        assert serial["schema"] == MANIFEST_SCHEMA
        assert parallel["jobs"] == 4

    def test_task_digests_identical(self, serial_and_parallel):
        _, serial, parallel = serial_and_parallel

        def digests(manifest):
            return [(t["task_id"], t["result_digest"]) for t in manifest["tasks"]]

        assert len(serial["tasks"]) == 4  # fig1 pair x 2 seeds
        assert digests(serial) == digests(parallel)
        assert all(t["result_digest"] for t in serial["tasks"])

    def test_stable_views_byte_identical(self, serial_and_parallel):
        _, serial, parallel = serial_and_parallel

        def canonical(manifest):
            return json.dumps(stable_view(manifest), sort_keys=True)

        assert canonical(serial) == canonical(parallel)

    def test_both_executed_everything(self, serial_and_parallel):
        _, serial, parallel = serial_and_parallel
        for manifest in (serial, parallel):
            assert manifest["cache"]["executed"] == 4
            assert manifest["cache"]["hits"] == 0
            assert manifest["cache"]["errors"] == 0

    def test_second_run_resumes_entirely_from_cache(self, serial_and_parallel):
        tmp_path, serial, _ = serial_and_parallel
        manifest_path = tmp_path / "resume.json"
        code = main(
            [
                *GRID,
                *TINY_ARGS,
                "--jobs",
                "1",
                "--cache-dir",
                str(tmp_path / "cache-serial"),  # the warm serial cache
                "--manifest",
                str(manifest_path),
            ]
        )
        assert code == 0
        resumed = json.loads(manifest_path.read_text())
        assert resumed["cache"]["executed"] == 0
        assert resumed["cache"]["hits"] == 4
        assert all(t["cache_hit"] for t in resumed["tasks"])
        # Cached results carry the same digests the cold run computed.
        assert [t["result_digest"] for t in resumed["tasks"]] == [
            t["result_digest"] for t in serial["tasks"]
        ]


class TestPhaseProfile:
    def test_executed_tasks_carry_phase_timings(self, serial_and_parallel):
        _, serial, _ = serial_and_parallel
        for task in serial["tasks"]:
            assert task["phases"], f"task {task['task_id']} missing phases"
            assert "engine.run" in task["phases"]
            assert task["phases"]["kernel.run"]["seconds"] >= 0.0

    def test_obs_block_aggregates_across_tasks(self, serial_and_parallel):
        _, serial, _ = serial_and_parallel
        phases = serial["obs"]["phases"]
        assert phases["engine.run"]["count"] == len(serial["tasks"])
        total = sum(t["phases"]["engine.run"]["seconds"] for t in serial["tasks"])
        assert phases["engine.run"]["seconds"] == pytest.approx(total)

    def test_stable_view_strips_profiling(self, serial_and_parallel):
        _, serial, _ = serial_and_parallel
        view = stable_view(serial)
        assert "obs" not in view
        assert all("phases" not in t for t in view["tasks"])


class TestEventStreamDigests:
    def test_hash_events_stable_across_jobs(self, tmp_path):
        """The kernel event-stream digest (not just the result digest) is
        identical whether a task runs inline or in a pool worker."""
        args = [
            "--figures",
            "fig1",
            "--preset",
            "smoke",
            "--seeds",
            "0",
            "--quiet",
            "--hash-events",
            *TINY_ARGS,
        ]
        manifests = {}
        for jobs in (1, 2):
            path = tmp_path / f"events-{jobs}.json"
            code = main(
                [
                    *args,
                    "--jobs",
                    str(jobs),
                    "--cache-dir",
                    str(tmp_path / f"cache-{jobs}"),
                    "--manifest",
                    str(path),
                ]
            )
            assert code == 0
            manifests[jobs] = json.loads(path.read_text())
        serial = [(t["task_id"], t["event_digest"]) for t in manifests[1]["tasks"]]
        pooled = [(t["task_id"], t["event_digest"]) for t in manifests[2]["tasks"]]
        assert serial == pooled
        assert all(digest for _, digest in serial)
