"""Tests for message envelopes and the kernel-backed transport."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel
from repro.net.message import Message, MessageKind
from repro.net.transport import Transport
from repro.sim import HourlyBuckets, Simulator


def make_transport(n=10, seed=0, buckets=None):
    sim = Simulator()
    bw = BandwidthModel(n, np.random.default_rng(seed))
    latency = LatencyModel(bw, np.random.default_rng(seed + 1))
    return sim, Transport(sim, latency, query_buckets=buckets), latency


class TestMessage:
    def test_unique_query_ids(self):
        a = Message(MessageKind.QUERY, 0, 1, origin=0)
        b = Message(MessageKind.QUERY, 0, 1, origin=0)
        assert a.query_id != b.query_id

    def test_forwarded_preserves_identity(self):
        m = Message(MessageKind.QUERY, 0, 1, origin=0, payload="song", path=(1,))
        f = m.forwarded(1, 2)
        assert f.query_id == m.query_id
        assert f.origin == 0
        assert f.hops == m.hops + 1
        assert f.payload == "song"
        assert f.path == (1, 2)
        assert (f.sender, f.receiver) == (1, 2)


class TestTransport:
    def test_delivery_after_link_delay(self):
        sim, transport, latency = make_transport()
        got = []
        transport.register(1, lambda m: got.append((sim.now, m.payload)))
        transport.send(Message(MessageKind.QUERY, 0, 1, origin=0, payload="hi"))
        sim.run()
        assert got == [(latency.one_way_delay(0, 1), "hi")]

    def test_send_to_self_rejected(self):
        _, transport, _ = make_transport()
        with pytest.raises(NetworkError):
            transport.send(Message(MessageKind.QUERY, 3, 3, origin=3))

    def test_unregistered_receiver_drops(self):
        sim, transport, _ = make_transport()
        transport.send(Message(MessageKind.QUERY, 0, 1, origin=0))
        sim.run()
        assert transport.dropped == 1
        assert transport.delivered == 0

    def test_unregister_mid_flight_drops(self):
        sim, transport, _ = make_transport()
        got = []
        transport.register(1, lambda m: got.append(m))
        transport.send(Message(MessageKind.QUERY, 0, 1, origin=0))
        transport.unregister(1)  # before delivery fires
        sim.run()
        assert got == []
        assert transport.dropped == 1

    def test_counters_by_kind(self):
        sim, transport, _ = make_transport()
        transport.register(1, lambda m: None)
        transport.send(Message(MessageKind.QUERY, 0, 1, origin=0))
        transport.send(Message(MessageKind.INVITE, 0, 1, origin=0))
        sim.run()
        assert transport.sent == 2
        assert transport.sent_by_kind[MessageKind.QUERY] == 1
        assert transport.sent_by_kind[MessageKind.INVITE] == 1
        assert transport.delivered == 2

    def test_query_buckets_count_only_queries(self):
        buckets = HourlyBuckets(horizon=3600.0)
        sim, transport, _ = make_transport(buckets=buckets)
        transport.register(1, lambda m: None)
        transport.send(Message(MessageKind.QUERY, 0, 1, origin=0))
        transport.send(Message(MessageKind.QUERY_REPLY, 1, 0, origin=0))
        sim.run()
        assert buckets.total() == 1

    def test_is_registered(self):
        _, transport, _ = make_transport()
        transport.register(4, lambda m: None)
        assert transport.is_registered(4)
        transport.unregister(4)
        assert not transport.is_registered(4)

    def test_fifo_between_same_pair(self):
        # Two messages over the same (cached-delay) link arrive in send order.
        sim, transport, _ = make_transport()
        got = []
        transport.register(1, lambda m: got.append(m.payload))
        transport.send(Message(MessageKind.QUERY, 0, 1, origin=0, payload="first"))
        transport.send(Message(MessageKind.QUERY, 0, 1, origin=0, payload="second"))
        sim.run()
        assert got == ["first", "second"]
