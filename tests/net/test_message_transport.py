"""Tests for message envelopes and the kernel-backed transport."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel
from repro.net.message import Message, MessageKind
from repro.net.transport import Transport
from repro.sim import HourlyBuckets, Simulator


def make_transport(n=10, seed=0, buckets=None, loss_rate=0.0, rng=None):
    sim = Simulator()
    bw = BandwidthModel(n, np.random.default_rng(seed))
    latency = LatencyModel(bw, np.random.default_rng(seed + 1))
    transport = Transport(
        sim, latency, query_buckets=buckets, loss_rate=loss_rate, rng=rng
    )
    return sim, transport, latency


class TestMessage:
    def test_query_id_is_an_explicit_engine_concern(self):
        # No hidden module-level counter (it was process-global: id sequences
        # depended on which simulations shared a pool worker — repro-lint
        # R007). Engines allocate ids from their own counters and pass them
        # explicitly; the default is a plain sentinel.
        a = Message(MessageKind.QUERY, 0, 1, origin=0)
        b = Message(MessageKind.QUERY, 0, 1, origin=0)
        assert a.query_id == b.query_id == 0
        c = Message(MessageKind.QUERY, 0, 1, origin=0, query_id=41)
        assert c.query_id == 41

    def test_forwarded_preserves_identity(self):
        m = Message(MessageKind.QUERY, 0, 1, origin=0, payload="song", path=(1,))
        f = m.forwarded(1, 2)
        assert f.query_id == m.query_id
        assert f.origin == 0
        assert f.hops == m.hops + 1
        assert f.payload == "song"
        assert f.path == (1, 2)
        assert (f.sender, f.receiver) == (1, 2)


class TestTransport:
    def test_delivery_after_link_delay(self):
        sim, transport, latency = make_transport()
        got = []
        transport.register(1, lambda m: got.append((sim.now, m.payload)))
        transport.send(Message(MessageKind.QUERY, 0, 1, origin=0, payload="hi"))
        sim.run()
        assert got == [(latency.one_way_delay(0, 1), "hi")]

    def test_send_to_self_rejected(self):
        _, transport, _ = make_transport()
        with pytest.raises(NetworkError):
            transport.send(Message(MessageKind.QUERY, 3, 3, origin=3))

    def test_unregistered_receiver_drops(self):
        sim, transport, _ = make_transport()
        transport.send(Message(MessageKind.QUERY, 0, 1, origin=0))
        sim.run()
        assert transport.dropped == 1
        assert transport.delivered == 0

    def test_unregister_mid_flight_drops(self):
        sim, transport, _ = make_transport()
        got = []
        transport.register(1, lambda m: got.append(m))
        transport.send(Message(MessageKind.QUERY, 0, 1, origin=0))
        transport.unregister(1)  # before delivery fires
        sim.run()
        assert got == []
        assert transport.dropped == 1

    def test_counters_by_kind(self):
        sim, transport, _ = make_transport()
        transport.register(1, lambda m: None)
        transport.send(Message(MessageKind.QUERY, 0, 1, origin=0))
        transport.send(Message(MessageKind.INVITE, 0, 1, origin=0))
        sim.run()
        assert transport.sent == 2
        assert transport.sent_by_kind[MessageKind.QUERY] == 1
        assert transport.sent_by_kind[MessageKind.INVITE] == 1
        assert transport.delivered == 2

    def test_query_buckets_count_only_queries(self):
        buckets = HourlyBuckets(horizon=3600.0)
        sim, transport, _ = make_transport(buckets=buckets)
        transport.register(1, lambda m: None)
        transport.send(Message(MessageKind.QUERY, 0, 1, origin=0))
        transport.send(Message(MessageKind.QUERY_REPLY, 1, 0, origin=0))
        sim.run()
        assert buckets.total() == 1

    def test_is_registered(self):
        _, transport, _ = make_transport()
        transport.register(4, lambda m: None)
        assert transport.is_registered(4)
        transport.unregister(4)
        assert not transport.is_registered(4)

    def test_fifo_between_same_pair(self):
        # Two messages over the same (cached-delay) link arrive in send order.
        sim, transport, _ = make_transport()
        got = []
        transport.register(1, lambda m: got.append(m.payload))
        transport.send(Message(MessageKind.QUERY, 0, 1, origin=0, payload="first"))
        transport.send(Message(MessageKind.QUERY, 0, 1, origin=0, payload="second"))
        sim.run()
        assert got == ["first", "second"]


class TestTransportLoss:
    """Failure injection on the wire (satellite of the orchestration PR)."""

    N_MESSAGES = 400

    def flood(self, transport, kind=MessageKind.QUERY):
        for _ in range(self.N_MESSAGES):
            transport.send(Message(kind, 0, 1, origin=0))

    def test_loss_rate_validated(self):
        with pytest.raises(NetworkError):
            make_transport(loss_rate=1.0, rng=np.random.default_rng(0))
        with pytest.raises(NetworkError):
            make_transport(loss_rate=-0.1, rng=np.random.default_rng(0))

    def test_positive_loss_requires_rng(self):
        with pytest.raises(NetworkError):
            make_transport(loss_rate=0.2)

    def test_loss_accounting_is_exhaustive(self):
        sim, transport, _ = make_transport(
            loss_rate=0.3, rng=np.random.default_rng(42)
        )
        transport.register(1, lambda m: None)
        self.flood(transport)
        sim.run()
        assert transport.sent == self.N_MESSAGES
        assert 0 < transport.lost < self.N_MESSAGES
        assert transport.dropped == 0
        # Every sent message is either lost in transit or delivered.
        assert transport.lost + transport.delivered == transport.sent

    def test_lost_messages_still_count_as_sent_by_kind(self):
        sim, transport, _ = make_transport(
            loss_rate=0.5, rng=np.random.default_rng(7)
        )
        transport.register(1, lambda m: None)
        self.flood(transport)
        sim.run()
        # The sender paid for every copy, lost or not.
        assert transport.sent_by_kind[MessageKind.QUERY] == self.N_MESSAGES

    def test_query_buckets_exclude_lost_messages(self):
        buckets = HourlyBuckets(horizon=3600.0)
        sim, transport, _ = make_transport(
            buckets=buckets, loss_rate=0.4, rng=np.random.default_rng(3)
        )
        transport.register(1, lambda m: None)
        self.flood(transport)
        sim.run()
        # A copy lost in transit never propagates, so the overhead series
        # counts exactly the surviving copies.
        assert buckets.total() == transport.sent - transport.lost
        assert buckets.total() == transport.delivered

    def test_same_seed_loses_the_same_messages(self):
        outcomes = []
        for _ in range(2):
            sim, transport, _ = make_transport(
                loss_rate=0.25, rng=np.random.default_rng(11)
            )
            got = []
            transport.register(1, lambda m: got.append(m.payload))
            for i in range(100):
                transport.send(
                    Message(MessageKind.QUERY, 0, 1, origin=0, payload=i)
                )
            sim.run()
            outcomes.append((transport.lost, tuple(got)))
        assert outcomes[0] == outcomes[1]

    def test_zero_rate_loses_nothing(self):
        sim, transport, _ = make_transport(
            loss_rate=0.0, rng=np.random.default_rng(0)
        )
        transport.register(1, lambda m: None)
        self.flood(transport)
        sim.run()
        assert transport.lost == 0
        assert transport.delivered == self.N_MESSAGES
