"""Tests for access-class assignment and link bandwidth."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.net.bandwidth import CLASS_KBPS, BandwidthClass, BandwidthModel


@pytest.fixture
def model():
    return BandwidthModel(n_nodes=3000, rng=np.random.default_rng(0))


class TestAssignment:
    def test_all_classes_present(self, model):
        assert set(np.unique(model.classes)) == {0, 1, 2}

    def test_roughly_uniform_split(self, model):
        counts = np.bincount(model.classes, minlength=3)
        # 3000 nodes, p=1/3 each: expect ~1000 +- 5 sigma (~85).
        assert all(abs(c - 1000) < 150 for c in counts)

    def test_custom_probabilities(self):
        m = BandwidthModel(
            n_nodes=500, rng=np.random.default_rng(1), class_probabilities=(1.0, 0.0, 0.0)
        )
        assert set(np.unique(m.classes)) == {0}

    def test_deterministic_given_rng(self):
        a = BandwidthModel(100, np.random.default_rng(7)).classes
        b = BandwidthModel(100, np.random.default_rng(7)).classes
        np.testing.assert_array_equal(a, b)

    def test_invalid_n_nodes(self):
        with pytest.raises(NetworkError):
            BandwidthModel(0, np.random.default_rng(0))

    def test_invalid_probabilities(self):
        with pytest.raises(NetworkError):
            BandwidthModel(10, np.random.default_rng(0), class_probabilities=(0.5, 0.5, 0.5))
        with pytest.raises(NetworkError):
            BandwidthModel(10, np.random.default_rng(0), class_probabilities=(1.5, -0.5, 0.0))


class TestLookups:
    def test_class_of_and_kbps_of_agree(self, model):
        for node in range(0, 3000, 311):
            cls = model.class_of(node)
            assert model.kbps_of(node) == CLASS_KBPS[cls]

    def test_link_kbps_is_min_of_endpoints(self):
        m = BandwidthModel(4, np.random.default_rng(0))
        m.classes[:] = [0, 2, 1, 2]  # modem, lan, cable, lan
        assert m.link_kbps(0, 1) == CLASS_KBPS[BandwidthClass.MODEM_56K]
        assert m.link_kbps(1, 3) == CLASS_KBPS[BandwidthClass.LAN]
        assert m.link_kbps(2, 1) == CLASS_KBPS[BandwidthClass.CABLE]

    def test_link_kbps_symmetric(self, model):
        assert model.link_kbps(5, 99) == model.link_kbps(99, 5)

    def test_slowest_class(self):
        m = BandwidthModel(3, np.random.default_rng(0))
        m.classes[:] = [0, 1, 2]
        assert m.slowest_class(0, 2) == BandwidthClass.MODEM_56K
        assert m.slowest_class(1, 2) == BandwidthClass.CABLE
        assert m.slowest_class(2, 2) == BandwidthClass.LAN


def test_class_ordering_slow_to_fast():
    assert BandwidthClass.MODEM_56K < BandwidthClass.CABLE < BandwidthClass.LAN
    assert (
        CLASS_KBPS[BandwidthClass.MODEM_56K]
        < CLASS_KBPS[BandwidthClass.CABLE]
        < CLASS_KBPS[BandwidthClass.LAN]
    )
