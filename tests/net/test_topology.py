"""Tests for topology snapshots and the consistency predicate."""

from hypothesis import given
from hypothesis import strategies as st

from repro.net.topology import NeighborGraph, find_inconsistencies, is_consistent


class TestConsistency:
    def test_consistent_pair(self):
        out = {0: [1], 1: []}
        inc = {0: [], 1: [0]}
        assert is_consistent(out, inc)

    def test_missing_incoming_entry_is_inconsistent(self):
        out = {0: [1], 1: []}
        inc = {0: [], 1: []}
        assert find_inconsistencies(out, inc) == [(0, 1)]
        assert not is_consistent(out, inc)

    def test_node_absent_from_incoming_map(self):
        out = {0: [9]}
        inc = {0: []}
        assert find_inconsistencies(out, inc) == [(0, 9)]

    def test_empty_network_consistent(self):
        assert is_consistent({}, {})

    def test_symmetric_network_consistent(self):
        nodes = range(5)
        out = {i: [(i + 1) % 5, (i - 1) % 5] for i in nodes}
        inc = {i: [(i + 1) % 5, (i - 1) % 5] for i in nodes}
        assert is_consistent(out, inc)

    @given(
        st.dictionaries(
            st.integers(0, 9),
            st.sets(st.integers(0, 9), max_size=4),
            max_size=10,
        )
    )
    def test_property_mirrored_lists_always_consistent(self, out):
        # Build incoming as the exact mirror of outgoing: by construction
        # consistent.
        inc = {n: set() for n in range(10)}
        for i, outs in out.items():
            for j in outs:
                inc.setdefault(j, set()).add(i)
        assert is_consistent(out, inc)


class TestNeighborGraph:
    def test_counts(self):
        g = NeighborGraph({0: [1, 2], 1: [0], 2: []})
        assert g.n_nodes == 3
        assert g.n_edges == 3
        assert g.out_degrees() == {0: 2, 1: 1, 2: 0}

    def test_is_symmetric(self):
        assert NeighborGraph({0: [1], 1: [0]}).is_symmetric()
        assert not NeighborGraph({0: [1], 1: []}).is_symmetric()

    def test_reachable_within(self):
        # 0 -> 1 -> 2 -> 3 chain
        g = NeighborGraph({0: [1], 1: [2], 2: [3], 3: []})
        assert g.reachable_within(0, 1) == {1}
        assert g.reachable_within(0, 2) == {1, 2}
        assert g.reachable_within(0, 99) == {1, 2, 3}
        assert g.reachable_within(42, 2) == set()

    def test_reachable_excludes_source(self):
        g = NeighborGraph({0: [1], 1: [0]})
        assert 0 not in g.reachable_within(0, 5)

    def test_largest_component_fraction(self):
        g = NeighborGraph({0: [1], 1: [], 2: [], 3: []})
        assert g.largest_component_fraction() == 0.5
        assert NeighborGraph({}).largest_component_fraction() == 0.0

    def test_clustering_by_attribute(self):
        g = NeighborGraph({0: [1, 2], 1: [], 2: []})
        fav = {0: "rock", 1: "rock", 2: "jazz"}
        assert g.clustering_by_attribute(fav) == 0.5

    def test_clustering_no_edges(self):
        assert NeighborGraph({0: []}).clustering_by_attribute({0: 1}) == 0.0
