"""Tests for the truncated-Gaussian pairwise delay model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import DelayParameters, LatencyModel


def make_model(n=100, seed=0, params=None, classes=None):
    rng = np.random.default_rng(seed)
    bw = BandwidthModel(n, rng)
    if classes is not None:
        bw.classes[:] = classes
    return LatencyModel(bw, np.random.default_rng(seed + 1), params)


class TestDelayParameters:
    def test_defaults_match_paper(self):
        p = DelayParameters()
        assert p.means == (0.300, 0.150, 0.070)
        assert p.std == 0.020

    def test_validation(self):
        with pytest.raises(NetworkError):
            DelayParameters(means=(0.1, 0.1))  # type: ignore[arg-type]
        with pytest.raises(NetworkError):
            DelayParameters(means=(0.0, 0.1, 0.1))
        with pytest.raises(NetworkError):
            DelayParameters(std=-1.0)
        with pytest.raises(NetworkError):
            DelayParameters(truncation_sigmas=0)
        with pytest.raises(NetworkError):
            DelayParameters(floor=0)


class TestLatencyModel:
    def test_symmetric(self):
        lm = make_model()
        assert lm.one_way_delay(3, 50) == lm.one_way_delay(50, 3)

    def test_cached_stable(self):
        lm = make_model()
        first = lm.one_way_delay(1, 2)
        assert lm.one_way_delay(1, 2) == first
        assert lm.cached_pairs == 1

    def test_self_delay_zero(self):
        assert make_model().one_way_delay(5, 5) == 0.0

    def test_round_trip_double(self):
        lm = make_model()
        assert lm.round_trip(1, 2) == pytest.approx(2 * lm.one_way_delay(1, 2))

    def test_out_of_range_rejected(self):
        lm = make_model(n=10)
        with pytest.raises(NetworkError):
            lm.one_way_delay(0, 10)

    def test_mean_governed_by_slowest(self):
        # All pairs (modem, lan) should cluster near the modem mean 300 ms.
        lm = make_model(n=400, classes=[0, 2] * 200)
        modem_lan = [lm.one_way_delay(0, i) for i in range(1, 400, 2)]  # 0 is modem
        assert np.mean(modem_lan) == pytest.approx(0.300, abs=0.01)
        lan_lan = [lm.one_way_delay(1, i) for i in range(3, 400, 2)]
        assert np.mean(lan_lan) == pytest.approx(0.070, abs=0.01)

    def test_truncation_bounds_respected(self):
        lm = make_model(n=200)
        p = lm.params
        for i in range(50):
            for j in range(i + 1, 50):
                d = lm.one_way_delay(i, j)
                cls = lm.bandwidth.slowest_class(i, j)
                mean = p.means[cls]
                assert mean - 3 * p.std - 1e-12 <= d <= mean + 3 * p.std + 1e-12
                assert d >= p.floor

    def test_zero_std_gives_exact_means(self):
        params = DelayParameters(std=0.0)
        lm = make_model(classes=[2] * 100, params=params)
        assert lm.one_way_delay(0, 1) == 0.070

    def test_deterministic_given_rng(self):
        a = make_model(seed=5).one_way_delay(2, 9)
        b = make_model(seed=5).one_way_delay(2, 9)
        assert a == b

    @given(st.integers(0, 99), st.integers(0, 99))
    def test_property_positive_and_symmetric(self, a, b):
        lm = make_model()
        d = lm.one_way_delay(a, b)
        assert d >= 0.0
        assert d == lm.one_way_delay(b, a)
        if a != b:
            assert d > 0.0
