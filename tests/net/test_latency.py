"""Tests for the truncated-Gaussian pairwise delay model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LAZY_DELAY_NODE_THRESHOLD, DelayParameters, LatencyModel


def make_model(n=100, seed=0, params=None, classes=None, lazy_threshold=None):
    rng = np.random.default_rng(seed)
    bw = BandwidthModel(n, rng)
    if classes is not None:
        bw.classes[:] = classes
    return LatencyModel(
        bw, np.random.default_rng(seed + 1), params, lazy_threshold=lazy_threshold
    )


class TestDelayParameters:
    def test_defaults_match_paper(self):
        p = DelayParameters()
        assert p.means == (0.300, 0.150, 0.070)
        assert p.std == 0.020

    def test_validation(self):
        with pytest.raises(NetworkError):
            DelayParameters(means=(0.1, 0.1))  # type: ignore[arg-type]
        with pytest.raises(NetworkError):
            DelayParameters(means=(0.0, 0.1, 0.1))
        with pytest.raises(NetworkError):
            DelayParameters(std=-1.0)
        with pytest.raises(NetworkError):
            DelayParameters(truncation_sigmas=0)
        with pytest.raises(NetworkError):
            DelayParameters(floor=0)


class TestLatencyModel:
    def test_symmetric(self):
        lm = make_model()
        assert lm.one_way_delay(3, 50) == lm.one_way_delay(50, 3)

    def test_cached_stable(self):
        lm = make_model()
        first = lm.one_way_delay(1, 2)
        assert lm.one_way_delay(1, 2) == first
        assert lm.cached_pairs == 1

    def test_self_delay_zero(self):
        assert make_model().one_way_delay(5, 5) == 0.0

    def test_round_trip_double(self):
        lm = make_model()
        assert lm.round_trip(1, 2) == pytest.approx(2 * lm.one_way_delay(1, 2))

    def test_out_of_range_rejected(self):
        lm = make_model(n=10)
        with pytest.raises(NetworkError):
            lm.one_way_delay(0, 10)

    def test_mean_governed_by_slowest(self):
        # All pairs (modem, lan) should cluster near the modem mean 300 ms.
        lm = make_model(n=400, classes=[0, 2] * 200)
        modem_lan = [lm.one_way_delay(0, i) for i in range(1, 400, 2)]  # 0 is modem
        assert np.mean(modem_lan) == pytest.approx(0.300, abs=0.01)
        lan_lan = [lm.one_way_delay(1, i) for i in range(3, 400, 2)]
        assert np.mean(lan_lan) == pytest.approx(0.070, abs=0.01)

    def test_truncation_bounds_respected(self):
        lm = make_model(n=200)
        p = lm.params
        for i in range(50):
            for j in range(i + 1, 50):
                d = lm.one_way_delay(i, j)
                cls = lm.bandwidth.slowest_class(i, j)
                mean = p.means[cls]
                assert mean - 3 * p.std - 1e-12 <= d <= mean + 3 * p.std + 1e-12
                assert d >= p.floor

    def test_zero_std_gives_exact_means(self):
        params = DelayParameters(std=0.0)
        lm = make_model(classes=[2] * 100, params=params)
        assert lm.one_way_delay(0, 1) == 0.070

    def test_deterministic_given_rng(self):
        a = make_model(seed=5).one_way_delay(2, 9)
        b = make_model(seed=5).one_way_delay(2, 9)
        assert a == b

    @given(st.integers(0, 99), st.integers(0, 99))
    def test_property_positive_and_symmetric(self, a, b):
        lm = make_model()
        d = lm.one_way_delay(a, b)
        assert d >= 0.0
        assert d == lm.one_way_delay(b, a)
        if a != b:
            assert d > 0.0


class TestDelayMatrix:
    def test_symmetric_zero_diagonal(self):
        lm = make_model(n=60)
        matrix = lm.delay_matrix()
        assert matrix.shape == (60, 60)
        assert np.array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0.0)
        off_diag = matrix[~np.eye(60, dtype=bool)]
        assert np.all(off_diag > 0.0)

    def test_lookup_served_from_matrix(self):
        """After the build, one_way_delay reads the exact matrix floats."""
        lm = make_model(n=40)
        rows = lm.delay_rows()
        for a in range(40):
            for b in range(40):
                assert lm.one_way_delay(a, b) == rows[a][b]

    def test_precached_lazy_pairs_preserved(self):
        """Pairs drawn before the build keep their observed values."""
        lm = make_model(n=30)
        warm = {(a, b): lm.one_way_delay(a, b) for a, b in [(0, 1), (7, 3), (29, 10)]}
        matrix = lm.delay_matrix()
        for (a, b), value in warm.items():
            assert matrix[a, b] == value
            assert matrix[b, a] == value
            assert lm.one_way_delay(a, b) == value

    def test_has_matrix_and_cached_pairs(self):
        lm = make_model(n=20)
        assert not lm.has_matrix
        lm.one_way_delay(0, 1)
        assert lm.cached_pairs == 1
        lm.delay_matrix()
        assert lm.has_matrix
        assert lm.cached_pairs == 20 * 19 // 2

    def test_matrix_built_once(self):
        lm = make_model(n=15)
        assert lm.delay_matrix() is lm.delay_matrix()
        assert lm.delay_rows() is lm.delay_rows()

    def test_truncation_respected_in_matrix(self):
        lm = make_model(n=50)
        matrix = lm.delay_matrix()
        p = lm.params
        for i in range(50):
            for j in range(i + 1, 50):
                mean = p.means[lm.bandwidth.slowest_class(i, j)]
                lo = max(mean - p.truncation_sigmas * p.std, p.floor)
                hi = mean + p.truncation_sigmas * p.std
                assert lo - 1e-12 <= matrix[i, j] <= hi + 1e-12

    def test_zero_std_matrix_is_exact_means(self):
        params = DelayParameters(std=0.0)
        lm = make_model(n=20, classes=[2] * 20, params=params)
        matrix = lm.delay_matrix()
        off_diag = matrix[~np.eye(20, dtype=bool)]
        assert np.all(off_diag == 0.070)


class TestLazyRegime:
    """Above the node threshold: no matrix, keyed on-demand pair draws."""

    def test_threshold_selects_regime(self):
        assert not make_model(n=50, lazy_threshold=50).is_lazy
        assert make_model(n=51, lazy_threshold=50).is_lazy
        # The default threshold is far above test-sized populations.
        assert not make_model(n=100).is_lazy
        assert LAZY_DELAY_NODE_THRESHOLD == 4096

    def test_delay_matrix_refuses(self):
        lm = make_model(n=40, lazy_threshold=10)
        with pytest.raises(NetworkError, match="refusing to materialize"):
            lm.delay_matrix()
        assert not lm.has_matrix

    def test_rows_proxy_matches_one_way_delay(self):
        lm = make_model(n=40, lazy_threshold=10)
        rows = lm.delay_rows()
        assert len(rows) == 40
        assert len(rows[0]) == 40
        for a, b in [(0, 1), (1, 0), (5, 39), (12, 12)]:
            assert rows[a][b] == lm.one_way_delay(a, b)
        assert lm.delay_rows() is rows  # the proxy is cached

    def test_touch_order_independent(self):
        """The keyed draw makes pair values a pure function of (seed, pair),
        so two models touching pairs in opposite orders agree float-for-float
        — the property that keeps the digest gate valid at scale."""
        pairs = [(0, 1), (3, 17), (2, 9), (18, 19), (4, 4)]
        forward = make_model(n=20, seed=3, lazy_threshold=5)
        backward = make_model(n=20, seed=3, lazy_threshold=5)
        got_forward = {p: forward.one_way_delay(*p) for p in pairs}
        got_backward = {p: backward.one_way_delay(*p) for p in reversed(pairs)}
        assert got_forward == got_backward

    def test_symmetric_cached_and_bounded(self):
        lm = make_model(n=30, lazy_threshold=10)
        p = lm.params
        for a in range(10):
            for b in range(a + 1, 10):
                d = lm.one_way_delay(a, b)
                assert d == lm.one_way_delay(b, a)
                mean = p.means[lm.bandwidth.slowest_class(a, b)]
                assert mean - 3 * p.std - 1e-12 <= d <= mean + 3 * p.std + 1e-12
                assert d >= p.floor
        assert lm.cached_pairs == 45  # only the touched pairs materialized

    def test_deterministic_across_models(self):
        a = make_model(n=25, seed=11, lazy_threshold=5).one_way_delay(2, 9)
        b = make_model(n=25, seed=11, lazy_threshold=5).one_way_delay(2, 9)
        assert a == b

    def test_zero_std_lazy_gives_exact_means(self):
        params = DelayParameters(std=0.0)
        lm = make_model(n=20, classes=[2] * 20, params=params, lazy_threshold=5)
        assert lm.one_way_delay(0, 1) == 0.070

    def test_round_trip_and_self_delay(self):
        lm = make_model(n=20, lazy_threshold=5)
        assert lm.one_way_delay(4, 4) == 0.0
        assert lm.round_trip(1, 2) == pytest.approx(2 * lm.one_way_delay(1, 2))
