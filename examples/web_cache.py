#!/usr/bin/env python
"""Cooperative web proxies: the framework's pure-asymmetric instantiation.

Twenty Squid-style proxies serve Zipf web traffic with interest locality.
Search stops after one hop (the origin server is the fallback, so deep
flooding buys nothing — Section 3.2), exploration probes deeper about
recently missed objects, and Algo 3 updates rewire each proxy toward the
peers whose caches keep answering.

Run with::

    python examples/web_cache.py
"""

from dataclasses import replace

from repro.webcache import WebCacheConfig, run_webcache_simulation
from repro.workload.webtrace import WebTraceConfig


def main() -> None:
    base = WebCacheConfig(
        trace=WebTraceConfig(n_proxies=20, n_objects=10_000, n_sites=50,
                             locality=0.6),
        cache_capacity=200,
        neighbor_slots=3,
        n_rounds=400,
        seed=2,
    )

    print("running static proxy mesh (random fixed neighbors) ...")
    static = run_webcache_simulation(replace(base, adaptive=False))
    print("running adaptive proxy mesh (explore + Algo 3 updates) ...")
    adaptive = run_webcache_simulation(base)
    print("running adaptive mesh with Squid-style cache digests ...")
    digests = run_webcache_simulation(replace(base, use_digests=True))

    print(f"\n{'metric':<26}{'static':>12}{'adaptive':>12}{'+digests':>12}")
    rows = [
        ("local hit rate", *(f"{r.local_hit_rate:.3f}" for r in (static, adaptive, digests))),
        ("neighbor hit rate", *(f"{r.neighbor_hit_rate:.3f}" for r in (static, adaptive, digests))),
        ("origin fetches", *(f"{r.origin_fetches:,}" for r in (static, adaptive, digests))),
        ("mean latency (s)", *(f"{r.mean_latency:.3f}" for r in (static, adaptive, digests))),
        ("search messages", *(f"{r.search_messages:,}" for r in (static, adaptive, digests))),
        ("exploration messages", *(f"{r.exploration_messages:,}" for r in (static, adaptive, digests))),
    ]
    for name, s, a, d in rows:
        print(f"{name:<26}{s:>12}{a:>12}{d:>12}")

    saved = static.origin_fetches - adaptive.origin_fetches
    print(
        f"\nadaptation redirected {saved:,} requests from the origin servers to "
        "nearby proxy caches — the paper's web-caching scenario, where the "
        "benefit function is retrieved pages over end-to-end latency."
    )


if __name__ == "__main__":
    main()
