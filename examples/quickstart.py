#!/usr/bin/env python
"""Quickstart: build a small repository network and watch it adapt.

This walks the public API end to end in under a minute:

1. create a :class:`repro.core.RepositoryNetwork` with symmetric relations
   (the Gnutella-style case);
2. wire a random ring and search for content that lives a few hops away;
3. run a neighbor update (Algo 4: invitations + evictions) and observe the
   same query now resolving at one hop with fewer messages.

Run with::

    python examples/quickstart.py
"""

from repro.core import RepositoryNetwork, SymmetricRelation, TTLTermination
from repro.core.consistency import check_consistent


def main() -> None:
    # A network of 8 repositories, 2 neighbor slots each, searches bounded
    # to 3 hops. Repositories 3 and 4 — the far side of the ring from node
    # 0 — hold the item we will hunt for.
    net = RepositoryNetwork(SymmetricRelation(capacity=2),
                            termination=TTLTermination(3))
    wanted_item = 42
    for node in range(8):
        items = [wanted_item] if node in (3, 4) else [node]
        net.add_repository(items=items)
    for node in range(8):  # a ring: the worst case for random placement
        net.connect(node, (node + 1) % 8)

    print("initial neighbors of node 0:", net.neighbor_snapshot()[0])

    first = net.search(0, wanted_item)
    print(
        f"search #1: hit={first.hit} results={first.result_count} "
        f"messages={first.messages} first-delay={first.first_result_delay:.3f}s"
    )

    # The search credited the responders in node 0's statistics table; a
    # neighbor update adopts the best of them (sending a real invitation —
    # the invited node evicts its own weakest neighbor to make room).
    net.update_neighbors(0)
    print("neighbors of node 0 after update:", net.neighbor_snapshot()[0])
    assert check_consistent(net.states()), "updates must keep the network consistent"

    second = net.search(0, wanted_item)
    print(
        f"search #2: hit={second.hit} results={second.result_count} "
        f"messages={second.messages} first-delay={second.first_result_delay:.3f}s"
    )
    print(
        f"\nadaptation cut messages {first.messages} -> {second.messages} and "
        f"delay {first.first_result_delay:.3f}s -> {second.first_result_delay:.3f}s"
    )


if __name__ == "__main__":
    main()
