#!/usr/bin/env python
"""Distributed OLAP caching: the framework's PeerOlap-style instantiation.

Thirty analyst peers fire chunked OLAP queries against a shared cube. Each
chunk resolves from the local cache, a neighboring peer, or — expensively —
the data warehouse. The adaptive scheme explores for hot-region chunks and
runs Algo 3 updates with the *saved query-processing time* benefit the paper
names for this domain (Section 3.4).

Run with::

    python examples/olap_cache.py
"""

from dataclasses import replace

from repro.olap import OlapConfig, run_olap_simulation
from repro.workload.olap_workload import OlapWorkloadConfig


def main() -> None:
    base = OlapConfig(
        workload=OlapWorkloadConfig(n_peers=30, n_chunks=2000, n_regions=20,
                                    locality=0.7),
        cache_capacity=150,
        out_slots=3,
        in_slots=6,
        n_rounds=300,
        seed=4,
    )

    print("running static peer mesh ...")
    static = run_olap_simulation(replace(base, adaptive=False))
    print("running adaptive peer mesh (explore + Algo 3, processing-time benefit) ...")
    adaptive = run_olap_simulation(base)

    print(f"\n{'metric':<28}{'static':>12}{'adaptive':>12}")
    rows = [
        ("warehouse offload", f"{static.warehouse_offload:.3f}",
         f"{adaptive.warehouse_offload:.3f}"),
        ("mean query latency (s)", f"{static.mean_query_latency:.2f}",
         f"{adaptive.mean_query_latency:.2f}"),
        ("chunks from peers", f"{static.peer_chunks:,}",
         f"{adaptive.peer_chunks:,}"),
        ("chunks from warehouse", f"{static.warehouse_chunks:,}",
         f"{adaptive.warehouse_chunks:,}"),
        ("saved processing (s)", f"{static.saved_processing_time:,.0f}",
         f"{adaptive.saved_processing_time:,.0f}"),
    ]
    for name, s, a in rows:
        print(f"{name:<28}{s:>12}{a:>12}")

    extra = adaptive.saved_processing_time - static.saved_processing_time
    print(
        f"\nadaptive reconfiguration saved an extra {extra:,.0f}s of warehouse "
        "processing by clustering peers that analyze the same cube regions."
    )


if __name__ == "__main__":
    main()
