#!/usr/bin/env python
"""Watching the network converge: clustering and degree over time.

The paper's explanation of its gains — "as the time evolves, new beneficial
neighbors are being discovered ... the dynamic approach groups nodes with
similar content together" — is a statement about convergence. This example
attaches runtime probes to both schemes and prints the resulting curves:
taste clustering rises steadily for the dynamic scheme and stays flat for
static, while both maintain their neighbor degree.

Run with::

    python examples/convergence.py
"""

from repro.experiments.report import format_sparkline
from repro.gnutella import ClusteringProbe, DegreeProbe, FastGnutellaEngine, GnutellaConfig
from repro.types import HOUR


def main() -> None:
    config = GnutellaConfig(
        n_users=300,
        n_items=30_000,
        mean_library=100.0,
        std_library=25.0,
        horizon=24 * HOUR,
        warmup_hours=0,
        queries_per_hour=8.0,
        max_hops=2,
        seed=0,
    )

    curves = {}
    for label, cfg in (("static", config.as_static()), ("dynamic", config.as_dynamic())):
        engine = FastGnutellaEngine(cfg)
        clustering = ClusteringProbe(engine, interval=HOUR)
        degree = DegreeProbe(engine, interval=HOUR)
        print(f"running {label} scheme ...")
        engine.run()
        curves[label] = (clustering.series, degree.series)

    print("\ntaste clustering over 24 h (fraction of links joining same-genre fans)")
    for label, (clustering, _) in curves.items():
        values = clustering.values
        print(
            f"  {label:<8} {format_sparkline(values)}  "
            f"start={values[0]:.2f} end={values[-1]:.2f}"
        )

    print("\nmean neighbor degree over 24 h (capacity 4)")
    for label, (_, degree) in curves.items():
        values = degree.values
        print(
            f"  {label:<8} {format_sparkline(values)}  "
            f"min={min(values):.2f} end={values[-1]:.2f}"
        )

    dyn_end = curves["dynamic"][0].values[-1]
    sta_end = curves["static"][0].values[-1]
    print(
        f"\nafter a simulated day the dynamic network links same-genre fans "
        f"{dyn_end / max(sta_end, 1e-9):.1f}x more often than the static one — "
        "that clustering is where the extra hits come from."
    )


if __name__ == "__main__":
    main()
