#!/usr/bin/env python
"""Service mode: query a live simulated overlay over TCP.

The ``repro.serve`` front end wraps a running churn simulation in an
asyncio server speaking newline-delimited JSON. This example does, in one
process, what ``repro-serve`` + ``repro-loadgen`` do as separate CLIs:

1. start a :class:`repro.serve.QueryServer` on an ephemeral port, warmed
   up two simulated hours so the overlay has logged users in;
2. connect a :class:`repro.serve.ServeClient` and issue a few queries,
   printing the ranked hits as they come back;
3. run a half-second closed-loop load trial and print the latency tail.

Run with::

    python examples/serve_client.py
"""

import asyncio

from repro.gnutella.config import GnutellaConfig
from repro.serve import LoadgenConfig, QueryServer, ServeClient, run_closed_loop
from repro.serve.server import ServeConfig

HOUR = 3600.0


async def main() -> None:
    config = GnutellaConfig(
        n_users=60, n_items=3000, horizon=24 * HOUR, warmup_hours=0, dynamic=True
    )
    # time_rate=0 freezes simulated time between requests, which keeps this
    # example deterministic; ``repro-serve`` defaults to 600x wall clock.
    server = QueryServer(config, ServeConfig(time_rate=0.0, warmup_sim_s=2 * HOUR))
    host, port = await server.start()
    print(f"service mode: overlay of {config.n_users} users listening on {host}:{port}")

    client = await ServeClient.connect(host, port)
    info = await client.info()
    print(
        f"world: {info['online']} users online at sim t={info['sim_time'] / HOUR:.1f}h, "
        f"{info['n_items']} items in {info['n_categories']} categories"
    )

    for item in (3, 17, 150):
        reply = await client.query(item)
        print(f"query item={item}: {reply.status}, {len(reply.results)} result(s)")
        for hit in reply.results[:3]:
            print(
                f"  rank {hit['rank']}: node {hit['responder']} "
                f"at {hit['hops']} hop(s), {hit['delay_ms']:.0f} ms"
            )

    print("closed-loop trial: 2 connections, zero think time...")
    report = await run_closed_loop(
        LoadgenConfig(host=host, port=port, connections=2, duration_s=0.5)
    )
    latency = report.latency
    print(
        f"  {report.ok} queries ok, {report.achieved_qps:.0f} QPS, "
        f"hit fraction {report.hit_fraction:.2f}"
    )
    print(
        f"  latency p50={latency.p50_ms:.2f} ms  p95={latency.p95_ms:.2f} ms  "
        f"p99={latency.p99_ms:.2f} ms"
    )

    await client.close()
    await server.shutdown()
    print("server drained and stopped.")


if __name__ == "__main__":
    asyncio.run(main())
