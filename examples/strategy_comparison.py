#!/usr/bin/env python
"""Comparing search strategies inside one framework network.

Section 2 discusses Yang & Garcia-Molina's three techniques — iterative
deepening, directed BFT, local indices — and notes they are "orthogonal to
our methods and can be employed in our framework". This example runs all of
them (plus plain flooding and random-k) over the same repository network and
prints the cost/recall trade each strategy makes.

Run with::

    python examples/strategy_comparison.py
"""

import numpy as np

from repro.core import (
    LocalIndex,
    RepositoryNetwork,
    SelectRandomK,
    SelectTopKBenefit,
    SymmetricRelation,
    TTLTermination,
)
from repro.core.search import iterative_deepening_search
from repro.rng import RngStreams


def build_network(n_nodes: int = 120, items_per_node: int = 12, seed: int = 0):
    """A random symmetric network with Zipf-ish item placement."""
    streams = RngStreams(seed)
    rng = streams.get("topology")
    item_rng = streams.get("items")
    net = RepositoryNetwork(SymmetricRelation(capacity=4),
                            termination=TTLTermination(3),
                            rng=streams.get("selection"))
    n_items = 600
    for node in range(n_nodes):
        items = item_rng.zipf(1.6, size=items_per_node) % n_items
        net.add_repository(items=[int(i) for i in items])
    # Random 4-regular-ish wiring.
    for node in range(n_nodes):
        tries = 0
        while len(net.repo(node).state.outgoing) < 4 and tries < 40:
            tries += 1
            other = int(rng.integers(n_nodes))
            if other != node and net.relation.can_connect(
                net.repo(node).state, net.repo(other).state
            ):
                net.connect(node, other)
    return net


def main() -> None:
    net = build_network()
    rng = np.random.default_rng(7)
    queries = [(int(rng.integers(120)), int(rng.integers(600))) for _ in range(300)]
    queries = [
        (who, what) for who, what in queries if what not in net.repo(who).items
    ]

    def evaluate(name, search_fn):
        hits = messages = results = 0
        for who, what in queries:
            outcome = search_fn(who, what)
            hits += outcome.hit
            messages += outcome.messages
            results += outcome.result_count
        print(f"{name:<28} hits={hits:>4}/{len(queries)} "
              f"messages={messages:>7,} results={results:>5,}")

    print(f"evaluating {len(queries)} queries over a 120-node network\n")
    evaluate("flood TTL 3", lambda a, b: net.search(a, b, record_stats=False))
    evaluate(
        "random-2 TTL 3",
        lambda a, b: net.search(a, b, selection=SelectRandomK(2), record_stats=False),
    )
    # Warm the statistics so directed BFT has history to steer by.
    for who, what in queries:
        net.search(who, what)
    evaluate(
        "directed BFT (top-2) TTL 3",
        lambda a, b: net.search(a, b, selection=SelectTopKBenefit(2),
                                record_stats=False),
    )
    evaluate(
        "iterative deepening 1,2,3",
        lambda a, b: iterative_deepening_search(net, a, b, depths=(1, 2, 3)),
    )

    # Local indices: radius-1 knowledge answers some queries with zero
    # network messages at all.
    indices = {}
    for node in range(120):
        idx = LocalIndex(owner=node, radius=1)
        idx.rebuild(
            lambda n: net.repo(n).state.outgoing.as_tuple(),
            lambda n: net.repo(n).items,
        )
        indices[node] = idx
    answered_free = sum(1 for who, what in queries if indices[who].knows_holder(what))
    print(f"{'local indices (radius 1)':<28} {answered_free} of {len(queries)} "
          "queries answerable with zero messages")


if __name__ == "__main__":
    main()
