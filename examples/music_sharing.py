#!/usr/bin/env python
"""The paper's case study at example scale: static vs dynamic Gnutella.

Builds the full Section 4.2 world — Zipf music catalog, Gaussian libraries,
exponential churn, three access-bandwidth classes — at a small scale, runs
both schemes on the *identical* workload, and prints the comparison the
paper's figures make.

Run with::

    python examples/music_sharing.py
"""

from repro.analysis import compare_runs
from repro.gnutella import GnutellaConfig, run_simulation
from repro.types import HOUR


def main() -> None:
    config = GnutellaConfig(
        n_users=300,
        n_items=30_000,          # scaled with the population: ~2 copies/song
        n_categories=50,
        mean_library=100.0,
        std_library=25.0,
        horizon=24 * HOUR,
        warmup_hours=6,
        queries_per_hour=8.0,
        max_hops=2,              # the Figure 1 setting
        neighbor_slots=4,
        reconfiguration_threshold=2,
        seed=0,
    )

    print("running static Gnutella (random neighbors) ...")
    static = run_simulation(config.as_static())
    print("running dynamic Gnutella (framework reconfiguration) ...")
    dynamic = run_simulation(config.as_dynamic())

    print("\n--- static vs dynamic, after the warm-up period ---")
    print(f"{'metric':<28}{'static':>15}{'dynamic':>15}{'change':>9}")
    for row in compare_runs(static, dynamic):
        print(row.format())

    print(
        f"\nwhy it works: {dynamic.taste_clustering:.0%} of dynamic links join "
        f"users with the same favorite genre (static: "
        f"{static.taste_clustering:.0%}) — the framework groups nodes with "
        "similar content together, so queries resolve nearby."
    )
    print(
        f"reconfigurations performed: {dynamic.metrics.reconfigurations:,} "
        f"({dynamic.metrics.invitations:,} invitations, "
        f"{dynamic.metrics.evictions:,} evictions)"
    )


if __name__ == "__main__":
    main()
