"""Legacy setup shim.

This environment has setuptools but no ``wheel`` package (and no network to
fetch it), so PEP 517 editable installs fail with ``invalid command
'bdist_wheel'``. Keeping a minimal ``setup.py`` lets
``pip install -e . --no-build-isolation --no-use-pep517`` use the legacy
develop path. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
