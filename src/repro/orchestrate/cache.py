"""Content-addressed on-disk cache of simulation results.

A completed :class:`~repro.gnutella.simulation.SimulationResult` is stored
under a SHA-256 key derived from everything that determines it:

* the canonical JSON rendering of the full :class:`GnutellaConfig` (every
  field, including the seed),
* the engine name (``fast`` / ``detailed``),
* the package version, and
* a fingerprint of the simulation source code itself (every ``.py`` file of
  the deterministic subpackages), so editing the engine during development
  invalidates stale entries instead of silently serving them.

Because simulations are pure functions of their configuration, the cache
needs no expiry or dependency tracking: a key either holds the one true
result or nothing. Entries are a pickle (full fidelity, numpy arrays and
all) plus a small human-readable ``.json`` sidecar describing what the
opaque key means. Writes go through a temp file and :func:`os.replace`, so
a crashed or interrupted grid never leaves a truncated entry behind —
re-running the grid simply resumes from the entries that completed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Any, Mapping

from repro._version import __version__
from repro.analysis.export import canonical_json, write_json
from repro.gnutella.config import GnutellaConfig
from repro.gnutella.simulation import SimulationResult

__all__ = ["ResultCache", "code_fingerprint", "task_key"]

#: Subpackages (and top-level modules) whose source participates in the
#: cache key — the code that can change what a simulation produces. Mirrors
#: ``repro.lint.rules.DETERMINISTIC_PACKAGES`` plus their shared substrate.
FINGERPRINTED = (
    "core",
    "sim",
    "net",
    "gnutella",
    "workload",
    "rng.py",
    "types.py",
    "errors.py",
)


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over the simulation-relevant source files of this install.

    Stable for a given checkout; any edit to the engines, kernel, network
    models, or workload generators changes it and thereby invalidates every
    cached result. Hashing the ~100 files costs a few milliseconds, paid
    once per process.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for entry in FINGERPRINTED:
        target = package_root / entry
        files = sorted(target.rglob("*.py")) if target.is_dir() else [target]
        for path in files:
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
    return digest.hexdigest()


def task_key(
    config: GnutellaConfig, engine: str = "fast", *, fingerprint: str | None = None
) -> str:
    """The content address of the simulation ``(config, engine)`` denotes.

    Two invocations agree iff they would produce the same result: same
    configuration (field by field), same engine, same package version, same
    simulation source. ``fingerprint`` overrides the source fingerprint —
    tests use a constant to get machine-independent expectations.
    """
    payload = {
        "config": dataclasses.asdict(config),
        "engine": engine,
        "version": __version__,
        "code": fingerprint if fingerprint is not None else code_fingerprint(),
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed simulation results.

    Layout: ``root/<key[:2]>/<key>.pkl`` (the pickled result) next to
    ``<key>.json`` (a human-readable description: scheme, preset-scale
    fields, digests, timing). The two-character shard keeps directories
    small on grids with thousands of tasks.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Runtime tallies for this process's use of the cache. Volatile by
        #: nature (they depend on what happened to be cached when the run
        #: started), so the manifest carries them in a ``stable_view()``-
        #: stripped block only.
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def _entry(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        return self._entry(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def get(self, key: str) -> SimulationResult | None:
        """The cached result under ``key``, or ``None``.

        Unreadable or corrupt entries (interrupted writes predating the
        atomic-replace scheme, disk faults, unpicklable schema drift) are
        treated as misses, never as errors — the orchestrator simply
        recomputes and overwrites them.
        """
        try:
            with self._entry(key).open("rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.misses += 1
            return None
        if isinstance(result, SimulationResult):
            self.hits += 1
            return result
        self.misses += 1
        return None

    def stats(self) -> dict[str, int]:
        """This process's lookup/store tallies (see ``__init__``)."""
        return {
            "lookups": self.hits + self.misses,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
        }

    def put(self, key: str, result: SimulationResult, meta: Mapping[str, Any]) -> None:
        """Store ``result`` under ``key`` atomically, with a JSON sidecar."""
        self.puts += 1
        entry = self._entry(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=entry.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, entry)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise
        write_json(dict(meta), entry.with_suffix(".json"))
