"""``python -m repro.orchestrate`` — alias of the ``repro-orchestrate`` CLI."""

import sys

from repro.orchestrate.cli import main

if __name__ == "__main__":
    sys.exit(main())
