"""Command-line entry point: run a declarative experiment grid.

Usage::

    repro-orchestrate --figures fig1,fig3b --preset smoke --seeds 0-3 --jobs 4
    repro-orchestrate --figures all --preset paper --jobs 8 \\
        --cache-dir .repro-cache --manifest runs/paper.json
    python -m repro.orchestrate --figures replicate --seeds 0 --replicates 10

``repro-experiments`` covers the common single-figure cases; this CLI is
the full grid surface (multiple figures × multiple seeds × config
overrides), with the same cache and manifest machinery underneath.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.export import write_json
from repro.errors import ConfigurationError
from repro.orchestrate.cache import ResultCache
from repro.orchestrate.grid import FIGURES, GridOutcome, expand_grid, run_grid
from repro.orchestrate.manifest import build_manifest, write_manifest
from repro.orchestrate.progress import ProgressPrinter

__all__ = [
    "build_parser",
    "default_cache_dir",
    "main",
    "parse_figures",
    "parse_overrides",
    "parse_seeds",
]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro-cache`` under the cwd."""
    return Path(os.environ.get(CACHE_DIR_ENV) or ".repro-cache")


def parse_figures(spec: str) -> tuple[str, ...]:
    """``"fig1,fig3b"`` → figure names; ``"all"`` → every paper figure.

    ``all`` matches ``repro-experiments all``: the four figures, with
    ``replicate`` staying opt-in.
    """
    if spec == "all":
        return tuple(name for name in FIGURES if name != "replicate")
    figures = tuple(part.strip() for part in spec.split(",") if part.strip())
    for figure in figures:
        if figure not in FIGURES:
            raise ConfigurationError(
                f"unknown figure {figure!r}; choose from {FIGURES} or 'all'"
            )
    if not figures:
        raise ConfigurationError("no figures requested")
    return figures


def parse_seeds(spec: str) -> tuple[int, ...]:
    """``"0,5,7"`` and/or ranges ``"0-3"`` → an ordered seed tuple."""
    seeds: list[int] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        lo, dash, hi = part.partition("-")
        try:
            if dash and lo:  # "a-b" range (a leading '-' is a negative seed)
                start, stop = int(lo), int(hi)
                if stop < start:
                    raise ConfigurationError(f"empty seed range {part!r}")
                seeds.extend(range(start, stop + 1))
            else:
                seeds.append(int(part))
        except ValueError:
            raise ConfigurationError(f"malformed seed {part!r}") from None
    if not seeds:
        raise ConfigurationError(f"no seeds in {spec!r}")
    if len(set(seeds)) != len(seeds):
        raise ConfigurationError(f"duplicate seeds in {spec!r}")
    return tuple(seeds)


def parse_overrides(pairs: Sequence[str]) -> dict[str, Any]:
    """``["horizon=14400", "benefit=hit-count"]`` → typed config overrides.

    Values parse as Python literals where possible (ints, floats, booleans,
    ``None``) and fall back to plain strings (strategy/benefit names).
    """
    overrides: dict[str, Any] = {}
    for pair in pairs:
        name, eq, raw = pair.partition("=")
        if not eq or not name:
            raise ConfigurationError(f"overrides take the form key=value, got {pair!r}")
        try:
            value: Any = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            value = raw
        overrides[name] = value
    return overrides


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-orchestrate",
        description=(
            "Expand a (figure x preset x seed x overrides) grid into "
            "simulation tasks, run them in parallel with content-addressed "
            "result caching, and write a run manifest."
        ),
    )
    parser.add_argument(
        "--figures",
        default="all",
        help="comma-separated figure names (fig1,fig2,fig3a,fig3b,replicate) "
        "or 'all' (default; excludes replicate)",
    )
    parser.add_argument(
        "--preset",
        default="scaled",
        help="world size: paper, scaled (default), smoke",
    )
    parser.add_argument(
        "--seeds",
        default="0",
        help="root seeds: comma list and/or ranges, e.g. '0,1' or '0-3' (default 0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for cache misses (default 1 = run inline)",
    )
    parser.add_argument(
        "--replicates",
        type=int,
        default=5,
        metavar="N",
        help="seeds per 'replicate' job (default 5)",
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="GnutellaConfig override applied to every task (repeatable)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=f"result cache location (default ${CACHE_DIR_ENV} or .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache entirely",
    )
    parser.add_argument(
        "--hash-events",
        action="store_true",
        help="also record each task's kernel event-stream SHA-256 "
        "(repro.lint.sanitize) in the manifest",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="write the JSON run manifest to PATH",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write each figure's result as JSON (a '-<figure>' suffix is "
        "added when the grid holds more than one job)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress figure reports and progress lines",
    )
    return parser


def grid_metadata(args: argparse.Namespace, overrides: Mapping[str, Any]) -> dict[str, Any]:
    """The manifest's ``grid`` block for this invocation."""
    return {
        "figures": list(parse_figures(args.figures)),
        "preset": args.preset,
        "seeds": list(parse_seeds(args.seeds)),
        "replicates": args.replicates,
        "overrides": dict(overrides),
    }


def _json_target(base: str, label: str, multiple: bool) -> str:
    """Derive a per-figure export path from the shared ``--json`` base."""
    if not multiple:
        return base
    suffix = label.replace("/", "-").replace("=", "")
    stem, dot, ext = base.rpartition(".")
    return f"{stem}-{suffix}.{ext}" if dot else f"{base}-{suffix}"


def report_outcome(
    outcome: GridOutcome, args: argparse.Namespace
) -> bool:
    """Print reports / exports for every figure; True if any failed."""
    failed = False
    multiple = len(outcome.figures) > 1
    for figure in outcome.figures:
        if figure.error is not None:
            print(f"[{figure.job.label} FAILED: {figure.error}]", file=sys.stderr)
            failed = True
            continue
        if not args.quiet:
            figure.job.print_report(figure.result)
            print()
        if args.json:
            target = _json_target(args.json, figure.job.label, multiple)
            written = write_json(figure.result, target)
            if not args.quiet:
                print(f"[json written to {written}]")
    return failed


def main(argv: Sequence[str] | None = None) -> int:
    """Run the requested grid; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        figures = parse_figures(args.figures)
        seeds = parse_seeds(args.seeds)
        overrides = parse_overrides(args.overrides)
        jobs = expand_grid(
            figures,
            args.preset,
            seeds,
            replicates=args.replicates,
            overrides=overrides or None,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache: ResultCache | None = None
    cache_dir: str | None = None
    if not args.no_cache:
        cache_dir = str(args.cache_dir if args.cache_dir else default_cache_dir())
        cache = ResultCache(cache_dir)
    progress = ProgressPrinter(enabled=not args.quiet)
    outcome = run_grid(
        jobs,
        jobs=args.jobs,
        cache=cache,
        hash_events=args.hash_events,
        progress=progress,
        on_error="record",
    )
    run = outcome.run
    progress.summary(run.cache_hits, run.executed, len(run.errors), run.wall_s)
    failed = report_outcome(outcome, args)
    if args.manifest:
        manifest = build_manifest(
            grid=grid_metadata(args, overrides),
            jobs=args.jobs,
            records=list(run.records),
            cache_dir=cache_dir,
            wall_s=run.wall_s,
            cache_stats=cache.stats() if cache is not None else None,
        )
        written = write_manifest(manifest, args.manifest)
        if not args.quiet:
            print(f"[manifest written to {written}]")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
