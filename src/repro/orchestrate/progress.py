"""Live progress reporting for grid runs.

Progress goes to ``stderr`` so figure reports and JSON on ``stdout`` stay
machine-consumable; each completed task prints one line in completion order
(the manifest, not this stream, is the deterministic record).
"""

from __future__ import annotations

import sys
from typing import TextIO

from repro.orchestrate.pool import TaskRecord

__all__ = ["ProgressPrinter"]


class ProgressPrinter:
    """Prints one status line per finished task plus a final summary.

    Matches the :data:`repro.orchestrate.pool.ProgressFn` signature — pass
    an instance directly as ``progress=``.
    """

    def __init__(self, stream: TextIO | None = None, enabled: bool = True) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.seen = 0

    def __call__(self, record: TaskRecord, done: int, total: int) -> None:
        self.seen = done
        if not self.enabled:
            return
        width = len(str(total))
        if record.error is not None:
            status = "FAIL"
            detail = record.error
        elif record.cache_hit:
            status = "hit "
            detail = "cached"
        else:
            status = "run "
            detail = f"{record.elapsed_s:.1f}s"
        print(
            f"[{done:>{width}}/{total}] {status} {record.task_id} ({detail})",
            file=self.stream,
            flush=True,
        )

    def summary(self, hits: int, executed: int, errors: int, wall_s: float) -> None:
        """Print the closing one-line tally."""
        if not self.enabled:
            return
        print(
            f"orchestrated {self.seen} task(s) in {wall_s:.1f}s: "
            f"{hits} cache hit(s), {executed} executed, {errors} error(s)",
            file=self.stream,
            flush=True,
        )
