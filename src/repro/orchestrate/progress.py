"""Live progress reporting for grid runs.

Progress goes to ``stderr`` so figure reports and JSON on ``stdout`` stay
machine-consumable; each completed task prints one line in completion order
(the manifest, not this stream, is the deterministic record).
"""

from __future__ import annotations

import sys
from time import perf_counter
from typing import TextIO

from repro.orchestrate.pool import TaskRecord

__all__ = ["ProgressPrinter"]


class ProgressPrinter:
    """Prints one status line per finished task plus a final summary.

    Each line carries the task's own wall seconds and a running ETA for the
    rest of the grid (wall time so far divided by tasks done, times tasks
    remaining — crude but self-correcting as the grid drains). Matches the
    :data:`repro.orchestrate.pool.ProgressFn` signature — pass an instance
    directly as ``progress=``.
    """

    def __init__(self, stream: TextIO | None = None, enabled: bool = True) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.seen = 0
        #: Running cache tallies over the records seen so far; every line
        #: carries them so a stalled grid still shows how much of the work
        #: the cache is absorbing.
        self.hits = 0
        self.misses = 0
        self._started = perf_counter()

    def _eta(self, done: int, total: int) -> str:
        remaining = total - done
        if done <= 0 or remaining <= 0:
            return ""
        per_task = (perf_counter() - self._started) / done
        eta_s = per_task * remaining
        if eta_s >= 90.0:
            return f" eta {eta_s / 60.0:.1f}m"
        return f" eta {eta_s:.0f}s"

    def __call__(self, record: TaskRecord, done: int, total: int) -> None:
        self.seen = done
        if record.cache_hit:
            self.hits += 1
        else:
            self.misses += 1
        if not self.enabled:
            return
        width = len(str(total))
        if record.error is not None:
            status = "FAIL"
            detail = record.error
        elif record.cache_hit:
            status = "hit "
            detail = f"cached, {record.elapsed_s:.1f}s"
        else:
            status = "run "
            detail = f"{record.elapsed_s:.1f}s"
        print(
            f"[{done:>{width}}/{total}] {status} {record.task_id} "
            f"({detail}) [cache {self.hits}h/{self.misses}m]"
            f"{self._eta(done, total)}",
            file=self.stream,
            flush=True,
        )

    def summary(self, hits: int, executed: int, errors: int, wall_s: float) -> None:
        """Print the closing one-line tally."""
        if not self.enabled:
            return
        print(
            f"orchestrated {self.seen} task(s) in {wall_s:.1f}s: "
            f"{hits} cache hit(s), {executed} executed, {errors} error(s)",
            file=self.stream,
            flush=True,
        )
