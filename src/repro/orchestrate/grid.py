"""Declarative job grids: (figure × preset × seed × overrides) → tasks.

A grid names *figures*; each figure's ``plan()`` names the simulations it
needs. Expansion flattens the grid into namespaced requests, deduplicates
them by content key (shared simulations run once for the whole grid), and
``run_grid`` executes the unique tasks through :mod:`repro.orchestrate.pool`
before handing each figure its slice of results to ``assemble``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.experiments import figure1, figure2, figure3a, figure3b, multiseed
from repro.experiments.common import SimRequest
from repro.gnutella.simulation import SimulationResult
from repro.orchestrate.cache import ResultCache
from repro.orchestrate.pool import (
    GridRun,
    ProgressFn,
    SimTask,
    requests_to_tasks,
    run_tasks,
)

__all__ = [
    "FIGURES",
    "FigureJob",
    "FigureOutcome",
    "GridOutcome",
    "expand_grid",
    "grid_tasks",
    "plan_figure",
    "run_grid",
]

#: Grid-runnable figure names, in report order.
FIGURES = ("fig1", "fig2", "fig3a", "fig3b", "replicate")


@dataclass(frozen=True)
class FigureJob:
    """One figure instance of a grid: its requests plus how to finish it."""

    figure: str
    label: str
    requests: tuple[SimRequest, ...]
    assemble: Callable[[Mapping[str, SimulationResult]], Any]
    print_report: Callable[[Any], None]


@dataclass(frozen=True)
class FigureOutcome:
    """A figure's assembled result, or the error that prevented it.

    ``keys`` are the content keys of the tasks this figure consumed, in plan
    order — the join between a figure and the manifest's task records.
    """

    job: FigureJob
    result: Any | None
    error: str | None
    keys: tuple[str, ...] = ()


@dataclass(frozen=True)
class GridOutcome:
    """Everything a grid run produced: task bookkeeping plus figure results."""

    run: GridRun
    figures: tuple[FigureOutcome, ...]

    @property
    def failed(self) -> bool:
        """Whether any figure failed to materialize."""
        return any(outcome.error is not None for outcome in self.figures)


def plan_figure(
    figure: str,
    preset: str,
    seed: int = 0,
    *,
    replicates: int = 5,
    overrides: Mapping[str, object] | None = None,
) -> FigureJob:
    """Build one figure's job: its simulation plan plus assembly closures."""
    label = f"{figure}/{preset}/seed={seed}"
    if figure == "fig1":
        requests = figure1.plan(preset, seed=seed, overrides=overrides)

        def assemble_fig1(results: Mapping[str, SimulationResult]) -> Any:
            return figure1.assemble(results, preset=preset)

        return FigureJob(figure, label, requests, assemble_fig1, figure1.print_report)
    if figure == "fig2":
        requests = figure2.plan(preset, seed=seed, overrides=overrides)

        def assemble_fig2(results: Mapping[str, SimulationResult]) -> Any:
            return figure2.assemble(results, preset=preset)

        return FigureJob(figure, label, requests, assemble_fig2, figure2.print_report)
    if figure == "fig3a":
        requests = figure3a.plan(preset, seed=seed, overrides=overrides)

        def assemble_fig3a(results: Mapping[str, SimulationResult]) -> Any:
            return figure3a.assemble(results, preset=preset, seed=seed)

        return FigureJob(figure, label, requests, assemble_fig3a, figure3a.print_report)
    if figure == "fig3b":
        requests = figure3b.plan(preset, seed=seed, overrides=overrides)

        def assemble_fig3b(results: Mapping[str, SimulationResult]) -> Any:
            return figure3b.assemble(results, preset=preset, seed=seed)

        return FigureJob(figure, label, requests, assemble_fig3b, figure3b.print_report)
    if figure == "replicate":
        seeds = tuple(range(seed, seed + replicates))
        requests = multiseed.plan(preset, seeds=seeds, overrides=overrides)

        def assemble_replicate(results: Mapping[str, SimulationResult]) -> Any:
            return multiseed.assemble(results, preset=preset, seeds=seeds)

        return FigureJob(
            figure, label, requests, assemble_replicate, multiseed.print_report
        )
    raise ConfigurationError(f"unknown figure {figure!r}; choose from {FIGURES}")


def expand_grid(
    figures: Sequence[str],
    preset: str,
    seeds: Sequence[int] = (0,),
    *,
    replicates: int = 5,
    overrides: Mapping[str, object] | None = None,
) -> tuple[FigureJob, ...]:
    """Every (figure × seed) job of the grid, figures varying fastest."""
    if not figures:
        raise ConfigurationError("grid needs at least one figure")
    if not seeds:
        raise ConfigurationError("grid needs at least one seed")
    jobs = [
        plan_figure(figure, preset, seed, replicates=replicates, overrides=overrides)
        for seed in seeds
        for figure in figures
    ]
    labels = [job.label for job in jobs]
    if len(set(labels)) != len(labels):
        raise ConfigurationError(f"grid expands to duplicate jobs: {labels}")
    return tuple(jobs)


def grid_tasks(
    jobs: Sequence[FigureJob],
) -> tuple[tuple[SimTask, ...], dict[str, dict[str, str]]]:
    """Deduplicate all jobs' requests into content-unique tasks.

    Returns ``(tasks, {job.label: {request.key: content_key}})`` — the
    mapping each figure needs to find its results again after shared
    simulations (e.g. Figure 1's pair inside Figure 3(a)'s sweep) collapse.
    """
    namespaced = [
        SimRequest(f"{job.label}/{request.key}", request.config, request.engine)
        for job in jobs
        for request in job.requests
    ]
    tasks, flat = requests_to_tasks(namespaced)
    per_job = {
        job.label: {
            request.key: flat[f"{job.label}/{request.key}"] for request in job.requests
        }
        for job in jobs
    }
    return tasks, per_job


def run_grid(
    figure_jobs: Sequence[FigureJob],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    hash_events: bool = False,
    progress: ProgressFn | None = None,
    on_error: str = "record",
) -> GridOutcome:
    """Execute a grid end to end: dedupe, fan out, cache, assemble.

    With ``on_error="record"`` (the default) a failing simulation takes
    down only the figures that needed it; the rest of the grid completes
    and the failure is reported on the outcome.
    """
    tasks, per_job = grid_tasks(figure_jobs)
    run = run_tasks(
        tasks,
        jobs=jobs,
        cache=cache,
        hash_events=hash_events,
        progress=progress,
        on_error=on_error,
    )
    outcomes: list[FigureOutcome] = []
    for job in figure_jobs:
        key_map = per_job[job.label]
        keys = tuple(key_map[request.key] for request in job.requests)
        broken = sorted(key for key in keys if key in run.errors)
        if broken:
            outcomes.append(FigureOutcome(job, None, run.errors[broken[0]], keys))
            continue
        results = {request_key: run.results[key] for request_key, key in key_map.items()}
        try:
            outcomes.append(FigureOutcome(job, job.assemble(results), None, keys))
        except Exception as exc:
            if on_error == "raise":
                raise
            outcomes.append(
                FigureOutcome(job, None, f"{type(exc).__name__}: {exc}", keys)
            )
    return GridOutcome(run=run, figures=tuple(outcomes))
