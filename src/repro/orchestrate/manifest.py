"""Run manifests: a JSON record of what a grid executed and why.

One manifest per grid invocation, written through
:func:`repro.analysis.export.write_json` so it lands next to (and diffs
like) the figure exports. Everything except the ``timing``/``host`` blocks
and the per-task ``elapsed_s`` fields is a pure function of the grid and the
code — :func:`stable_view` projects a manifest down to exactly that
deterministic core, which is what the serial-vs-parallel determinism test
compares byte for byte.
"""

from __future__ import annotations

import os
import platform
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro._version import __version__
from repro.analysis.export import write_json
from repro.orchestrate.pool import TaskRecord

__all__ = ["MANIFEST_SCHEMA", "build_manifest", "stable_view", "write_manifest"]

#: Schema tag stamped into every manifest (bump on incompatible layout).
MANIFEST_SCHEMA = "repro.orchestrate/manifest/v1"

#: Per-task fields that vary between otherwise identical runs. ``phases``
#: holds wall-clock profile timings — observability, not computation.
_VOLATILE_TASK_FIELDS = frozenset({"elapsed_s", "phases"})
#: Top-level blocks/fields describing the machine or the execution width,
#: not the computation — ``jobs`` is here because parallelism must not
#: change what a grid computes, only how fast; ``obs`` holds aggregate
#: wall-clock phase totals.
_VOLATILE_BLOCKS = frozenset({"timing", "host", "jobs", "obs"})
#: Cache fields tied to a run-local location or this process's runtime
#: behaviour rather than the computation. ``runtime`` holds the
#: :meth:`repro.orchestrate.cache.ResultCache.stats` tallies — what this
#: invocation actually looked up and stored, which depends on the cache
#: state the run started from.
_VOLATILE_CACHE_FIELDS = frozenset({"dir", "runtime"})


def _aggregate_phases(records: Sequence[TaskRecord]) -> dict[str, Any]:
    """Sum the per-task phase timings into one grid-level profile."""
    from repro.obs.profile import PhaseTimers

    totals = PhaseTimers()
    for record in records:
        if record.phases:
            totals.merge(record.phases)
    return totals.as_dict()


def _aggregate_telemetry(records: Sequence[TaskRecord]) -> dict[str, Any]:
    """Fold the per-task registry snapshots into one cross-process view.

    Each worker (or the cache-hit path) emits a plain-dict
    :class:`~repro.obs.registry.MetricsRegistry` snapshot on its record;
    :func:`repro.obs.telemetry.merge_snapshots` sums counters and buckets
    and merges distribution moments across them. Per-task snapshots are
    deterministic, so this aggregate is identical for ``jobs=1`` and
    ``jobs=N`` — the equality the orchestration determinism test asserts.
    """
    from repro.obs.telemetry import merge_snapshots

    return merge_snapshots([r.metrics for r in records if r.metrics])


def build_manifest(
    *,
    grid: Mapping[str, Any],
    jobs: int,
    records: Sequence[TaskRecord],
    cache_dir: str | None,
    wall_s: float,
    cache_stats: Mapping[str, int] | None = None,
) -> dict[str, Any]:
    """Assemble the manifest document for one completed grid run."""
    return {
        "schema": MANIFEST_SCHEMA,
        "version": __version__,
        "grid": dict(grid),
        "jobs": jobs,
        "tasks": [
            {
                "task_id": record.task_id,
                "key": record.key,
                "engine": record.engine,
                "cache_hit": record.cache_hit,
                "elapsed_s": record.elapsed_s,
                "result_digest": record.result_digest,
                "event_digest": record.event_digest,
                "error": record.error,
                "phases": record.phases,
                "convergence": record.convergence,
            }
            for record in records
        ],
        "obs": {
            "phases": _aggregate_phases(records),
            "telemetry": _aggregate_telemetry(records),
        },
        "cache": {
            "dir": cache_dir,
            "enabled": cache_dir is not None,
            "hits": sum(1 for r in records if r.cache_hit),
            "executed": sum(1 for r in records if not r.cache_hit and r.error is None),
            "errors": sum(1 for r in records if r.error is not None),
            # Raw ResultCache lookup/store tallies; volatile (stripped by
            # stable_view) since they depend on pre-existing cache state.
            "runtime": dict(cache_stats) if cache_stats is not None else None,
        },
        "timing": {"wall_s": wall_s},
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
    }


def stable_view(manifest: Mapping[str, Any]) -> dict[str, Any]:
    """The manifest minus every machine- or run-local field.

    Two runs of the same grid against the same code must produce equal
    stable views regardless of ``--jobs``, host speed, or where the cache
    lives — the serial-vs-parallel determinism contract. (``cache_hit``
    flags stay: they are deterministic given the cache state the run
    started from.)
    """
    view: dict[str, Any] = {}
    for block, value in manifest.items():
        if block in _VOLATILE_BLOCKS:
            continue
        if block == "tasks":
            view[block] = [
                {k: v for k, v in task.items() if k not in _VOLATILE_TASK_FIELDS}
                for task in value
            ]
        elif block == "cache":
            view[block] = {
                k: v for k, v in value.items() if k not in _VOLATILE_CACHE_FIELDS
            }
        else:
            view[block] = value
    return view


def write_manifest(manifest: Mapping[str, Any], path: str | Path) -> Path:
    """Serialize ``manifest`` to ``path`` as indented, sorted JSON."""
    return write_json(dict(manifest), path)
