"""Task execution: cache lookups plus process-pool fan-out.

Every task is an independent simulation — its configuration carries its own
root seed, and :func:`repro.gnutella.simulation.simulate_task` derives every
RNG stream from that seed — so executing tasks in parallel produces results
bit-identical to a serial run. The only ordering this module imposes is on
*bookkeeping*: records come back in task order regardless of completion
order, which is what makes two manifests from ``jobs=1`` and ``jobs=8``
comparable byte for byte (modulo timing).

Failure policy: ``on_error="raise"`` propagates the first worker exception;
``on_error="record"`` captures it on the task's record so sibling figures of
an ``all`` run still complete (the CLI exit code reflects the failure).
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.export import canonical_json, result_to_jsonable
from repro.errors import ConfigurationError
from repro.experiments.common import SimRequest
from repro.gnutella.config import GnutellaConfig
from repro.gnutella.simulation import SimulationResult, simulate_profiled
from repro.obs.registry import MetricsRegistry, bind_simulation_metrics
from repro.orchestrate.cache import ResultCache, task_key

__all__ = [
    "GridRun",
    "ProgressFn",
    "SimTask",
    "TaskRecord",
    "requests_to_tasks",
    "result_digest",
    "run_requests",
    "run_tasks",
    "task_metrics_snapshot",
]

#: Progress callback signature: ``(record, done_count, total_count)``.
ProgressFn = Callable[["TaskRecord", int, int], None]


@dataclass(frozen=True, slots=True)
class SimTask:
    """One content-unique simulation of a grid.

    ``task_id`` is the human label (``fig1/smoke/seed=0/static``); ``key``
    is the content address from :func:`repro.orchestrate.cache.task_key`.
    """

    task_id: str
    key: str
    config: GnutellaConfig
    engine: str = "fast"


@dataclass(frozen=True, slots=True)
class TaskRecord:
    """What happened to one task: provenance for the run manifest."""

    task_id: str
    key: str
    engine: str
    cache_hit: bool
    elapsed_s: float
    result_digest: str = ""
    event_digest: str | None = None
    error: str | None = None
    #: Wall-clock phase timings from the worker (``repro.obs`` PhaseTimers
    #: ``as_dict()``); ``None`` for cache hits and failures. Volatile — the
    #: manifest's ``stable_view`` strips it like ``elapsed_s``.
    phases: dict | None = None
    #: Convergence diagnostics (:mod:`repro.obs.convergence` report dict)
    #: from the result. Deterministic — unlike ``phases``, it stays in the
    #: manifest's ``stable_view``.
    convergence: dict | None = None
    #: Per-task :class:`~repro.obs.registry.MetricsRegistry` snapshot,
    #: produced in the worker process (or rebuilt from the cached result on
    #: a hit). ``None`` on failure. The manifest folds these into one
    #: cross-process aggregate via ``repro.obs.telemetry.merge_snapshots``.
    metrics: dict | None = None


@dataclass(frozen=True)
class GridRun:
    """A completed grid: per-task records plus the results keyed by content."""

    records: tuple[TaskRecord, ...]
    results: dict[str, SimulationResult] = field(repr=False)
    wall_s: float = 0.0

    @property
    def cache_hits(self) -> int:
        """How many tasks were served from the cache."""
        return sum(1 for r in self.records if r.cache_hit)

    @property
    def executed(self) -> int:
        """How many simulations actually ran."""
        return sum(1 for r in self.records if not r.cache_hit and r.error is None)

    @property
    def errors(self) -> dict[str, str]:
        """Failed task keys mapped to their error descriptions."""
        return {r.key: r.error for r in self.records if r.error is not None}


def result_digest(result: SimulationResult) -> str:
    """A SHA-256 digest of everything a result reports.

    Covers the full configuration, the headline metrics, and the complete
    hourly hit/message/query series (the summary alone would be too lossy a
    determinism check). Stable across processes and hosts for identical
    runs — the serial-vs-parallel equality the determinism tests assert.
    """
    metrics = result.metrics
    payload = {
        "result": result_to_jsonable(result),
        "hits_hourly": metrics.hits_series(0)[1].tolist(),
        "messages_hourly": metrics.messages_series(0)[1].tolist(),
        "queries_hourly": metrics.queries.series(skip=0)[1].tolist(),
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def requests_to_tasks(
    requests: Sequence[SimRequest], prefix: str = ""
) -> tuple[tuple[SimTask, ...], dict[str, str]]:
    """Deduplicate figure requests into content-unique tasks.

    Returns ``(tasks, request_key -> content_key)``. Requests whose configs
    digest identically collapse onto one task (first occurrence wins the
    ``task_id``), which is how e.g. Figure 1's TTL-2 pair and Figure 3(a)'s
    ``hops=2`` column become a single simulation.
    """
    tasks: dict[str, SimTask] = {}
    mapping: dict[str, str] = {}
    for request in requests:
        if request.key in mapping:
            raise ConfigurationError(f"duplicate request key {request.key!r}")
        key = task_key(request.config, request.engine)
        mapping[request.key] = key
        if key not in tasks:
            task_id = f"{prefix}{request.key}" if prefix else request.key
            tasks[key] = SimTask(task_id, key, request.config, request.engine)
    return tuple(tasks.values()), mapping


def task_metrics_snapshot(result: SimulationResult) -> dict:
    """A registry snapshot of one result's metrics, built where the task ran.

    Binds the result's :class:`~repro.gnutella.metrics.SimulationMetrics`
    into a throwaway :class:`~repro.obs.registry.MetricsRegistry` and
    snapshots it immediately — a plain-dict, picklable emission each worker
    process ships home so the parent can fold every task into one aggregate
    (``repro.obs.telemetry.merge_snapshots``) without holding live metric
    objects across process boundaries. Deterministic for a given result, so
    serial and parallel runs emit identical snapshots.
    """
    registry = MetricsRegistry()
    bind_simulation_metrics(registry, result.metrics)
    return registry.snapshot()


def _execute(
    config: GnutellaConfig, engine: str, hash_events: bool
) -> tuple[SimulationResult, str | None, float, dict, dict]:
    """Worker body: run one simulation, timed and phase-profiled (in the child)."""
    started = time.perf_counter()
    result, event_digest, phases = simulate_profiled(
        config, engine, hash_events=hash_events
    )
    elapsed = time.perf_counter() - started
    return result, event_digest, elapsed, phases, task_metrics_snapshot(result)


def run_tasks(
    tasks: Sequence[SimTask],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    hash_events: bool = False,
    progress: ProgressFn | None = None,
    on_error: str = "raise",
) -> GridRun:
    """Execute ``tasks``: cache lookups first, then fan out the misses.

    ``jobs=1`` executes inline (no pool, no pickling) — the reference serial
    path the parallel one must match bit for bit. Results and records come
    back in task order regardless of ``jobs``.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if on_error not in ("raise", "record"):
        raise ConfigurationError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    if len({task.key for task in tasks}) != len(tasks):
        raise ConfigurationError("task keys must be unique; dedupe first")
    started = time.perf_counter()
    results: dict[str, SimulationResult] = {}
    records: dict[str, TaskRecord] = {}
    done = 0

    def note(record: TaskRecord) -> None:
        nonlocal done
        records[record.key] = record
        done += 1
        if progress is not None:
            progress(record, done, len(tasks))

    misses: list[SimTask] = []
    for task in tasks:
        cached = cache.get(task.key) if cache is not None else None
        if cached is None:
            misses.append(task)
            continue
        results[task.key] = cached
        note(
            TaskRecord(
                task_id=task.task_id,
                key=task.key,
                engine=task.engine,
                cache_hit=True,
                elapsed_s=0.0,
                result_digest=result_digest(cached),
                convergence=getattr(cached, "convergence", None),
                metrics=task_metrics_snapshot(cached),
            )
        )

    def complete(
        task: SimTask,
        outcome: tuple[SimulationResult, str | None, float, dict, dict],
    ) -> None:
        result, event_digest, elapsed, phases, metrics_snapshot = outcome
        digest = result_digest(result)
        results[task.key] = result
        if cache is not None:
            cache.put(
                task.key,
                result,
                {
                    "task_id": task.task_id,
                    "engine": task.engine,
                    "scheme": result.scheme,
                    "seed": task.config.seed,
                    "n_users": task.config.n_users,
                    "horizon_s": task.config.horizon,
                    "result_digest": digest,
                    "event_digest": event_digest,
                    "elapsed_s": elapsed,
                },
            )
        note(
            TaskRecord(
                task_id=task.task_id,
                key=task.key,
                engine=task.engine,
                cache_hit=False,
                elapsed_s=elapsed,
                result_digest=digest,
                event_digest=event_digest,
                phases=phases,
                convergence=result.convergence,
                metrics=metrics_snapshot,
            )
        )

    def fail(task: SimTask, exc: BaseException) -> None:
        if on_error == "raise":
            raise exc
        note(
            TaskRecord(
                task_id=task.task_id,
                key=task.key,
                engine=task.engine,
                cache_hit=False,
                elapsed_s=0.0,
                error=f"{type(exc).__name__}: {exc}",
            )
        )

    if misses and (jobs == 1 or len(misses) == 1):
        for task in misses:
            try:
                outcome = _execute(task.config, task.engine, hash_events)
            except Exception as exc:
                fail(task, exc)
            else:
                complete(task, outcome)
    elif misses:
        with ProcessPoolExecutor(max_workers=min(jobs, len(misses))) as executor:
            pending: dict[
                Future[tuple[SimulationResult, str | None, float, dict, dict]],
                SimTask,
            ]
            pending = {
                executor.submit(_execute, task.config, task.engine, hash_events): task
                for task in misses
            }
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    task = pending.pop(future)
                    try:
                        outcome = future.result()
                    except Exception as exc:
                        fail(task, exc)
                    else:
                        complete(task, outcome)

    ordered = tuple(records[task.key] for task in tasks)
    return GridRun(
        records=ordered, results=results, wall_s=time.perf_counter() - started
    )


def run_requests(
    requests: Sequence[SimRequest],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    hash_events: bool = False,
    progress: ProgressFn | None = None,
) -> dict[str, SimulationResult]:
    """Execute figure-level requests and map results back to request keys.

    The convenience entry for callers that just want ``{request.key:
    result}`` — e.g. :func:`repro.experiments.multiseed.run` delegating its
    seed loop. Duplicate content (same config + engine under different
    request keys) executes once.
    """
    tasks, mapping = requests_to_tasks(requests)
    run = run_tasks(
        tasks,
        jobs=jobs,
        cache=cache,
        hash_events=hash_events,
        progress=progress,
        on_error="raise",
    )
    return {request_key: run.results[key] for request_key, key in mapping.items()}
