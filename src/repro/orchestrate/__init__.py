"""Parallel experiment orchestration with content-addressed result caching.

The figure runners in :mod:`repro.experiments` declare *what* to simulate
(each module's ``plan()`` returns :class:`~repro.experiments.common.SimRequest`
rows) separately from *how to present it* (``assemble()``). This package is
the execution layer between the two:

* :mod:`.grid` expands a declarative (figure × preset × seed × overrides)
  grid into figure jobs and deduplicates their simulation tasks by content —
  e.g. Figure 1's TTL-2 pair is the same task as Figure 3(a)'s ``hops=2``
  column, so ``all`` at one seed runs 12 unique simulations instead of 18;
* :mod:`.cache` stores each :class:`~repro.gnutella.simulation.SimulationResult`
  on disk under a SHA-256 key of the canonicalized configuration + engine +
  code fingerprint, so re-runs and interrupted grids resume from cache;
* :mod:`.pool` fans cache misses out over a ``ProcessPoolExecutor`` — task
  results are bit-identical to a serial run because every simulation seeds
  its own :class:`~repro.rng.RngStreams` from its config;
* :mod:`.manifest` records what ran (tasks, digests, timings, cache hits)
  as a JSON document next to the results;
* :mod:`.cli` is the ``repro-orchestrate`` entry point; ``repro-experiments``
  routes its ``--jobs`` / ``--cache-dir`` flags through the same machinery.
"""

from repro.orchestrate.cache import ResultCache, code_fingerprint, task_key
from repro.orchestrate.grid import (
    FIGURES,
    FigureJob,
    FigureOutcome,
    GridOutcome,
    expand_grid,
    grid_tasks,
    plan_figure,
    run_grid,
)
from repro.orchestrate.manifest import build_manifest, stable_view, write_manifest
from repro.orchestrate.pool import (
    GridRun,
    SimTask,
    TaskRecord,
    result_digest,
    run_requests,
    run_tasks,
)
from repro.orchestrate.progress import ProgressPrinter

__all__ = [
    "FIGURES",
    "FigureJob",
    "FigureOutcome",
    "GridOutcome",
    "GridRun",
    "ProgressPrinter",
    "ResultCache",
    "SimTask",
    "TaskRecord",
    "build_manifest",
    "code_fingerprint",
    "expand_grid",
    "grid_tasks",
    "plan_figure",
    "result_digest",
    "run_grid",
    "run_requests",
    "run_tasks",
    "stable_view",
    "task_key",
    "write_manifest",
]
