"""Version information for the :mod:`repro` package."""

__version__ = "0.1.0"
