"""Pairwise one-way delay model.

Section 4.2: "The mean value of the one-way delay between two users is
governed by the slowest user, and is equal to 300ms, 150ms and 70ms,
respectively. The standard deviation is set to 20ms for all cases, and values
are restricted in the interval [...]" — the interval itself is unreadable in
the available scan, so the truncation bounds are parameters (default
mean ± 3 sigma, always clamped above a small positive floor).

Each unordered node pair gets one delay draw, cached lazily, i.e. the network
latency is static per pair for the lifetime of a simulation — consistent with
the paper's description of delay as a property of the user pair. Sampling per
pair (rather than per message) also lets the fast engine compute path delays
analytically.

Because delays are static per run, the whole pairwise table can be
precomputed: :meth:`LatencyModel.delay_matrix` materializes every pair in one
vectorized draw (canonical upper-triangle order), after which
:meth:`~LatencyModel.one_way_delay` becomes a plain table read and
:meth:`~LatencyModel.delay_rows` hands the flood fast path raw per-row lists
with no method dispatch at all. The matrix is built lazily (first request)
and never invalidated.

The precompute is O(n^2): at the paper's 2,000 users it is 32 MB and the
right call; at 100k it would be a 10^10-entry allocation. Above
:data:`LAZY_DELAY_NODE_THRESHOLD` nodes the model therefore refuses to
materialize and switches to *stateless keyed* per-pair draws: each unordered
pair's delay comes from its own counter-based :class:`numpy.random.Philox`
stream (keyed once from the model's RNG at construction, counter = the
pair's canonical index), cached on first touch. Keyed draws make a pair's
float a pure function of ``(seed, pair)`` — independent of the order pairs
are first touched — so a fast-path run and a reference run, which touch
pairs in different orders, still observe identical floats, preserving the
digest gate at every scale. :meth:`~LatencyModel.delay_rows` then returns a
lazy row view (``rows[a][b]`` computes through the pair cache) instead of
list-of-lists. The per-pair *values* differ between the two regimes (same
truncated-Gaussian distribution, different draw mechanism); the overlay
evolution does not, because delays never feed back into event scheduling or
benefit under the delay-independent benefit options — the engine digest
tests pin a lazy run against an eager run of the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetworkError
from repro.net.bandwidth import CLASS_DELAY_MEAN, BandwidthClass, BandwidthModel
from repro.types import NodeId

__all__ = ["DelayParameters", "LatencyModel", "LAZY_DELAY_NODE_THRESHOLD"]

#: Above this many nodes :meth:`LatencyModel.delay_matrix` refuses to
#: materialize (the n^2 table would dwarf the rest of the simulation) and
#: per-pair delays switch to stateless keyed draws. 4096 nodes is a 128 MB
#: float64 matrix plus a ~3x-larger ``tolist`` — the last size where eager
#: is clearly the better trade.
LAZY_DELAY_NODE_THRESHOLD = 4096


@dataclass(frozen=True, slots=True)
class DelayParameters:
    """Parameters of the truncated-Gaussian one-way-delay distribution.

    Attributes
    ----------
    means:
        Mean one-way delay (seconds) per :class:`BandwidthClass`, applied
        according to the *slower* endpoint of the pair.
    std:
        Standard deviation in seconds (paper: 20 ms for all classes).
    truncation_sigmas:
        Draws are clamped to ``mean ± truncation_sigmas * std``.
    floor:
        Absolute lower bound in seconds; keeps delays strictly positive even
        for generous truncation settings.
    """

    means: tuple[float, float, float] = (
        CLASS_DELAY_MEAN[BandwidthClass.MODEM_56K],
        CLASS_DELAY_MEAN[BandwidthClass.CABLE],
        CLASS_DELAY_MEAN[BandwidthClass.LAN],
    )
    std: float = 0.020
    truncation_sigmas: float = 3.0
    floor: float = 0.001

    def __post_init__(self) -> None:
        if len(self.means) != len(BandwidthClass):
            raise NetworkError("means must provide one value per BandwidthClass")
        if any(m <= 0 for m in self.means):
            raise NetworkError("delay means must be positive")
        if self.std < 0:
            raise NetworkError("std must be non-negative")
        if self.truncation_sigmas <= 0:
            raise NetworkError("truncation_sigmas must be positive")
        if self.floor <= 0:
            raise NetworkError("floor must be positive")


class LatencyModel:
    """Lazy, cached per-pair one-way delays.

    Parameters
    ----------
    bandwidth:
        The per-node access-class assignment; the slower endpoint of a pair
        selects the delay mean.
    rng:
        Source of randomness. Draws happen on first lookup of each unordered
        pair; lookups are symmetric (``delay(a, b) == delay(b, a)``).
    params:
        Distribution parameters; defaults to the paper's values.
    lazy_threshold:
        Node count above which the pairwise regime goes lazy (stateless
        keyed draws, no matrix). ``None`` uses the module default
        :data:`LAZY_DELAY_NODE_THRESHOLD`; tests pass explicit values to
        force either regime at any size.
    """

    def __init__(
        self,
        bandwidth: BandwidthModel,
        rng: np.random.Generator,
        params: DelayParameters | None = None,
        *,
        lazy_threshold: int | None = None,
    ) -> None:
        self.bandwidth = bandwidth
        self.params = params or DelayParameters()
        self._rng = rng
        self._cache: dict[int, float] = {}
        self._means = np.asarray(self.params.means, dtype=float)
        self._n = bandwidth.n_nodes
        self._matrix: np.ndarray | None = None
        self._rows: list[list[float]] | None = None
        if lazy_threshold is None:
            lazy_threshold = LAZY_DELAY_NODE_THRESHOLD
        self._pairwise_lazy = self._n > lazy_threshold
        self._lazy_rows: _LazyDelayRows | None = None
        # One draw anchors every keyed pair stream to this model's RNG
        # stream (and therefore to the simulation seed). Drawn eagerly so
        # the latency stream's consumption is identical no matter which
        # pairs later get touched.
        self._philox_key: int | None = None
        if self._pairwise_lazy:
            self._philox_key = int(self._rng.integers(0, 2**63, dtype=np.int64))

    def _pair_key(self, a: NodeId, b: NodeId) -> int:
        lo, hi = (a, b) if a <= b else (b, a)
        return lo * self._n + hi

    def one_way_delay(self, a: NodeId, b: NodeId) -> float:
        """One-way delay in seconds between ``a`` and ``b`` (symmetric).

        A node's delay to itself is zero (local service). Once the pairwise
        matrix has been materialized (:meth:`delay_matrix`), every lookup is
        served from it, so matrix users and per-pair users observe the exact
        same floats.
        """
        if a == b:
            return 0.0
        if not (0 <= a < self._n and 0 <= b < self._n):
            raise NetworkError(f"node ids out of range: {a}, {b} (n={self._n})")
        if self._rows is not None:
            return self._rows[a][b]
        key = self._pair_key(a, b)
        delay = self._cache.get(key)
        if delay is None:
            delay = self._keyed_draw(key) if self._pairwise_lazy else self._draw(a, b)
            self._cache[key] = delay
        return delay

    def delay_matrix(self) -> np.ndarray:
        """The full symmetric ``n x n`` one-way-delay matrix (seconds).

        Built lazily on first request with one vectorized draw over the
        upper triangle in canonical ``(a, b), a < b`` order, then never
        invalidated — delays are static per run. Pairs that were already
        drawn lazily keep their observed values (the matrix overlays the
        per-pair cache), so a warm model stays self-consistent. After the
        build, :meth:`one_way_delay` reads from this table. Treat the
        returned array as read-only.

        Raises :class:`~repro.errors.NetworkError` in the lazy regime (node
        count above the threshold): the n^2 allocation is exactly what the
        lazy mode exists to avoid. Use :meth:`delay_rows` /
        :meth:`one_way_delay`, which work in both regimes.
        """
        if self._pairwise_lazy:
            raise NetworkError(
                f"refusing to materialize a {self._n}x{self._n} delay matrix "
                f"(population above the lazy threshold); use delay_rows() or "
                f"one_way_delay(), which draw pairs on demand"
            )
        if self._matrix is None:
            n = self._n
            p = self.params
            # The slower endpoint of each pair governs the delay mean.
            slowest = np.minimum.outer(self.bandwidth.classes, self.bandwidth.classes)
            means = self._means[slowest]
            if p.std == 0.0:
                matrix = np.maximum(means, p.floor)
            else:
                upper = np.triu_indices(n, k=1)
                pair_means = means[upper]
                raw = self._rng.normal(pair_means, p.std)
                lo = np.maximum(pair_means - p.truncation_sigmas * p.std, p.floor)
                hi = pair_means + p.truncation_sigmas * p.std
                matrix = np.zeros((n, n), dtype=float)
                matrix[upper] = np.clip(raw, lo, hi)
                matrix = matrix + matrix.T
            np.fill_diagonal(matrix, 0.0)
            for key, value in self._cache.items():
                a, b = divmod(key, n)
                matrix[a, b] = value
                matrix[b, a] = value
            self._matrix = matrix
            self._rows = matrix.tolist()
        return self._matrix

    def delay_rows(self) -> "list[list[float]] | _LazyDelayRows":
        """Indexable ``rows[a][b]`` delays (hot-path view).

        Below the lazy threshold: per-row Python lists of
        :meth:`delay_matrix` — the exact float ``one_way_delay(a, b)``
        returns, with zero method dispatch. Above it: a lazy row view whose
        ``[a][b]`` computes through the keyed per-pair cache (same floats as
        ``one_way_delay``, materializing only the pairs actually touched).
        Treat as read-only either way.
        """
        if self._pairwise_lazy:
            if self._lazy_rows is None:
                self._lazy_rows = _LazyDelayRows(self)
            return self._lazy_rows
        if self._rows is None:
            self.delay_matrix()
            assert self._rows is not None
        return self._rows

    def round_trip(self, a: NodeId, b: NodeId) -> float:
        """Round-trip time: twice the one-way delay."""
        return 2.0 * self.one_way_delay(a, b)

    def _draw(self, a: NodeId, b: NodeId) -> float:
        p = self.params
        mean = float(self._means[self.bandwidth.slowest_class(a, b)])
        if p.std == 0.0:
            return max(mean, p.floor)
        raw = self._rng.normal(mean, p.std)
        lo = max(mean - p.truncation_sigmas * p.std, p.floor)
        hi = mean + p.truncation_sigmas * p.std
        return float(min(max(raw, lo), hi))

    def _keyed_draw(self, key: int) -> float:
        """Stateless per-pair draw for the lazy regime.

        The pair's canonical index seeds a private counter-based Philox
        stream, so the value is a pure function of ``(model key, pair)`` —
        two runs that touch pairs in different orders (fast path vs
        reference) still observe identical floats, which is what keeps the
        digest gate valid above the matrix threshold. Same truncated
        Gaussian as :meth:`_draw`, different (order-independent) mechanism.
        """
        a, b = divmod(key, self._n)
        p = self.params
        mean = float(self._means[self.bandwidth.slowest_class(a, b)])
        if p.std == 0.0:
            return max(mean, p.floor)
        # Each pair gets its own 2^64-block region of the keyed stream.
        gen = np.random.Generator(
            np.random.Philox(key=self._philox_key, counter=key << 64)  # repro-lint: disable=R001
        )
        raw = float(gen.normal(mean, p.std))
        lo = max(mean - p.truncation_sigmas * p.std, p.floor)
        hi = mean + p.truncation_sigmas * p.std
        return min(max(raw, lo), hi)

    @property
    def is_lazy(self) -> bool:
        """Whether the model is in the above-threshold lazy regime."""
        return self._pairwise_lazy

    @property
    def cached_pairs(self) -> int:
        """Number of pair delays drawn so far (memory introspection).

        Once the full matrix is materialized every pair is resident.
        """
        if self._matrix is not None:
            return self._n * (self._n - 1) // 2
        return len(self._cache)

    @property
    def has_matrix(self) -> bool:
        """Whether the full pairwise matrix has been materialized."""
        return self._matrix is not None


class _LazyDelayRow:
    """One source's delays, computed per target through the pair cache."""

    __slots__ = ("_model", "_a")

    def __init__(self, model: LatencyModel, a: NodeId) -> None:
        self._model = model
        self._a = a

    def __getitem__(self, b: NodeId) -> float:
        return self._model.one_way_delay(self._a, b)

    def __len__(self) -> int:
        return self._model.bandwidth.n_nodes


class _LazyDelayRows:
    """``rows[a][b]`` view over a lazy :class:`LatencyModel`.

    Duck-type compatible with the eager list-of-lists where it matters (the
    flood fast path indexes ``rows[a][b]`` per path edge and takes
    ``len(rows)`` once at bind time). Rows are materialized as tiny proxy
    objects per access, never as n-float lists — caching a full row would
    quietly rebuild the O(n^2) table one source at a time.
    """

    __slots__ = ("_model",)

    def __init__(self, model: LatencyModel) -> None:
        self._model = model

    def __getitem__(self, a: NodeId) -> _LazyDelayRow:
        return _LazyDelayRow(self._model, a)

    def __len__(self) -> int:
        return self._model.bandwidth.n_nodes
