"""Pairwise one-way delay model.

Section 4.2: "The mean value of the one-way delay between two users is
governed by the slowest user, and is equal to 300ms, 150ms and 70ms,
respectively. The standard deviation is set to 20ms for all cases, and values
are restricted in the interval [...]" — the interval itself is unreadable in
the available scan, so the truncation bounds are parameters (default
mean ± 3 sigma, always clamped above a small positive floor).

Each unordered node pair gets one delay draw, cached lazily, i.e. the network
latency is static per pair for the lifetime of a simulation — consistent with
the paper's description of delay as a property of the user pair. Sampling per
pair (rather than per message) also lets the fast engine compute path delays
analytically.

Because delays are static per run, the whole pairwise table can be
precomputed: :meth:`LatencyModel.delay_matrix` materializes every pair in one
vectorized draw (canonical upper-triangle order), after which
:meth:`~LatencyModel.one_way_delay` becomes a plain table read and
:meth:`~LatencyModel.delay_rows` hands the flood fast path raw per-row lists
with no method dispatch at all. The matrix is built lazily (first request)
and never invalidated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetworkError
from repro.net.bandwidth import CLASS_DELAY_MEAN, BandwidthClass, BandwidthModel
from repro.types import NodeId

__all__ = ["DelayParameters", "LatencyModel"]


@dataclass(frozen=True, slots=True)
class DelayParameters:
    """Parameters of the truncated-Gaussian one-way-delay distribution.

    Attributes
    ----------
    means:
        Mean one-way delay (seconds) per :class:`BandwidthClass`, applied
        according to the *slower* endpoint of the pair.
    std:
        Standard deviation in seconds (paper: 20 ms for all classes).
    truncation_sigmas:
        Draws are clamped to ``mean ± truncation_sigmas * std``.
    floor:
        Absolute lower bound in seconds; keeps delays strictly positive even
        for generous truncation settings.
    """

    means: tuple[float, float, float] = (
        CLASS_DELAY_MEAN[BandwidthClass.MODEM_56K],
        CLASS_DELAY_MEAN[BandwidthClass.CABLE],
        CLASS_DELAY_MEAN[BandwidthClass.LAN],
    )
    std: float = 0.020
    truncation_sigmas: float = 3.0
    floor: float = 0.001

    def __post_init__(self) -> None:
        if len(self.means) != len(BandwidthClass):
            raise NetworkError("means must provide one value per BandwidthClass")
        if any(m <= 0 for m in self.means):
            raise NetworkError("delay means must be positive")
        if self.std < 0:
            raise NetworkError("std must be non-negative")
        if self.truncation_sigmas <= 0:
            raise NetworkError("truncation_sigmas must be positive")
        if self.floor <= 0:
            raise NetworkError("floor must be positive")


class LatencyModel:
    """Lazy, cached per-pair one-way delays.

    Parameters
    ----------
    bandwidth:
        The per-node access-class assignment; the slower endpoint of a pair
        selects the delay mean.
    rng:
        Source of randomness. Draws happen on first lookup of each unordered
        pair; lookups are symmetric (``delay(a, b) == delay(b, a)``).
    params:
        Distribution parameters; defaults to the paper's values.
    """

    def __init__(
        self,
        bandwidth: BandwidthModel,
        rng: np.random.Generator,
        params: DelayParameters | None = None,
    ) -> None:
        self.bandwidth = bandwidth
        self.params = params or DelayParameters()
        self._rng = rng
        self._cache: dict[int, float] = {}
        self._means = np.asarray(self.params.means, dtype=float)
        self._n = bandwidth.n_nodes
        self._matrix: np.ndarray | None = None
        self._rows: list[list[float]] | None = None

    def _pair_key(self, a: NodeId, b: NodeId) -> int:
        lo, hi = (a, b) if a <= b else (b, a)
        return lo * self._n + hi

    def one_way_delay(self, a: NodeId, b: NodeId) -> float:
        """One-way delay in seconds between ``a`` and ``b`` (symmetric).

        A node's delay to itself is zero (local service). Once the pairwise
        matrix has been materialized (:meth:`delay_matrix`), every lookup is
        served from it, so matrix users and per-pair users observe the exact
        same floats.
        """
        if a == b:
            return 0.0
        if not (0 <= a < self._n and 0 <= b < self._n):
            raise NetworkError(f"node ids out of range: {a}, {b} (n={self._n})")
        if self._rows is not None:
            return self._rows[a][b]
        key = self._pair_key(a, b)
        delay = self._cache.get(key)
        if delay is None:
            delay = self._draw(a, b)
            self._cache[key] = delay
        return delay

    def delay_matrix(self) -> np.ndarray:
        """The full symmetric ``n x n`` one-way-delay matrix (seconds).

        Built lazily on first request with one vectorized draw over the
        upper triangle in canonical ``(a, b), a < b`` order, then never
        invalidated — delays are static per run. Pairs that were already
        drawn lazily keep their observed values (the matrix overlays the
        per-pair cache), so a warm model stays self-consistent. After the
        build, :meth:`one_way_delay` reads from this table. Treat the
        returned array as read-only.
        """
        if self._matrix is None:
            n = self._n
            p = self.params
            # The slower endpoint of each pair governs the delay mean.
            slowest = np.minimum.outer(self.bandwidth.classes, self.bandwidth.classes)
            means = self._means[slowest]
            if p.std == 0.0:
                matrix = np.maximum(means, p.floor)
            else:
                upper = np.triu_indices(n, k=1)
                pair_means = means[upper]
                raw = self._rng.normal(pair_means, p.std)
                lo = np.maximum(pair_means - p.truncation_sigmas * p.std, p.floor)
                hi = pair_means + p.truncation_sigmas * p.std
                matrix = np.zeros((n, n), dtype=float)
                matrix[upper] = np.clip(raw, lo, hi)
                matrix = matrix + matrix.T
            np.fill_diagonal(matrix, 0.0)
            for key, value in self._cache.items():
                a, b = divmod(key, n)
                matrix[a, b] = value
                matrix[b, a] = value
            self._matrix = matrix
            self._rows = matrix.tolist()
        return self._matrix

    def delay_rows(self) -> list[list[float]]:
        """Per-row Python lists of :meth:`delay_matrix` (hot-path view).

        ``delay_rows()[a][b]`` is the exact float ``one_way_delay(a, b)``
        returns, with zero method dispatch — the representation the flood
        fast path indexes per path edge. Treat as read-only.
        """
        if self._rows is None:
            self.delay_matrix()
            assert self._rows is not None
        return self._rows

    def round_trip(self, a: NodeId, b: NodeId) -> float:
        """Round-trip time: twice the one-way delay."""
        return 2.0 * self.one_way_delay(a, b)

    def _draw(self, a: NodeId, b: NodeId) -> float:
        p = self.params
        mean = float(self._means[self.bandwidth.slowest_class(a, b)])
        if p.std == 0.0:
            return max(mean, p.floor)
        raw = self._rng.normal(mean, p.std)
        lo = max(mean - p.truncation_sigmas * p.std, p.floor)
        hi = mean + p.truncation_sigmas * p.std
        return float(min(max(raw, lo), hi))

    @property
    def cached_pairs(self) -> int:
        """Number of pair delays drawn so far (memory introspection).

        Once the full matrix is materialized every pair is resident.
        """
        if self._matrix is not None:
            return self._n * (self._n - 1) // 2
        return len(self._cache)

    @property
    def has_matrix(self) -> bool:
        """Whether the full pairwise matrix has been materialized."""
        return self._matrix is not None
