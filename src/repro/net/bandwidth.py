"""Access-link bandwidth classes.

Section 4.2: "we randomly split the users into 3 categories, according to
their connection bandwidth; each user is equally likely to be connected
through a 56K modem, a cable modem or a LAN."

The bandwidth value enters the case study through the benefit function
``B / R`` (Section 4.1(i)), where ``B`` is the bandwidth of the answering
link. We model the answering link's bandwidth as the minimum of the two
endpoints' access rates, since a transfer is bottlenecked by the slower side.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import NetworkError
from repro.types import NodeId

__all__ = ["BandwidthClass", "BandwidthModel"]


class BandwidthClass(enum.IntEnum):
    """Access-link class, ordered slowest to fastest.

    The integer values index into per-class parameter arrays, so keep them
    dense and zero-based.
    """

    MODEM_56K = 0
    CABLE = 1
    LAN = 2


#: Nominal downstream rate per class, in kbit/s. The 56K modem is its
#: namesake; cable and LAN values are era-appropriate (circa 2003) nominal
#: rates. Only *ratios* matter to the benefit function.
CLASS_KBPS: dict[BandwidthClass, float] = {
    BandwidthClass.MODEM_56K: 56.0,
    BandwidthClass.CABLE: 1500.0,
    BandwidthClass.LAN: 10000.0,
}

#: Mean one-way delay per class, in seconds, "governed by the slowest user"
#: (Section 4.2): 300 ms / 150 ms / 70 ms.
CLASS_DELAY_MEAN: dict[BandwidthClass, float] = {
    BandwidthClass.MODEM_56K: 0.300,
    BandwidthClass.CABLE: 0.150,
    BandwidthClass.LAN: 0.070,
}


class BandwidthModel:
    """Per-node access class assignment and link-bandwidth lookups.

    Parameters
    ----------
    n_nodes:
        Number of nodes in the network.
    rng:
        Source of randomness for the uniform class assignment.
    class_probabilities:
        Probability of each class, in :class:`BandwidthClass` order. Defaults
        to the paper's uniform 1/3 split.
    """

    def __init__(
        self,
        n_nodes: int,
        rng: np.random.Generator,
        class_probabilities: tuple[float, float, float] = (1 / 3, 1 / 3, 1 / 3),
    ) -> None:
        if n_nodes <= 0:
            raise NetworkError(f"n_nodes must be positive, got {n_nodes}")
        probs = np.asarray(class_probabilities, dtype=float)
        if probs.shape != (len(BandwidthClass),) or probs.min() < 0:
            raise NetworkError("class_probabilities must be 3 non-negative values")
        if not np.isclose(probs.sum(), 1.0):
            raise NetworkError(f"class_probabilities must sum to 1, got {probs.sum()}")
        self.n_nodes = n_nodes
        #: Class index per node (int8 array indexed by NodeId).
        self.classes: np.ndarray = rng.choice(
            len(BandwidthClass), size=n_nodes, p=probs
        ).astype(np.int8)
        self._kbps = np.array(
            [CLASS_KBPS[c] for c in BandwidthClass], dtype=float
        )

    def class_of(self, node: NodeId) -> BandwidthClass:
        """Access class of ``node``."""
        return BandwidthClass(int(self.classes[node]))

    def kbps_of(self, node: NodeId) -> float:
        """Nominal access rate of ``node`` in kbit/s."""
        return float(self._kbps[self.classes[node]])

    def link_kbps(self, a: NodeId, b: NodeId) -> float:
        """Effective bandwidth of a transfer between ``a`` and ``b``.

        The slower endpoint bottlenecks the link.
        """
        return float(min(self._kbps[self.classes[a]], self._kbps[self.classes[b]]))

    def slowest_class(self, a: NodeId, b: NodeId) -> BandwidthClass:
        """The slower of the two endpoints' classes (governs link delay)."""
        return BandwidthClass(int(min(self.classes[a], self.classes[b])))
