"""Network model substrate.

Implements the Section 4.2 connectivity model: each user is attached through
one of three access classes (56K modem / cable modem / LAN), and the one-way
delay between two users is a truncated Gaussian whose mean is governed by the
*slower* endpoint (300 ms / 150 ms / 70 ms, sigma = 20 ms).

Also provides generic message types, a transport that delivers messages over
the :mod:`repro.sim` kernel, and topology views with the paper's network
*consistency* predicate (Section 3.1).
"""

from repro.net.bandwidth import BandwidthClass, BandwidthModel
from repro.net.latency import DelayParameters, LatencyModel
from repro.net.message import Message, MessageKind
from repro.net.topology import NeighborGraph, is_consistent
from repro.net.transport import Transport

__all__ = [
    "BandwidthClass",
    "BandwidthModel",
    "DelayParameters",
    "LatencyModel",
    "Message",
    "MessageKind",
    "NeighborGraph",
    "Transport",
    "is_consistent",
]
