"""Message delivery over the simulation kernel.

The :class:`Transport` connects node handlers to the kernel: ``send``
schedules the receiver's handler after the pair's one-way delay. It also
keeps global message counters, which is how the detailed engine produces the
"messages per hour" series of Figures 1(b) and 2(b).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import NetworkError
from repro.net.latency import LatencyModel
from repro.net.message import Message, MessageKind
from repro.sim.kernel import Simulator
from repro.sim.monitor import HourlyBuckets
from repro.types import NodeId

__all__ = ["Transport"]

Handler = Callable[[Message], None]


class Transport:
    """Delay-accurate, loss-free message delivery between registered nodes.

    Parameters
    ----------
    sim:
        The kernel messages are scheduled on.
    latency:
        Pairwise delay model.
    query_buckets:
        Optional per-hour accumulator; every ``QUERY`` that survives the loss
        draw is counted (the paper's overhead figures count propagated
        queries — a copy lost in transit never propagates, so it is excluded
        from the overhead series).

    loss_rate:
        Probability that any sent message is lost in transit (failure
        injection; requires ``rng``). Lost messages count as sent (the
        sender paid for them) but never reach a handler and never enter
        ``query_buckets``.
    rng:
        Randomness source for loss decisions; required when ``loss_rate`` is
        positive.

    Notes
    -----
    Delivery to an unregistered (offline) node is *dropped silently* — in a
    churning P2P network, messages racing a log-off simply vanish. Drops are
    counted for introspection.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel,
        query_buckets: HourlyBuckets | None = None,
        loss_rate: float = 0.0,
        rng=None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise NetworkError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if loss_rate > 0.0 and rng is None:
            raise NetworkError("a positive loss_rate requires an rng")
        self.sim = sim
        self.latency = latency
        self.query_buckets = query_buckets
        self.loss_rate = loss_rate
        self._rng = rng
        self._handlers: dict[NodeId, Handler] = {}
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.lost = 0
        self.sent_by_kind: dict[MessageKind, int] = {k: 0 for k in MessageKind}

    def register(self, node: NodeId, handler: Handler) -> None:
        """Attach ``node``'s receive handler (idempotent re-registration)."""
        self._handlers[node] = handler

    def unregister(self, node: NodeId) -> None:
        """Detach ``node`` (e.g. on log-off); in-flight messages to it drop."""
        self._handlers.pop(node, None)

    def is_registered(self, node: NodeId) -> bool:
        """Whether ``node`` currently receives messages."""
        return node in self._handlers

    def send(self, message: Message) -> None:
        """Dispatch ``message``; the receiver handler fires after the link delay."""
        if message.sender == message.receiver:
            raise NetworkError(f"node {message.sender} cannot send to itself")
        self.sent += 1
        self.sent_by_kind[message.kind] += 1
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.lost += 1
            return
        if message.kind is MessageKind.QUERY and self.query_buckets is not None:
            self.query_buckets.add(self.sim.now)
        delay = self.latency.one_way_delay(message.sender, message.receiver)
        self.sim.schedule(delay, self._deliver, message)

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.receiver)
        if handler is None:
            self.dropped += 1
            return
        self.delivered += 1
        handler(message)
