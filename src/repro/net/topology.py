"""Global topology views and the network *consistency* predicate.

Section 3.1 defines the network to be **consistent** iff there is no pair of
nodes ``(n_i, n_j)`` with ``n_j in Out(n_i)`` but ``n_i not in In(n_j)`` —
i.e. nobody forwards requests to a node that does not expect them.

These helpers operate on whole-network snapshots (mappings from node id to
neighbor sets) and are used by tests and analysis; the per-node data
structures live in :mod:`repro.core.neighbors`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import networkx as nx

from repro.types import NodeId

__all__ = ["NeighborGraph", "find_inconsistencies", "is_consistent"]


def find_inconsistencies(
    outgoing: Mapping[NodeId, Iterable[NodeId]],
    incoming: Mapping[NodeId, Iterable[NodeId]],
) -> list[tuple[NodeId, NodeId]]:
    """All ``(i, j)`` pairs with ``j in Out(i)`` but ``i not in In(j)``.

    Nodes absent from ``incoming`` are treated as having empty incoming
    lists, so dangling outgoing edges to them are reported.
    """
    bad: list[tuple[NodeId, NodeId]] = []
    incoming_sets = {node: set(lst) for node, lst in incoming.items()}
    for i, outs in outgoing.items():
        for j in outs:
            if i not in incoming_sets.get(j, set()):
                bad.append((i, j))
    return bad


def is_consistent(
    outgoing: Mapping[NodeId, Iterable[NodeId]],
    incoming: Mapping[NodeId, Iterable[NodeId]],
) -> bool:
    """Whether the snapshot satisfies the Section 3.1 consistency predicate."""
    return not find_inconsistencies(outgoing, incoming)


class NeighborGraph:
    """A networkx-backed snapshot of the outgoing-neighbor relation.

    Useful for analysis: connectivity, degree distributions, and the reach
    bound that explains the Figure 1 vs Figure 2 gap (a TTL-``h`` flood from a
    node can touch at most the nodes within ``h`` hops).
    """

    def __init__(self, outgoing: Mapping[NodeId, Iterable[NodeId]]) -> None:
        self.graph = nx.DiGraph()
        self.graph.add_nodes_from(outgoing.keys())
        for node, outs in outgoing.items():
            for other in outs:
                self.graph.add_edge(node, other)

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the snapshot."""
        return self.graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        """Number of directed outgoing-neighbor edges."""
        return self.graph.number_of_edges()

    def out_degrees(self) -> dict[NodeId, int]:
        """Outgoing-list size per node."""
        return dict(self.graph.out_degree())

    def is_symmetric(self) -> bool:
        """Whether every edge has its reverse (symmetric relation lists)."""
        return all(self.graph.has_edge(v, u) for u, v in self.graph.edges())

    def reachable_within(self, source: NodeId, max_hops: int) -> set[NodeId]:
        """Nodes reachable from ``source`` in at most ``max_hops`` hops.

        ``source`` itself is excluded: it does not receive its own query.
        """
        if source not in self.graph:
            return set()
        lengths = nx.single_source_shortest_path_length(
            self.graph, source, cutoff=max_hops
        )
        lengths.pop(source, None)
        return set(lengths)

    def largest_component_fraction(self) -> float:
        """Fraction of nodes in the largest weakly connected component."""
        if self.n_nodes == 0:
            return 0.0
        largest = max(nx.weakly_connected_components(self.graph), key=len)
        return len(largest) / self.n_nodes

    def clustering_by_attribute(self, attribute: Mapping[NodeId, int]) -> float:
        """Fraction of edges whose endpoints share the same attribute value.

        With ``attribute`` = favorite music category, this measures how well
        dynamic reconfiguration groups "nodes with similar content together"
        (Section 4.3) — the mechanism behind the hit-rate gain.
        """
        edges = list(self.graph.edges())
        if not edges:
            return 0.0
        same = sum(1 for u, v in edges if attribute.get(u) == attribute.get(v))
        return same / len(edges)
