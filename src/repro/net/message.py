"""Protocol-agnostic message envelope.

All the paper's protocols exchange small control messages — queries, replies,
exploration probes, invitations, evictions. :class:`Message` is the common
envelope used by the detailed (message-level) engines; the fast engines only
*count* messages and never materialize them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.types import NodeId

__all__ = ["Message", "MessageKind"]


class MessageKind(enum.Enum):
    """Categories of framework messages (Sections 3.2-3.4)."""

    QUERY = "query"              #: search request for actual content (Algo 1)
    QUERY_REPLY = "query_reply"  #: results or NOT_FOUND back to the initiator
    EXPLORE = "explore"          #: metadata-only exploration probe (Algo 2)
    EXPLORE_REPLY = "explore_reply"
    INVITE = "invite"            #: symmetric-update invitation (Algo 4)
    INVITE_REPLY = "invite_reply"
    EVICT = "evict"              #: symmetric-update eviction notice (Algo 4)


@dataclass(slots=True)
class Message:
    """One message in flight.

    Attributes
    ----------
    kind:
        Protocol role of the message.
    sender / receiver:
        The hop endpoints (NOT the end-to-end initiator; see ``origin``).
    origin:
        Node that initiated the end-to-end exchange (query initiator,
        inviter, ...).
    query_id:
        End-to-end identifier shared by all propagated copies of the same
        query; used for duplicate suppression ("each node keeps a list of
        recent messages", Algo 5 Process_Query).  Engines must allocate ids
        from their *own* counter (the detailed engine's ``_qid_source``
        pattern) and pass them explicitly: an earlier module-level default
        counter here was process-global, so id sequences depended on which
        simulations shared a pool worker (repro-lint R007).  The default is
        a plain sentinel for ad-hoc messages that never hit duplicate
        suppression.
    hops:
        Number of hops this copy has traversed so far (initiator -> first
        receiver is hop 1).
    payload:
        Protocol-specific content (item searched for, result list, ...).
    path:
        Discovery path from origin to the current receiver; replies route
        back along the reverse path, per the Gnutella convention.
    """

    kind: MessageKind
    sender: NodeId
    receiver: NodeId
    origin: NodeId
    query_id: int = 0
    hops: int = 0
    payload: Any = None
    path: tuple[NodeId, ...] = ()

    def forwarded(self, new_sender: NodeId, new_receiver: NodeId) -> "Message":
        """A copy of this message propagated one hop further.

        Keeps ``query_id`` and ``origin`` (it is the same end-to-end query),
        increments ``hops``, extends ``path``.
        """
        return Message(
            kind=self.kind,
            sender=new_sender,
            receiver=new_receiver,
            origin=self.origin,
            query_id=self.query_id,
            hops=self.hops + 1,
            payload=self.payload,
            path=self.path + (new_receiver,),
        )
