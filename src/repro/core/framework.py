"""The assembled framework: repositories wired into a searchable network.

:class:`RepositoryNetwork` is the package's general-purpose public API — the
thing a downstream user instantiates to get "searching in distributed data
repositories" with dynamic reconfiguration, independent of any particular
application. The web-caching and OLAP instantiations build on it; the
Gnutella case study uses its own engines (specialized for churn and scale)
but shares every policy object.

The network is *synchronous*: searches execute atomically with analytically
computed delays (see DESIGN.md's engine discussion). For message-level
timing semantics use :mod:`repro.gnutella.detailed`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.benefit import BandwidthShareBenefit, BenefitFunction, ResultObservation
from repro.core.exploration import ExplorationOutcome, generic_explore
from repro.core.neighbors import NeighborState
from repro.core.relations import RelationPolicy, SymmetricRelation
from repro.core.search import generic_search
from repro.core.selection import SelectAll, SelectionPolicy
from repro.core.statistics import StatsTable
from repro.core.termination import Termination, TTLTermination
from repro.core.update import (
    asymmetric_update,
    plan_reconfiguration,
    process_invitation,
    reconfiguration_actions,
)
from repro.errors import FrameworkError
from repro.types import ItemId, NodeId, QueryOutcome

__all__ = ["Repository", "RepositoryNetwork"]


class Repository:
    """One data repository: its content, neighbor lists and statistics."""

    __slots__ = (
        "node",
        "items",
        "state",
        "stats",
        "online",
        "requests_since_update",
        "trials",
    )

    def __init__(self, node: NodeId, items: Iterable[ItemId], state: NeighborState) -> None:
        self.node = node
        self.items: set[ItemId] = set(items)
        self.state = state
        self.stats = StatsTable()
        self.online = True
        #: Own requests issued since the last reconfiguration (drives the
        #: periodic update trigger).
        self.requests_since_update = 0
        #: Probationary neighborhoods under the "trial" invitation policy:
        #: partner -> (own searches remaining, benefit at trial start).
        self.trials: dict[NodeId, tuple[int, float]] = {}


class RepositoryNetwork:
    """A population of repositories plus the three framework mechanisms.

    Parameters
    ----------
    relation:
        Neighbor-relation policy; decides capacities and rewiring rules.
    benefit:
        Scores each returned result (default: the paper's ``B/R``).
    link_delay:
        One-way delay between two nodes, seconds. Defaults to a constant
        50 ms; pass :meth:`repro.net.LatencyModel.one_way_delay` for the full
        model.
    link_kbps:
        Effective link bandwidth (feeds ``B`` of the benefit function);
        defaults to a constant.
    termination:
        Default propagation bound for :meth:`search` (TTL 2 if omitted).
    selection:
        Default forwarding selection (flood if omitted).
    rng:
        Drives randomized selection policies.
    invitation_policy:
        How a *full* invited node decides (Section 3.4): ``"always"`` accepts
        and evicts its least beneficial neighbor (Algo 5 (iv)); ``"benefit"``
        accepts only inviters whose recorded benefit beats the worst current
        neighbor's (Algo 4); ``"trial"`` implements option (a) — accept a
        *temporary* relationship that becomes permanent only if the inviter
        produces benefit within ``trial_searches`` of the invitee's own
        queries; ``"summary"`` implements option (b) — accept when the
        content overlap of the two repositories reaches
        ``summary_threshold`` (the idealized form of a digest exchange; see
        :mod:`repro.core.digest` for the approximate digests themselves).
    trial_searches:
        Probation length for the ``"trial"`` policy, in invitee queries.
    summary_threshold:
        Jaccard holdings-overlap needed by the ``"summary"`` policy.
    """

    def __init__(
        self,
        relation: RelationPolicy,
        benefit: BenefitFunction | None = None,
        link_delay: Callable[[NodeId, NodeId], float] | None = None,
        link_kbps: Callable[[NodeId, NodeId], float] | None = None,
        termination: Termination | None = None,
        selection: SelectionPolicy | None = None,
        rng: np.random.Generator | None = None,
        invitation_policy: str = "always",
        trial_searches: int = 5,
        summary_threshold: float = 0.05,
    ) -> None:
        if invitation_policy not in ("always", "benefit", "trial", "summary"):
            raise FrameworkError(
                f"unknown invitation_policy {invitation_policy!r}; use "
                "always, benefit, trial, or summary"
            )
        if trial_searches < 1:
            raise FrameworkError("trial_searches must be >= 1")
        if not 0.0 <= summary_threshold <= 1.0:
            raise FrameworkError("summary_threshold must be in [0, 1]")
        self.relation = relation
        self.benefit = benefit or BandwidthShareBenefit()
        self._link_delay = link_delay or (lambda a, b: 0.050)
        self._link_kbps = link_kbps or (lambda a, b: 1000.0)
        self.termination = termination or TTLTermination(2)
        self.selection = selection or SelectAll()
        self.rng = rng or np.random.default_rng(0)
        self.invitation_policy = invitation_policy
        self.trial_searches = trial_searches
        self.summary_threshold = summary_threshold
        self.repositories: dict[NodeId, Repository] = {}
        self.searches_run = 0
        self.reconfigurations = 0
        self.trials_started = 0
        self.trials_kept = 0
        self.trials_dropped = 0

    # ------------------------------------------------------------------
    # Population management
    # ------------------------------------------------------------------
    def add_repository(self, items: Iterable[ItemId] = ()) -> NodeId:
        """Create a repository with ``items``; returns its node id."""
        node = NodeId(len(self.repositories))
        self.repositories[node] = Repository(node, items, self.relation.make_state(node))
        return node

    def repo(self, node: NodeId) -> Repository:
        """The repository for ``node`` (raises for unknown ids)."""
        try:
            return self.repositories[node]
        except KeyError:
            raise FrameworkError(f"unknown node {node}") from None

    def connect(self, a: NodeId, b: NodeId) -> None:
        """Wire ``a -> b`` (and the mirror edge for symmetric relations)."""
        self.relation.connect(self.repo(a).state, self.repo(b).state)

    def disconnect(self, a: NodeId, b: NodeId) -> None:
        """Remove ``a -> b`` (and the mirror edge for symmetric relations)."""
        self.relation.disconnect(self.repo(a).state, self.repo(b).state)

    def set_online(self, node: NodeId, online: bool) -> None:
        """Toggle availability; offline nodes neither serve nor forward.

        Going offline severs all neighborhoods (their slots free up), which
        is what triggers the "forced reconfiguration" dynamics of churning
        networks.
        """
        repo = self.repo(node)
        if repo.online == online:
            return
        repo.online = online
        if not online:
            for other in list(repo.state.outgoing):
                if other in repo.state.outgoing:
                    self._sever(node, other)
            for other in list(repo.state.incoming):
                if node in self.repo(other).state.outgoing:
                    self.disconnect(other, node)

    def _sever(self, a: NodeId, b: NodeId) -> None:
        self.relation.disconnect(self.repo(a).state, self.repo(b).state)

    # ------------------------------------------------------------------
    # NetworkView protocol (consumed by the generic engines)
    # ------------------------------------------------------------------
    def holds(self, node: NodeId, item: ItemId) -> bool:
        """Whether ``node`` is online and has ``item`` locally."""
        repo = self.repositories[node]
        return repo.online and item in repo.items

    def neighbors(self, node: NodeId) -> Sequence[NodeId]:
        """Online outgoing neighbors of ``node``."""
        return [
            n
            for n in self.repositories[node].state.outgoing
            if self.repositories[n].online
        ]

    def link_delay(self, a: NodeId, b: NodeId) -> float:
        """One-way delay of the ``a``-``b`` link."""
        return self._link_delay(a, b)

    # ------------------------------------------------------------------
    # Mechanism 1: search (Algo 1)
    # ------------------------------------------------------------------
    def search(
        self,
        initiator: NodeId,
        item: ItemId,
        termination: Termination | None = None,
        selection: SelectionPolicy | None = None,
        record_stats: bool = True,
    ) -> QueryOutcome:
        """Issue a query from ``initiator``; update its statistics.

        Local hits return immediately with zero messages (Algo 1's "if the
        request can not be satisfied locally" guard).
        """
        repo = self.repo(initiator)
        if not repo.online:
            raise FrameworkError(f"node {initiator} is offline and cannot search")
        repo.requests_since_update += 1
        self.searches_run += 1
        if item in repo.items:
            from repro.types import QueryResult

            return QueryOutcome(
                initiator=initiator,
                item=item,
                issued_at=0.0,
                results=(QueryResult(initiator, item, 0, 0.0),),
                messages=0,
                nodes_contacted=0,
            )
        outcome = generic_search(
            self,
            initiator,
            item,
            termination or self.termination,
            selection=selection or self.selection,
            stats=repo.stats,
            rng=self.rng,
        )
        if record_stats and outcome.results:
            n_results = len(outcome.results)
            for result in outcome.results:
                obs = ResultObservation(
                    initiator=initiator,
                    responder=result.responder,
                    link_kbps=self._link_kbps(initiator, result.responder),
                    n_results=n_results,
                    delay=result.delay,
                    hops=result.hops,
                )
                repo.stats.add_benefit(result.responder, self.benefit(obs))
        if repo.trials:
            self._tick_trials(repo)
        return outcome

    # ------------------------------------------------------------------
    # Mechanism 2: exploration (Algo 2)
    # ------------------------------------------------------------------
    def explore(
        self,
        initiator: NodeId,
        items: Iterable[ItemId],
        termination: Termination | None = None,
        selection: SelectionPolicy | None = None,
        record_stats: bool = True,
    ) -> ExplorationOutcome:
        """Probe for ``items``; fold coverage-based benefit into the stats.

        Each reached node is credited proportionally to how many of the
        probed items it held (zero-coverage nodes earn nothing but become
        *known*, so later updates can reason about them).
        """
        repo = self.repo(initiator)
        if not repo.online:
            raise FrameworkError(f"node {initiator} is offline and cannot explore")
        outcome = generic_explore(
            self,
            initiator,
            items,
            termination or self.termination,
            selection=selection or self.selection,
            stats=repo.stats,
            rng=self.rng,
        )
        if record_stats:
            for report in outcome.reports:
                if report.coverage:
                    obs = ResultObservation(
                        initiator=initiator,
                        responder=report.node,
                        link_kbps=self._link_kbps(initiator, report.node),
                        n_results=report.coverage,
                        delay=report.delay,
                        hops=report.hops,
                    )
                    repo.stats.add_benefit(
                        report.node, report.coverage * self.benefit(obs)
                    )
        return outcome

    # ------------------------------------------------------------------
    # Mechanism 3: neighbor update (Algos 3-4)
    # ------------------------------------------------------------------
    def update_neighbors(self, node: NodeId) -> None:
        """Run one neighbor update at ``node`` per the relation kind."""
        if isinstance(self.relation, SymmetricRelation):
            self._symmetric_update(node)
        else:
            self._asymmetric_update(node)
        self.repo(node).requests_since_update = 0
        self.reconfigurations += 1

    def _eligible(self, candidate: NodeId) -> bool:
        repo = self.repositories.get(candidate)
        return repo is not None and repo.online

    def _asymmetric_update(self, node: NodeId) -> None:
        repo = self.repo(node)
        added, evicted = asymmetric_update(repo.state, repo.stats, eligible=self._eligible)
        for other in evicted:
            self.disconnect(node, other)
        for other in added:
            if self.relation.can_connect(repo.state, self.repo(other).state):
                self.connect(node, other)

    def _symmetric_update(self, node: NodeId) -> None:
        repo = self.repo(node)
        k = int(repo.state.outgoing.capacity)
        current = repo.state.outgoing.as_tuple()
        desired = plan_reconfiguration(
            current, repo.stats, k, exclude=(node,), eligible=self._eligible
        )
        invites, evicts = reconfiguration_actions(node, current, desired)
        for action in evicts:
            self.disconnect(node, action.evicted)
            # Process_Eviction at the evicted side: reset the evictor's stats
            # so it is not immediately re-selected.
            self.repo(action.evicted).stats.reset(node)
        for action in invites:
            invitee = self.repo(action.invitee)
            if not invitee.online:
                continue
            decision = self._decide_invitation(repo, invitee)
            if not decision.accepted:
                continue
            if decision.evicted is not None:
                self.disconnect(action.invitee, decision.evicted)
                self.repo(decision.evicted).stats.reset(action.invitee)
            if repo.state.outgoing.is_full:
                break  # our own slots ran out (races with incoming invites)
            self.connect(node, action.invitee)
            if self.invitation_policy == "trial":
                # Option (a): a temporary relationship; the invitee gathers
                # statistics about the inviter and decides after a while.
                invitee.trials[node] = (
                    self.trial_searches,
                    invitee.stats.benefit_of(node),
                )
                self.trials_started += 1
            # Accepting an invitation resets the invitee's own periodic
            # counter (Algo 5: damp cascading updates).
            invitee.requests_since_update = 0

    def _decide_invitation(self, inviter: Repository, invitee: Repository):
        """Apply the configured invited-node policy (Section 3.4)."""
        policy = self.invitation_policy
        if policy == "benefit":
            return process_invitation(
                invitee.state, inviter.node, invitee.stats, always_accept=False
            )
        if policy == "summary" and invitee.state.outgoing.is_full:
            # Option (b): assess the unknown inviter from exchanged content
            # summaries. Idealized here as the true holdings overlap (the
            # digest machinery in repro.core.digest approximates it).
            if self._holdings_overlap(inviter, invitee) < self.summary_threshold:
                from repro.core.update import InvitationDecision

                return InvitationDecision(accepted=False, evicted=None)
        # "always", "trial", and passing-summary cases all accept, evicting
        # the least beneficial neighbor if necessary.
        return process_invitation(
            invitee.state, inviter.node, invitee.stats, always_accept=True
        )

    @staticmethod
    def _holdings_overlap(a: Repository, b: Repository) -> float:
        """Jaccard overlap of two repositories' item sets."""
        union = len(a.items | b.items)
        if union == 0:
            return 0.0
        return len(a.items & b.items) / union

    def _tick_trials(self, repo: Repository) -> None:
        """Advance the invitee-side probation clocks after one own search."""
        for partner in list(repo.trials):
            remaining, start_benefit = repo.trials[partner]
            if partner not in repo.state.outgoing:
                del repo.trials[partner]  # link already gone (churn/update)
                continue
            remaining -= 1
            if remaining > 0:
                repo.trials[partner] = (remaining, start_benefit)
                continue
            del repo.trials[partner]
            if repo.stats.benefit_of(partner) > start_benefit:
                self.trials_kept += 1  # produced benefit: made permanent
            else:
                self.trials_dropped += 1
                self.disconnect(repo.node, partner)
                self.repo(partner).stats.reset(repo.node)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def neighbor_snapshot(self) -> dict[NodeId, tuple[NodeId, ...]]:
        """Current outgoing lists of all repositories."""
        return {
            n: repo.state.outgoing.as_tuple() for n, repo in self.repositories.items()
        }

    def states(self) -> dict[NodeId, NeighborState]:
        """Map of node id to its live :class:`NeighborState`."""
        return {n: repo.state for n, repo in self.repositories.items()}
