"""The generic search mechanism (Algo 1).

``generic_search`` executes one query as a hop-layered BFS over an abstract
:class:`NetworkView`, with:

* duplicate suppression — a node processes each query once; duplicate
  deliveries still count as messages (they consume bandwidth);
* responder short-circuit — a node holding the result replies and does not
  propagate (the case study's behaviour; ``forward_from_holders=True``
  restores the extensive-search variant some systems use);
* pluggable termination (:mod:`~repro.core.termination`) and forwarding
  selection (:mod:`~repro.core.selection`);
* analytic delays — a result's delay is the accumulated link delay along its
  discovery path, doubled, because replies route back along the reverse path
  (the Gnutella convention).

This one function is the reference semantics tested against the
message-level engine, so it avoids allocation in the inner loop where
reasonable. For the default flood configuration the fast Gnutella engine
routes queries to the specialized twin in :mod:`repro.core.fastpath`, which
must stay *bit-identical* to this function — ``generic_search`` is the
oracle the fast path is property-tested against.
"""

from __future__ import annotations

from collections import deque
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.selection import SelectAll, SelectionPolicy
from repro.core.statistics import StatsTable
from repro.core.termination import Termination
from repro.types import ItemId, NodeId, QueryOutcome, QueryResult

__all__ = ["NetworkView", "generic_search", "iterative_deepening_search"]

_EMPTY_STATS = StatsTable()

#: Shared fallback generator for callers that pass no ``rng``. Those callers
#: use non-drawing selection (the default flood never samples), so this
#: sentinel only satisfies the ``SelectionPolicy.select`` signature — hoisted
#: to module level so the hot path does not allocate a fresh ``Generator``
#: per query. Pass an explicit ``rng`` for any policy that actually draws.
_SENTINEL_RNG = np.random.default_rng(0)


@runtime_checkable
class NetworkView(Protocol):
    """What the search engine needs to know about the world."""

    def holds(self, node: NodeId, item: ItemId) -> bool:
        """Whether ``node`` can serve ``item`` locally."""
        ...

    def neighbors(self, node: NodeId) -> Sequence[NodeId]:
        """``node``'s outgoing neighbors that are currently reachable."""
        ...

    def link_delay(self, a: NodeId, b: NodeId) -> float:
        """One-way delay of the ``a``-``b`` link, in seconds."""
        ...


def generic_search(
    view: NetworkView,
    initiator: NodeId,
    item: ItemId,
    termination: Termination,
    selection: SelectionPolicy | None = None,
    stats: StatsTable | None = None,
    rng: np.random.Generator | None = None,
    issued_at: float = 0.0,
    forward_from_holders: bool = False,
) -> QueryOutcome:
    """Run one query and return what the initiator observes.

    Parameters
    ----------
    view:
        The network (holdings, live neighbor lists, link delays).
    initiator:
        Node issuing the query. Assumed not to hold ``item`` itself (callers
        filter local hits; Algo 1 only reaches the network "if the request
        can not be satisfied locally").
    item:
        The item searched for.
    termination:
        Propagation stop condition (hop limit, result cap, ...).
    selection:
        Which neighbors receive the query at each node; default floods.
    stats / rng:
        Passed through to history-based / randomized selection policies.
    issued_at:
        Timestamp recorded in the outcome (the engine works in relative
        delays internally).
    forward_from_holders:
        If true, nodes holding the item forward the query anyway (extensive
        search, Section 3.2's music-sharing remark); default matches the
        case study where holders reply and stop.
    """
    if selection is None:
        selection = SelectAll()
    if stats is None:
        stats = _EMPTY_STATS
    if rng is None:
        rng = _SENTINEL_RNG

    results: list[QueryResult] = []
    messages = 0
    # Nodes that have processed the query (first-delivery wins); the
    # initiator never processes its own query.
    seen: set[NodeId] = {initiator}
    # FIFO of (node, sender, hops, trace_idx); hop-layered because every
    # entry at hop h is enqueued before any entry at h+1. Link delays are
    # NOT accumulated here — most frontier entries never become results, so
    # each result's path delay is reconstructed lazily from the parent trace
    # (a large win on the simulation hot path; see the kernel bench).
    frontier: deque[tuple[NodeId, NodeId, int, int]] = deque()
    # trace[i] = (node, parent_trace_idx); parent -1 means the initiator.
    trace: list[tuple[NodeId, int]] = []

    def path_delay(idx: int) -> float:
        total = 0.0
        node, parent = trace[idx]
        while parent >= 0:
            prev, grandparent = trace[parent]
            total += view.link_delay(prev, node)
            node, parent = prev, grandparent
        return total + view.link_delay(initiator, node)

    first_targets = selection.select(view.neighbors(initiator), stats, rng)
    for target in first_targets:
        messages += 1
        trace.append((target, -1))
        frontier.append((target, initiator, 1, len(trace) - 1))

    while frontier:
        node, sender, hops, idx = frontier.popleft()
        if node in seen:
            continue  # duplicate delivery: counted on send, discarded here
        seen.add(node)

        if view.holds(node, item):
            results.append(
                QueryResult(
                    responder=node, item=item, hops=hops, delay=2.0 * path_delay(idx)
                )
            )
            if not forward_from_holders:
                continue

        if not termination.should_forward(hops, len(results)):
            continue
        neighbor_ids = view.neighbors(node)
        if not neighbor_ids:
            continue
        for target in selection.select(neighbor_ids, stats, rng):
            if target == sender:
                continue  # never bounce straight back
            messages += 1
            if target not in seen:
                trace.append((target, idx))
                frontier.append((target, node, hops + 1, len(trace) - 1))

    return QueryOutcome(
        initiator=initiator,
        item=item,
        issued_at=issued_at,
        results=tuple(results),
        messages=messages,
        nodes_contacted=len(seen) - 1,
    )


def iterative_deepening_search(
    view: NetworkView,
    initiator: NodeId,
    item: ItemId,
    depths: Sequence[int],
    selection: SelectionPolicy | None = None,
    stats: StatsTable | None = None,
    rng: np.random.Generator | None = None,
    issued_at: float = 0.0,
) -> QueryOutcome:
    """Yang & Garcia-Molina iterative deepening on top of ``generic_search``.

    Runs successive BFS cycles with increasing TTLs until one produces
    results or the schedule is exhausted; message counts accumulate across
    cycles (each cycle really re-floods in that technique — the saving comes
    from usually stopping early).
    """
    from repro.core.termination import IterativeDeepening

    schedule = IterativeDeepening(tuple(depths))
    total_messages = 0
    contacted = 0
    outcome: QueryOutcome | None = None
    for ttl in schedule.cycles():
        outcome = generic_search(
            view,
            initiator,
            item,
            ttl,
            selection=selection,
            stats=stats,
            rng=rng,
            issued_at=issued_at,
        )
        total_messages += outcome.messages
        contacted = max(contacted, outcome.nodes_contacted)
        if outcome.hit:
            break
    assert outcome is not None  # schedule is never empty
    return QueryOutcome(
        initiator=initiator,
        item=item,
        issued_at=issued_at,
        results=outcome.results,
        messages=total_messages,
        nodes_contacted=contacted,
    )
