"""Propagation terminating conditions (Section 3.2).

"A common threshold in many distributed systems ... is the maximum number of
hops that a request may perform." Squid uses 1 hop (the origin server is the
fallback); Gnutella allows up to 7 (the paper's case study sweeps 1-4, its
combined search/exploration uses 5).

Also implements the Yang & Garcia-Molina *iterative deepening* schedule
(Section 2 technique (i)), which the paper notes is orthogonal to — and
composable with — dynamic reconfiguration.
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

from repro.errors import FrameworkError

__all__ = [
    "IterativeDeepening",
    "MaxResultsTermination",
    "TTLTermination",
    "Termination",
]


@runtime_checkable
class Termination(Protocol):
    """Decides whether a request may propagate one hop further."""

    def should_forward(self, hops: int, results_so_far: int) -> bool:
        """Whether a copy that has traversed ``hops`` hops may be forwarded.

        ``hops`` counts edges already traversed to reach the current holder;
        forwarding would make it ``hops + 1``.
        """
        ...


class TTLTermination:
    """Forward while fewer than ``max_hops`` hops have been traversed."""

    def __init__(self, max_hops: int) -> None:
        if max_hops < 1:
            raise FrameworkError(f"max_hops must be >= 1, got {max_hops}")
        self.max_hops = max_hops

    def should_forward(self, hops: int, results_so_far: int) -> bool:
        return hops < self.max_hops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TTLTermination(max_hops={self.max_hops})"


class MaxResultsTermination:
    """TTL bound plus an early stop once enough results were found.

    Models the "limited" search mode of Section 1 ("terminating when the
    first result is found") with ``max_results=1``.
    """

    def __init__(self, max_hops: int, max_results: int) -> None:
        if max_hops < 1:
            raise FrameworkError(f"max_hops must be >= 1, got {max_hops}")
        if max_results < 1:
            raise FrameworkError(f"max_results must be >= 1, got {max_results}")
        self.max_hops = max_hops
        self.max_results = max_results

    def should_forward(self, hops: int, results_so_far: int) -> bool:
        return hops < self.max_hops and results_so_far < self.max_results


class IterativeDeepening:
    """Successively deeper search cycles, up to a depth cap.

    Yields :class:`TTLTermination` instances for depths ``depths[0] <
    depths[1] < ... <= max_depth``; a driver runs one cycle per yielded
    condition and stops as soon as the query is satisfied, exactly as in
    Yang & Garcia-Molina's technique.
    """

    def __init__(self, depths: tuple[int, ...]) -> None:
        if not depths:
            raise FrameworkError("depths must be non-empty")
        if any(d < 1 for d in depths):
            raise FrameworkError("all depths must be >= 1")
        if any(b <= a for a, b in zip(depths, depths[1:])):
            raise FrameworkError(f"depths must be strictly increasing, got {depths}")
        self.depths = depths

    @property
    def max_depth(self) -> int:
        """Deepest cycle this schedule will run."""
        return self.depths[-1]

    def cycles(self) -> Iterator[TTLTermination]:
        """One TTL condition per deepening cycle, shallowest first."""
        for depth in self.depths:
            yield TTLTermination(depth)
