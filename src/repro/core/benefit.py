"""Benefit functions.

Section 3.4: "The benefit function should capture the general goals and
characteristics of the system" — retrieved pages + latency for web caching,
file sizes/bandwidth for multimedia sharing, query processing time for
PeerOlap. Section 4.1(i) defines the case-study function precisely: each
obtained result credits its responder ``B / R``, where ``B`` is the bandwidth
of the answering link and ``R`` the total number of results for that query.

All functions map a :class:`ResultObservation` to a non-negative score; the
engines fold scores into :class:`~repro.core.statistics.StatsTable`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import FrameworkError
from repro.types import NodeId

__all__ = [
    "BandwidthShareBenefit",
    "BenefitFunction",
    "HitCountBenefit",
    "LatencyBenefit",
    "ProcessingTimeBenefit",
    "ResultObservation",
]


@dataclass(frozen=True, slots=True)
class ResultObservation:
    """Everything a node learns from one returned result.

    Attributes
    ----------
    initiator / responder:
        Query endpoints.
    link_kbps:
        Effective bandwidth of the answering link (min of the endpoints).
    n_results:
        Size of the full result list of the query this result belongs to
        ("the larger the results list, the lesser its significance").
    delay:
        Round-trip seconds until this result arrived.
    hops:
        Distance of the responder along the discovery path.
    size:
        Size of the returned object (pages/files), for size-aware functions.
    processing_time:
        Server-side cost of producing the result (OLAP), in seconds.
    """

    initiator: NodeId
    responder: NodeId
    link_kbps: float
    n_results: int
    delay: float
    hops: int = 1
    size: float = 1.0
    processing_time: float = 0.0


@runtime_checkable
class BenefitFunction(Protocol):
    """Maps one result observation to a non-negative benefit score."""

    def __call__(self, obs: ResultObservation) -> float:
        """Score ``obs``; larger means a more desirable neighbor."""
        ...


class BandwidthShareBenefit:
    """The paper's case-study function: ``B / R`` (Section 4.1(i)).

    High-bandwidth responders are preferred, and a result that arrived in a
    large batch counts for less than a scarce one.
    """

    def __call__(self, obs: ResultObservation) -> float:
        if obs.n_results <= 0:
            raise FrameworkError(
                f"observation with n_results={obs.n_results}; a result implies >= 1"
            )
        return obs.link_kbps / obs.n_results


class HitCountBenefit:
    """One point per result, regardless of provenance.

    The simplest possible ledger; the ablation bench compares it against
    ``B / R`` to show why the paper weighs results.
    """

    def __call__(self, obs: ResultObservation) -> float:
        return 1.0


class LatencyBenefit:
    """Pages-over-latency, the web-caching candidate of Section 3.4.

    "the number of retrieved pages, combined with the end-to-end latency, is
    a good candidate for benefit, since page size plays little role."
    """

    def __init__(self, epsilon: float = 1e-3) -> None:
        if epsilon <= 0:
            raise FrameworkError("epsilon must be positive")
        self.epsilon = epsilon

    def __call__(self, obs: ResultObservation) -> float:
        return 1.0 / (obs.delay + self.epsilon)


class ProcessingTimeBenefit:
    """Saved query-processing time, the PeerOlap candidate of Section 3.4.

    A cached chunk that would have been expensive to recompute at the
    warehouse is worth its processing time (net of the delay paid to fetch
    it, floored at zero).
    """

    def __call__(self, obs: ResultObservation) -> float:
        return max(obs.processing_time - obs.delay, 0.0)
