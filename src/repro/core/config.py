"""Framework node configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["NodeConfig"]


@dataclass(frozen=True, slots=True)
class NodeConfig:
    """Tunables every repository node carries (Section 3's parameters).

    Attributes
    ----------
    neighbor_slots:
        Outgoing-list capacity (and, for symmetric relations, the number of
        mutual slots). The case study uses 4.
    reconfiguration_threshold:
        Number of own requests between periodic neighbor updates (the ``T``
        swept in Figure 3(b); default 2, the paper's steady setting).
    always_accept_invitations:
        Algo 5 policy (iv): invited nodes always accept, evicting the least
        beneficial neighbor if necessary. ``False`` switches to Algo 4's
        benefit-gated acceptance.
    update_on_logoff:
        Whether a neighbor's log-off triggers the update process (Section
        4.1 "forced reconfiguration").
    """

    neighbor_slots: int = 4
    reconfiguration_threshold: int = 2
    always_accept_invitations: bool = True
    update_on_logoff: bool = True

    def __post_init__(self) -> None:
        if self.neighbor_slots < 1:
            raise ConfigurationError("neighbor_slots must be >= 1")
        if self.reconfiguration_threshold < 1:
            raise ConfigurationError("reconfiguration_threshold must be >= 1")
