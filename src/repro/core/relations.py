"""Neighbor-relation policies (Section 3.1).

A relation policy owns the *rules* for changing neighbor lists so that the
network stays consistent (``n_j in Out(n_i)`` implies ``n_i in In(n_j)``):

* :class:`AllToAllRelation` — everyone lists everyone; "applicable only for
  small N" (e.g. a single multicast group).
* :class:`PureAsymmetricRelation` — incoming capacity is unbounded, so a
  node may rewire its outgoing list unilaterally and consistency holds "by
  construction" (the Squid top-level-proxy case).
* :class:`AsymmetricRelation` — bounded incoming lists; an outgoing addition
  must be accepted by the target, which may refuse when full.
* :class:`SymmetricRelation` — ``Out == In`` at every node; changes are a
  pairwise agreement (invitation/eviction), the Gnutella case.

Policies mutate :class:`~repro.core.neighbors.NeighborState` objects through
:meth:`connect` / :meth:`disconnect`, which update *both* endpoints
atomically — the only way the package ever edits neighbor lists.
"""

from __future__ import annotations

import math
from typing import Mapping, Protocol, runtime_checkable

from repro.core.neighbors import NeighborState
from repro.errors import TopologyError
from repro.types import NodeId

__all__ = [
    "AllToAllRelation",
    "AsymmetricRelation",
    "PureAsymmetricRelation",
    "RelationPolicy",
    "SymmetricRelation",
]


@runtime_checkable
class RelationPolicy(Protocol):
    """Rules for rewiring neighbor lists while preserving consistency."""

    def make_state(self, node: NodeId) -> NeighborState:
        """A fresh neighbor state with this policy's capacities."""
        ...

    def can_connect(self, src: NeighborState, dst: NeighborState) -> bool:
        """Whether an edge ``src -> dst`` may be added right now."""
        ...

    def connect(self, src: NeighborState, dst: NeighborState) -> None:
        """Add ``dst`` to ``src``'s outgoing list (and whatever consistency
        requires at ``dst``)."""
        ...

    def disconnect(self, src: NeighborState, dst: NeighborState) -> None:
        """Remove the ``src -> dst`` edge (and its mirror, if symmetric)."""
        ...


class _BaseRelation:
    """Shared connect/disconnect plumbing for the directed relations."""

    out_capacity: float
    in_capacity: float

    def make_state(self, node: NodeId) -> NeighborState:
        return NeighborState(node, self.out_capacity, self.in_capacity)

    def can_connect(self, src: NeighborState, dst: NeighborState) -> bool:
        if src.node == dst.node:
            return False
        if dst.node in src.outgoing:
            return False
        return not src.outgoing.is_full and not dst.incoming.is_full

    def connect(self, src: NeighborState, dst: NeighborState) -> None:
        if not self.can_connect(src, dst):
            raise TopologyError(
                f"cannot connect {src.node} -> {dst.node} "
                "(self-loop, duplicate, or a full list)"
            )
        src.outgoing.add(dst.node)
        dst.incoming.add(src.node)

    def disconnect(self, src: NeighborState, dst: NeighborState) -> None:
        if dst.node not in src.outgoing:
            raise TopologyError(f"{dst.node} is not an outgoing neighbor of {src.node}")
        src.outgoing.remove(dst.node)
        dst.incoming.remove(src.node)


class AllToAllRelation(_BaseRelation):
    """Unbounded lists; typically fully meshed at setup time."""

    out_capacity = math.inf
    in_capacity = math.inf

    @staticmethod
    def full_mesh(states: Mapping[NodeId, NeighborState]) -> None:
        """Wire every node to every other node (both directions)."""
        nodes = sorted(states)
        for a in nodes:
            for b in nodes:
                if a != b:
                    states[a].outgoing.add(b)
                    states[a].incoming.add(b)


class PureAsymmetricRelation(_BaseRelation):
    """Bounded outgoing, unbounded incoming: unilateral rewiring is safe."""

    in_capacity = math.inf

    def __init__(self, out_capacity: int) -> None:
        if out_capacity < 1:
            raise TopologyError(f"out_capacity must be >= 1, got {out_capacity}")
        self.out_capacity = float(out_capacity)


class AsymmetricRelation(_BaseRelation):
    """Bounded outgoing *and* incoming lists; targets may refuse when full."""

    def __init__(self, out_capacity: int, in_capacity: int) -> None:
        if out_capacity < 1 or in_capacity < 1:
            raise TopologyError("capacities must be >= 1")
        self.out_capacity = float(out_capacity)
        self.in_capacity = float(in_capacity)


class SymmetricRelation:
    """``Out == In`` everywhere; every edit touches both endpoints' pairs.

    ``capacity`` is the number of neighbor *slots* per node (the case study
    uses 4).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise TopologyError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity

    def make_state(self, node: NodeId) -> NeighborState:
        return NeighborState(node, self.capacity, self.capacity)

    def can_connect(self, src: NeighborState, dst: NeighborState) -> bool:
        if src.node == dst.node or dst.node in src.outgoing:
            return False
        return not src.outgoing.is_full and not dst.outgoing.is_full

    def connect(self, src: NeighborState, dst: NeighborState) -> None:
        """Create the mutual neighborhood ``src <-> dst``."""
        if not self.can_connect(src, dst):
            raise TopologyError(
                f"cannot pair {src.node} <-> {dst.node} "
                "(self-loop, duplicate, or a full slot set)"
            )
        src.outgoing.add(dst.node)
        src.incoming.add(dst.node)
        dst.outgoing.add(src.node)
        dst.incoming.add(src.node)

    def disconnect(self, src: NeighborState, dst: NeighborState) -> None:
        """Dissolve the mutual neighborhood ``src <-> dst``."""
        if dst.node not in src.outgoing:
            raise TopologyError(f"{src.node} and {dst.node} are not neighbors")
        src.outgoing.remove(dst.node)
        src.incoming.remove(dst.node)
        dst.outgoing.remove(src.node)
        dst.incoming.remove(src.node)
