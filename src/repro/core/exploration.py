"""The generic exploration mechanism (Algo 2).

Exploration queries "involve querying (without fetching) about collections of
data": the initiator probes nodes beyond its immediate neighborhood, the
probed nodes "return statistics and summarized information", and the
initiator updates the statistics according to which neighbor selection is
performed.

``generic_explore`` propagates a probe exactly like a search (same
termination/selection machinery, same duplicate suppression) but instead of
fetching content it returns, per reached node, a summary: which of the asked
items the node holds. The caller folds the reports into its
:class:`~repro.core.statistics.StatsTable` with whatever benefit it deems
appropriate (the framework default credits coverage over round-trip delay).
Folding a large exploration round is cheap: ``add_benefit`` only marks the
touched candidates dirty, and the table re-ranks incrementally on the next
read instead of re-sorting per report.

The Gnutella case study does not run a separate exploration step (Section
4.1: "the absence of a central repository and directory information enforces
an extensive search process and there is no need for a separate exploration
step") — there, search doubles as exploration. The web-caching and OLAP
instantiations, which terminate search at 1 hop, rely on this module to
discover distant candidates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.search import NetworkView
from repro.core.selection import SelectAll, SelectionPolicy
from repro.core.statistics import StatsTable
from repro.core.termination import Termination
from repro.types import ItemId, NodeId

__all__ = ["ExplorationOutcome", "ExplorationReport", "generic_explore"]


@dataclass(frozen=True, slots=True)
class ExplorationReport:
    """Summary returned by one probed node.

    Attributes
    ----------
    node:
        The probed node.
    held_items:
        Which of the probe's items the node holds.
    hops:
        Distance along the probe's discovery path.
    delay:
        Round-trip seconds for the summary to reach the initiator.
    """

    node: NodeId
    held_items: frozenset[ItemId]
    hops: int
    delay: float

    @property
    def coverage(self) -> int:
        """How many of the asked items the node held."""
        return len(self.held_items)


@dataclass(frozen=True, slots=True)
class ExplorationOutcome:
    """Everything one exploration round produced."""

    initiator: NodeId
    reports: tuple[ExplorationReport, ...]
    messages: int
    nodes_contacted: int


def generic_explore(
    view: NetworkView,
    initiator: NodeId,
    items: Iterable[ItemId],
    termination: Termination,
    selection: SelectionPolicy | None = None,
    stats: StatsTable | None = None,
    rng: np.random.Generator | None = None,
) -> ExplorationOutcome:
    """Probe the neighborhood about ``items``; return per-node summaries.

    Every reached node reports (there is no short-circuit: exploration wants
    the map, not the first hit), and propagation is bounded only by
    ``termination``. Reports come back for *every* reached node, including
    ones holding none of the items — knowing a node is unhelpful is also
    information.
    """
    if selection is None:
        selection = SelectAll()
    if stats is None:
        stats = StatsTable()
    if rng is None:
        rng = np.random.default_rng(0)
    item_set = frozenset(items)

    reports: list[ExplorationReport] = []
    messages = 0
    seen: set[NodeId] = {initiator}
    frontier: deque[tuple[NodeId, NodeId, int, float]] = deque()

    for target in selection.select(view.neighbors(initiator), stats, rng):
        messages += 1
        frontier.append((target, initiator, 1, view.link_delay(initiator, target)))

    while frontier:
        node, sender, hops, delay = frontier.popleft()
        if node in seen:
            continue
        seen.add(node)

        held = frozenset(i for i in item_set if view.holds(node, i))
        reports.append(
            ExplorationReport(node=node, held_items=held, hops=hops, delay=2.0 * delay)
        )

        if not termination.should_forward(hops, 0):
            continue
        for target in selection.select(view.neighbors(node), stats, rng):
            if target == sender:
                continue
            messages += 1
            if target not in seen:
                frontier.append(
                    (target, node, hops + 1, delay + view.link_delay(node, target))
                )

    return ExplorationOutcome(
        initiator=initiator,
        reports=tuple(reports),
        messages=messages,
        nodes_contacted=len(seen) - 1,
    )
