"""Forwarding-target selection policies (Section 3.2).

"The process of selecting the neighbors to forward a request can take
various forms, from the simple send-to-all approach to random, or history
based selection." :class:`SelectTopKBenefit` is the history-based form,
equivalent to Yang & Garcia-Molina's *Directed BFT* (Section 2 technique
(ii)): queries propagate only to a beneficial subset of the neighbors.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.statistics import StatsTable
from repro.errors import FrameworkError
from repro.types import NodeId

__all__ = ["SelectAll", "SelectRandomK", "SelectTopKBenefit", "SelectionPolicy"]


@runtime_checkable
class SelectionPolicy(Protocol):
    """Chooses which outgoing neighbors receive a (forwarded) request."""

    def select(
        self,
        candidates: Sequence[NodeId],
        stats: StatsTable,
        rng: np.random.Generator,
    ) -> list[NodeId]:
        """Subset of ``candidates`` to forward to, in send order."""
        ...


class SelectAll:
    """Flood: forward to every candidate (Gnutella's behaviour)."""

    def select(
        self,
        candidates: Sequence[NodeId],
        stats: StatsTable,
        rng: np.random.Generator,
    ) -> list[NodeId]:
        return list(candidates)


class SelectRandomK:
    """Forward to ``k`` uniformly random candidates (all if fewer exist)."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise FrameworkError(f"k must be >= 1, got {k}")
        self.k = k

    def select(
        self,
        candidates: Sequence[NodeId],
        stats: StatsTable,
        rng: np.random.Generator,
    ) -> list[NodeId]:
        if len(candidates) <= self.k:
            return list(candidates)
        picks = rng.choice(len(candidates), size=self.k, replace=False)
        return [candidates[i] for i in sorted(picks)]


class SelectTopKBenefit:
    """Directed BFT: forward to the ``k`` historically most beneficial.

    Candidates with no recorded benefit rank last (ties broken by id, via
    :meth:`StatsTable.ranked` determinism); if *none* of the candidates has
    statistics yet the policy degrades to the first ``k`` in list order, so a
    cold node still searches.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise FrameworkError(f"k must be >= 1, got {k}")
        self.k = k

    def select(
        self,
        candidates: Sequence[NodeId],
        stats: StatsTable,
        rng: np.random.Generator,
    ) -> list[NodeId]:
        if len(candidates) <= self.k:
            return list(candidates)
        ordered = sorted(
            candidates, key=lambda n: (-stats.benefit_of(n), n)
        )
        return ordered[: self.k]
