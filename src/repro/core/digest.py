"""Content digests: compact summaries of a repository's holdings.

The paper repeatedly gestures at *summarized information* without requiring
it: Algo 1 forwards "use summary info if available", exploration replies
carry "statistics and summarized information" (Algo 2), and Section 3.4's
invitation-assessment option (b) is "the exchange of summarized information,
according to which the invitee can assess the potential benefit". Squid's
cache digests are the classic realization: a Bloom filter over the cache
keys.

This module provides that substrate:

* :class:`BloomDigest` — a from-scratch Bloom filter over item ids (double
  hashing over stable 64-bit mixes; no false negatives, tunable false-
  positive rate);
* :class:`DigestDirectory` — per-node digests with staleness tracking;
* :class:`SelectByDigest` — a selection policy that forwards a query
  preferentially to neighbors whose digest claims the item (falling back to
  flooding when nobody claims it), i.e. digest-guided search;
* :func:`digest_similarity` — estimated holdings overlap between two nodes,
  the summarized-information benefit proxy for invitation gating.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.core.statistics import StatsTable
from repro.errors import FrameworkError
from repro.types import ItemId, NodeId

__all__ = [
    "BloomDigest",
    "DigestDirectory",
    "SelectByDigest",
    "digest_similarity",
]


def _mix(value: int) -> int:
    """SplitMix64 finalizer: a fast, well-distributed 64-bit mix."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


class BloomDigest:
    """A Bloom filter over item ids.

    Parameters
    ----------
    capacity:
        Expected number of distinct items to be added.
    fp_rate:
        Target false-positive probability at ``capacity`` items.

    Guarantees: :meth:`might_hold` never returns ``False`` for an added item
    (no false negatives); false positives occur at roughly ``fp_rate``.
    """

    def __init__(self, capacity: int, fp_rate: float = 0.02) -> None:
        if capacity < 1:
            raise FrameworkError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 < fp_rate < 1.0:
            raise FrameworkError(f"fp_rate must be in (0, 1), got {fp_rate}")
        self.capacity = capacity
        self.fp_rate = fp_rate
        # Standard sizing: m = -n ln p / (ln 2)^2, k = m/n ln 2.
        self.n_bits = max(8, int(math.ceil(-capacity * math.log(fp_rate) / math.log(2) ** 2)))
        self.n_hashes = max(1, int(round(self.n_bits / capacity * math.log(2))))
        self._bits = np.zeros(self.n_bits, dtype=bool)
        self.n_added = 0

    def _positions(self, item: ItemId) -> list[int]:
        # Double hashing: h_i = h1 + i*h2 (Kirsch-Mitzenmacher).
        h1 = _mix(int(item))
        h2 = _mix(h1 ^ 0xDEADBEEFCAFEF00D) | 1  # odd => full period
        return [((h1 + i * h2) & 0xFFFFFFFFFFFFFFFF) % self.n_bits
                for i in range(self.n_hashes)]

    def add(self, item: ItemId) -> None:
        """Record ``item`` in the digest."""
        for pos in self._positions(item):
            self._bits[pos] = True
        self.n_added += 1

    def update(self, items: Iterable[ItemId]) -> None:
        """Record every item of ``items``."""
        for item in items:
            self.add(item)

    def might_hold(self, item: ItemId) -> bool:
        """True if ``item`` *may* have been added (never a false negative)."""
        return all(self._bits[pos] for pos in self._positions(item))

    @property
    def fill_ratio(self) -> float:
        """Fraction of set bits — a saturation warning signal."""
        return float(self._bits.mean())

    def estimated_fp_rate(self) -> float:
        """Current false-positive probability estimate, ``fill^k``."""
        return self.fill_ratio ** self.n_hashes

    def intersection_bits(self, other: "BloomDigest") -> int:
        """Number of bit positions set in both digests (same geometry only)."""
        if self.n_bits != other.n_bits or self.n_hashes != other.n_hashes:
            raise FrameworkError("digests have different geometries")
        return int(np.logical_and(self._bits, other._bits).sum())

    @staticmethod
    def from_items(items: Sequence[ItemId], fp_rate: float = 0.02) -> "BloomDigest":
        """Build a digest sized for exactly ``items``."""
        digest = BloomDigest(max(1, len(items)), fp_rate)
        digest.update(items)
        return digest


def digest_similarity(a: BloomDigest, b: BloomDigest) -> float:
    """Chance-corrected overlap estimate of two same-geometry digests.

    The raw bit-level Jaccard of two independent Bloom filters has a large
    floor (two half-full random bitmaps already share ~1/3 of their set
    bits), so the observed Jaccard is corrected by the value expected from
    the fill ratios alone::

        adjusted = (J_obs - J_chance) / (1 - J_chance)

    clamped to [0, 1]: ~0 for disjoint holdings, ~1 for identical ones. This
    is the "summarized information" an invitee can use to assess an unknown
    inviter's potential benefit (Section 3.4 option (b)).
    """
    inter = a.intersection_bits(b)
    union = int(np.logical_or(a._bits, b._bits).sum())
    if union == 0:
        return 0.0
    observed = inter / union
    pa, pb = a.fill_ratio, b.fill_ratio
    expected_inter = pa * pb
    expected_union = pa + pb - expected_inter
    chance = expected_inter / expected_union if expected_union else 0.0
    if chance >= 1.0:
        return 1.0
    return max(0.0, min(1.0, (observed - chance) / (1.0 - chance)))


class DigestDirectory:
    """Per-node digests with staleness accounting.

    A node refreshing its neighbors' digests every ``max_age`` operations
    models Squid's periodic cache-digest exchange; the search layer treats a
    stale entry as absent (fall back to flooding rather than trust it).
    """

    def __init__(self, max_age: int = 1000) -> None:
        if max_age < 1:
            raise FrameworkError("max_age must be >= 1")
        self.max_age = max_age
        self._digests: dict[NodeId, BloomDigest] = {}
        self._stamped_at: dict[NodeId, int] = {}
        self._clock = 0

    def tick(self, amount: int = 1) -> None:
        """Advance the staleness clock."""
        self._clock += amount

    def publish(self, node: NodeId, digest: BloomDigest) -> None:
        """Store ``node``'s fresh digest."""
        self._digests[node] = digest
        self._stamped_at[node] = self._clock

    def get_fresh(self, node: NodeId) -> BloomDigest | None:
        """The node's digest if present and not stale, else ``None``."""
        digest = self._digests.get(node)
        if digest is None:
            return None
        if self._clock - self._stamped_at[node] > self.max_age:
            return None
        return digest

    def forget(self, node: NodeId) -> None:
        """Drop a node's digest (e.g. it logged off)."""
        self._digests.pop(node, None)
        self._stamped_at.pop(node, None)

    def __len__(self) -> int:
        return len(self._digests)


class SelectByDigest:
    """Digest-guided forwarding: send first to neighbors claiming the item.

    This is Algo 1's "use summary info if available" turned into a selection
    policy. Because Bloom digests have no false negatives, a neighbor whose
    fresh digest rejects the item *cannot* hold it — those neighbors are only
    contacted when nobody claims the item (pure exploration fallback,
    bounded by ``fallback_k``).
    """

    def __init__(self, directory: DigestDirectory, item: ItemId, fallback_k: int = 2):
        if fallback_k < 0:
            raise FrameworkError("fallback_k must be non-negative")
        self.directory = directory
        self.item = item
        self.fallback_k = fallback_k

    def select(
        self,
        candidates: Sequence[NodeId],
        stats: StatsTable,
        rng: np.random.Generator,
    ) -> list[NodeId]:
        claiming: list[NodeId] = []
        unknown: list[NodeId] = []
        for node in candidates:
            digest = self.directory.get_fresh(node)
            if digest is None:
                unknown.append(node)
            elif digest.might_hold(self.item):
                claiming.append(node)
        if claiming:
            return claiming + unknown
        # Nobody claims it: probe the unknowns plus a bounded random sample
        # of the rejecting neighbors is pointless (no false negatives), so
        # only unknowns are worth contacting; cap the fan-out.
        if len(unknown) <= self.fallback_k:
            return unknown
        picks = rng.choice(len(unknown), size=self.fallback_k, replace=False)
        return [unknown[i] for i in sorted(picks)]
