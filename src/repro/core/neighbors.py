"""Per-node neighbor lists.

Section 3.1: each repository maintains two lists — outgoing neighbors (to
which it forwards its own requests) and incoming neighbors (from which it
receives requests). Capacities are bounded "due to limitations on the
available bandwidth and processing capacity"; the *pure asymmetric* case
models an unbounded incoming list.

:class:`NeighborList` preserves insertion order (deterministic iteration) and
offers O(1) membership. :class:`NeighborState` pairs the two lists for one
node.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.errors import NeighborListError
from repro.types import NodeId

__all__ = ["NeighborList", "NeighborState"]


class NeighborList:
    """An ordered, capacity-bounded set of node ids.

    Parameters
    ----------
    capacity:
        Maximum number of members; ``math.inf`` for unbounded (the pure
        asymmetric incoming list).
    """

    __slots__ = ("capacity", "_order", "_members")

    def __init__(self, capacity: float = math.inf) -> None:
        if capacity != math.inf:
            if capacity < 0 or int(capacity) != capacity:
                raise NeighborListError(
                    f"capacity must be a non-negative integer or inf, got {capacity!r}"
                )
        self.capacity = capacity
        self._order: list[NodeId] = []
        self._members: set[NodeId] = set()

    def __contains__(self, node: NodeId) -> bool:
        return node in self._members

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._order)

    @property
    def is_full(self) -> bool:
        """Whether no more members can be added without eviction."""
        return len(self._order) >= self.capacity

    @property
    def free_slots(self) -> float:
        """Remaining capacity (``inf`` for unbounded lists)."""
        return self.capacity - len(self._order)

    def add(self, node: NodeId) -> None:
        """Append ``node``; rejects duplicates and overflow."""
        if node in self._members:
            raise NeighborListError(f"node {node} is already a neighbor")
        if self.is_full:
            raise NeighborListError(
                f"neighbor list full (capacity {self.capacity}); evict first"
            )
        self._order.append(node)
        self._members.add(node)

    def remove(self, node: NodeId) -> None:
        """Remove ``node``; rejects absent members."""
        if node not in self._members:
            raise NeighborListError(f"node {node} is not a neighbor")
        self._members.discard(node)
        self._order.remove(node)

    def discard(self, node: NodeId) -> bool:
        """Remove ``node`` if present; returns whether it was a member."""
        if node not in self._members:
            return False
        self.remove(node)
        return True

    def clear(self) -> None:
        """Remove every member."""
        self._order.clear()
        self._members.clear()

    def as_tuple(self) -> tuple[NodeId, ...]:
        """Snapshot of the members in insertion order."""
        return tuple(self._order)

    def view(self) -> list[NodeId]:
        """The live member list, zero-copy. Treat as read-only.

        Exists for the per-query hot path of the simulation engines, where
        copying every neighbor list would dominate; mutate only through
        :meth:`add` / :meth:`remove`.

        Identity guarantee: the returned list object is stable for the
        lifetime of this ``NeighborList`` — :meth:`add`, :meth:`remove`,
        :meth:`discard` and :meth:`clear` all mutate it in place and never
        rebind it. Callers may therefore hold it as a live adjacency row
        (see :class:`repro.core.fastpath.AdjacencySnapshot`): every link
        add / sever / logoff the protocol performs updates the row
        incrementally, with no per-hop re-materialization.
        """
        return self._order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity == math.inf else int(self.capacity)
        return f"NeighborList({list(self._order)}, capacity={cap})"


class NeighborState:
    """The outgoing/incoming neighbor lists of one node.

    Parameters
    ----------
    node:
        The owning node's id.
    out_capacity / in_capacity:
        Capacities of the respective lists (Section 3.1's ``O_i`` / ``I_i``).
    """

    __slots__ = ("node", "outgoing", "incoming")

    def __init__(
        self,
        node: NodeId,
        out_capacity: float = math.inf,
        in_capacity: float = math.inf,
    ) -> None:
        self.node = node
        self.outgoing = NeighborList(out_capacity)
        self.incoming = NeighborList(in_capacity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NeighborState(node={self.node}, out={self.outgoing.as_tuple()}, "
            f"in={self.incoming.as_tuple()})"
        )
