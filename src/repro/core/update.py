"""The neighbor-update mechanism (Algos 3 and 4).

The update logic is written as *pure decision functions* that compute what
should change, plus small action records (:class:`InviteAction`,
:class:`EvictAction`) describing the messages a symmetric reconfiguration
must exchange. Engines then apply the actions on their own timescale: the
fast Gnutella engine applies them instantaneously, the detailed engine ships
them as real messages. Keeping decisions pure means both engines — and the
asymmetric instantiations — share one implementation of the paper's logic.

Asymmetric case (Algo 3): sort everything known by benefit, keep the best
``k`` as the new outgoing list, evict the rest. No agreement needed.

Symmetric case (Algo 4 / Algo 5 ``Reconfigure``): compute the desired list;
for each desired node not currently a neighbor send an *invitation*; for
each current neighbor not desired send an *eviction*. The invited node's
side (Algo 5 ``Process_Invitation``) always accepts, evicting its least
beneficial neighbor if full; Algo 4 also describes a benefit-gated variant
(:func:`process_invitation` with ``always_accept=False``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.neighbors import NeighborState
from repro.core.statistics import StatsTable
from repro.errors import FrameworkError
from repro.types import NodeId

__all__ = [
    "EvictAction",
    "InviteAction",
    "InvitationDecision",
    "asymmetric_update",
    "plan_reconfiguration",
    "plan_reconfiguration_full_scan",
    "process_invitation",
    "reconfiguration_actions",
]


@dataclass(frozen=True, slots=True)
class InviteAction:
    """``inviter`` asks ``invitee`` to become a mutual neighbor."""

    inviter: NodeId
    invitee: NodeId


@dataclass(frozen=True, slots=True)
class EvictAction:
    """``evictor`` terminates its neighborhood with ``evicted``."""

    evictor: NodeId
    evicted: NodeId


def asymmetric_update(
    state: NeighborState,
    stats: StatsTable,
    eligible: Callable[[NodeId], bool] | None = None,
) -> tuple[list[NodeId], list[NodeId]]:
    """Algo 3: replace the outgoing list with the most beneficial known nodes.

    Current neighbors compete with explored non-neighbors on equal footing
    (their accumulated benefit); the best ``capacity`` eligible nodes win.

    Returns ``(added, evicted)`` — the caller applies the changes through its
    relation policy (pure-asymmetric targets always accept, so application
    cannot fail there).
    """
    capacity = state.outgoing.capacity
    if capacity == float("inf"):
        raise FrameworkError("asymmetric_update needs a bounded outgoing capacity")
    k = int(capacity)
    current = list(state.outgoing)
    desired = plan_reconfiguration(current, stats, k, exclude=(state.node,), eligible=eligible)
    desired_set = set(desired)
    current_set = set(current)
    added = [n for n in desired if n not in current_set]
    evicted = [n for n in current if n not in desired_set]
    return added, evicted


def plan_reconfiguration(
    current: Sequence[NodeId],
    stats: StatsTable,
    k: int,
    exclude: Sequence[NodeId] = (),
    eligible: Callable[[NodeId], bool] | None = None,
) -> list[NodeId]:
    """The desired neighbor list: the ``k`` most beneficial eligible nodes.

    Candidates are everyone with statistics plus the current neighbors (a
    neighbor that produced nothing yet still occupies its slot rather than
    being dropped for an unknown — Algo 3 sorts "current neighbors and nodes
    encountered by exploration" together). Ties and zero-benefit candidates
    order deterministically: benefit desc, then current-neighbor first, then
    node id.

    Incremental: walks the table's cached benefit-descending ranking
    (:meth:`~repro.core.statistics.StatsTable.iter_ranked_runs`) and stops
    as soon as ``k`` slots fill, so only dirty candidates are re-ranked and
    the ``eligible`` predicate runs on the walked prefix instead of every
    known peer. Returns exactly what the full-scan reference
    (:func:`plan_reconfiguration_full_scan`) returns — a hypothesis
    equivalence test and the engine digest tests enforce the identity.
    """
    if k < 0:
        raise FrameworkError(f"k must be non-negative, got {k}")
    if k == 0:
        return []
    excluded = set(exclude)
    current_set = set(current)
    # Current neighbors without a statistics entry compete at benefit zero
    # (``current`` is duplicate-free by NeighborList construction, so this
    # iterates a deterministic sequence, not a set).
    extras = sorted(n for n in current if not stats.knows(n) and n not in excluded)
    desired: list[NodeId] = []

    def take(run: list[NodeId]) -> bool:
        # Within an equal-benefit run the full sort key orders current
        # neighbors first, then non-current, each by ascending id (the run
        # is already id-sorted). Current neighbors bypass ``eligible`` —
        # they already occupy a slot.
        for n in run:
            if n in current_set and n not in excluded:
                desired.append(n)
                if len(desired) == k:
                    return True
        for n in run:
            if n not in current_set and n not in excluded and (
                eligible is None or eligible(n)
            ):
                desired.append(n)
                if len(desired) == k:
                    return True
        return False

    merged_extras = False
    for benefit, run in stats.iter_ranked_runs():
        if benefit == 0.0 and extras:
            # Zero-benefit known peers tie with the statless current
            # neighbors; merge so the shared id tiebreak interleaves them
            # exactly as the full sort would.
            run = sorted(run + extras)
            merged_extras = True
        if take(run):
            return desired
    if not merged_extras and extras:
        take(extras)
    return desired


def plan_reconfiguration_full_scan(
    current: Sequence[NodeId],
    stats: StatsTable,
    k: int,
    exclude: Sequence[NodeId] = (),
    eligible: Callable[[NodeId], bool] | None = None,
) -> list[NodeId]:
    """Reference implementation of :func:`plan_reconfiguration`.

    The original full-scan version: materialize every candidate, filter,
    sort by the total ``(-benefit, not-current, id)`` key, take ``k``. Kept
    as the semantics oracle for the incremental walk — the property test
    drives both over arbitrary ledgers and the digest test matrix swaps this
    into the live protocol to prove whole-run event streams are identical.
    """
    if k < 0:
        raise FrameworkError(f"k must be non-negative, got {k}")
    excluded = set(exclude)
    current_set = set(current)
    candidates = set(stats.known_nodes()) | current_set
    # Iterate in id order: the final sort key is total (id tiebreak), so this
    # does not change the result — it removes the set-ordering dependence the
    # R003 lint rule guards against, keeping the plan stable by construction.
    pool = [
        n
        for n in sorted(candidates)
        if n not in excluded and (eligible is None or eligible(n) or n in current_set)
    ]
    pool.sort(key=lambda n: (-stats.benefit_of(n), n not in current_set, n))
    return pool[:k]


def reconfiguration_actions(
    node: NodeId,
    current: Sequence[NodeId],
    desired: Sequence[NodeId],
) -> tuple[list[InviteAction], list[EvictAction]]:
    """Algo 5 ``Reconfigure``: the messages realizing ``current -> desired``.

    Invitations go to desired non-neighbors; evictions go to current
    neighbors that fell out of the desired list.
    """
    current_set = set(current)
    desired_set = set(desired)
    invites = [InviteAction(node, n) for n in desired if n not in current_set]
    evicts = [EvictAction(node, n) for n in current if n not in desired_set]
    return invites, evicts


@dataclass(frozen=True, slots=True)
class InvitationDecision:
    """Outcome of processing an invitation at the invited node.

    Attributes
    ----------
    accepted:
        Whether the invitee agreed to the new neighborhood.
    evicted:
        The neighbor the invitee dropped to make room, if any.
    """

    accepted: bool
    evicted: NodeId | None = None


def process_invitation(
    invitee_state: NeighborState,
    inviter: NodeId,
    stats: StatsTable,
    always_accept: bool = True,
) -> InvitationDecision:
    """Algo 5 ``Process_Invitation`` / Algo 4's invited-node policy.

    With ``always_accept`` (the case study's choice, Section 4.1(iv)), the
    invitee takes the inviter, evicting its least beneficial neighbor when
    full. With ``always_accept=False`` the invitee only accepts when it has a
    free slot or the inviter's recorded benefit beats the worst current
    neighbor's (Algo 4's benefit-gated variant — note the paper observes the
    inviter's benefit may simply be unknown, in which case it scores 0 and
    full invitees refuse).

    This function only *decides*; the caller performs the actual rewiring of
    both parties (and the eviction notification).
    """
    if inviter == invitee_state.node:
        raise FrameworkError("a node cannot invite itself")
    if inviter in invitee_state.outgoing:
        # Already neighbors: accepting is a harmless no-op agreement.
        return InvitationDecision(accepted=True, evicted=None)
    if not invitee_state.outgoing.is_full:
        return InvitationDecision(accepted=True, evicted=None)

    neighbors = list(invitee_state.outgoing)
    # Least beneficial current neighbor; ties break toward the larger id so
    # the *earliest-added, most-proven* neighbors survive ties.
    worst = min(neighbors, key=lambda n: (stats.benefit_of(n), -n))
    if always_accept or stats.benefit_of(inviter) > stats.benefit_of(worst):
        return InvitationDecision(accepted=True, evicted=worst)
    return InvitationDecision(accepted=False, evicted=None)
