"""Per-node statistics tables.

Section 3.4: neighbor updates are "based on the collection of statistics and
the computation of a benefit function ... this requires maintaining
information for both the neighboring and the non-neighboring nodes that were
encountered through search and exploration."

:class:`StatsTable` is each node's private ledger of cumulative benefit per
encountered peer. Eviction resets the evictor's entry (Algo 5
Process_Eviction: "reset n's statistics, so that n_i will not attempt to
reconnect to n in the near future").
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.types import NodeId

__all__ = ["StatsTable"]


class StatsTable:
    """Cumulative per-peer benefit statistics for one node.

    Ranking is deterministic: ties in benefit break by ascending node id, so
    two same-seed runs reconfigure identically.
    """

    __slots__ = ("_benefit", "_encounters")

    def __init__(self) -> None:
        self._benefit: dict[NodeId, float] = {}
        self._encounters: dict[NodeId, int] = {}

    def add_benefit(self, node: NodeId, amount: float) -> None:
        """Credit ``amount`` of benefit to ``node`` (one result observed)."""
        if amount < 0:
            raise ValueError(f"benefit must be non-negative, got {amount}")
        self._benefit[node] = self._benefit.get(node, 0.0) + amount
        self._encounters[node] = self._encounters.get(node, 0) + 1

    def benefit_of(self, node: NodeId) -> float:
        """Cumulative benefit credited to ``node`` (0 if never seen)."""
        return self._benefit.get(node, 0.0)

    def encounters_of(self, node: NodeId) -> int:
        """Number of benefit observations recorded for ``node``."""
        return self._encounters.get(node, 0)

    def known_nodes(self) -> tuple[NodeId, ...]:
        """All peers with recorded statistics, in id order."""
        return tuple(sorted(self._benefit))

    def reset(self, node: NodeId) -> None:
        """Forget everything about ``node`` (Process_Eviction semantics)."""
        self._benefit.pop(node, None)
        self._encounters.pop(node, None)

    def clear(self) -> None:
        """Forget everything about everyone."""
        self._benefit.clear()
        self._encounters.clear()

    def decay(self, factor: float) -> None:
        """Multiply every benefit by ``factor`` in [0, 1].

        Not used by the paper's case study but a standard aging mechanism for
        environments with faster-drifting access patterns (Section 3.4 notes
        exploration frequency should track content-change frequency).
        """
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"decay factor must be in [0, 1], got {factor}")
        for node in self._benefit:
            self._benefit[node] *= factor

    def ranked(
        self,
        exclude: Iterable[NodeId] = (),
        eligible: Callable[[NodeId], bool] | None = None,
    ) -> list[NodeId]:
        """Known peers sorted by benefit (descending), ties by ascending id.

        Parameters
        ----------
        exclude:
            Peers to omit (e.g. the ranking node itself).
        eligible:
            Optional predicate; peers failing it are omitted (e.g. nodes
            currently offline cannot be invited).
        """
        excluded = set(exclude)
        nodes = [
            n
            for n in self._benefit
            if n not in excluded and (eligible is None or eligible(n))
        ]
        nodes.sort(key=lambda n: (-self._benefit[n], n))
        return nodes

    def top_k(
        self,
        k: int,
        exclude: Iterable[NodeId] = (),
        eligible: Callable[[NodeId], bool] | None = None,
    ) -> list[NodeId]:
        """The ``k`` most beneficial eligible peers."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return self.ranked(exclude=exclude, eligible=eligible)[:k]

    def __len__(self) -> int:
        return len(self._benefit)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        top = self.ranked()[:5]
        return f"StatsTable({len(self)} peers, top={top})"
