"""Per-node statistics tables.

Section 3.4: neighbor updates are "based on the collection of statistics and
the computation of a benefit function ... this requires maintaining
information for both the neighboring and the non-neighboring nodes that were
encountered through search and exploration."

:class:`StatsTable` is each node's private ledger of cumulative benefit per
encountered peer. Eviction resets the evictor's entry (Algo 5
Process_Eviction: "reset n's statistics, so that n_i will not attempt to
reconnect to n in the near future").

Ranking is *incremental*: the table keeps a benefit-descending order of the
known peers and a dirty set of the peers whose benefit changed since the
order was last consulted. Consulting the ranking repairs only the dirty
entries (filter out + binary-search re-insert), so a reconfiguration after a
couple of queries re-ranks the two or three peers those queries touched
instead of re-sorting the whole ledger — the full-scan behaviour it
replaces is O(m log m) per decision.

Invariants of the cached order (the dirty-candidate contract):

* ``_order`` holds exactly ``_benefit``'s keys minus the dirty set's
  members, sorted by benefit **descending**; equal-benefit runs carry no
  promised internal order (``decay`` can collapse distinct values into new
  exact ties without dirtying anything, so a total (-benefit, id) order
  could not survive it).
* Every mutation that changes a peer's benefit (``add_benefit``, ``reset``)
  marks that peer dirty; ``decay`` multiplies every benefit by one
  non-negative factor, which is order-preserving, and therefore dirties
  nothing.
* Consumers restore the deterministic total order by sorting each
  equal-benefit run by ascending id on the fly (runs are tiny in practice),
  so :meth:`ranked` returns exactly the (-benefit, id) order it always did.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Iterable, Iterator

from repro.types import NodeId

__all__ = ["StatsTable"]


class StatsTable:
    """Cumulative per-peer benefit statistics for one node.

    Ranking is deterministic: ties in benefit break by ascending node id, so
    two same-seed runs reconfigure identically.
    """

    __slots__ = ("_benefit", "_encounters", "_order", "_dirty")

    def __init__(self) -> None:
        self._benefit: dict[NodeId, float] = {}
        self._encounters: dict[NodeId, int] = {}
        # Benefit-descending order of the non-dirty known peers, plus the
        # dirty set awaiting repair (see the module docstring's invariants).
        self._order: list[NodeId] = []
        self._dirty: set[NodeId] = set()

    def add_benefit(self, node: NodeId, amount: float) -> None:
        """Credit ``amount`` of benefit to ``node`` (one result observed)."""
        if amount < 0:
            raise ValueError(f"benefit must be non-negative, got {amount}")
        self._benefit[node] = self._benefit.get(node, 0.0) + amount
        self._encounters[node] = self._encounters.get(node, 0) + 1
        self._dirty.add(node)

    def benefit_of(self, node: NodeId) -> float:
        """Cumulative benefit credited to ``node`` (0 if never seen)."""
        return self._benefit.get(node, 0.0)

    def encounters_of(self, node: NodeId) -> int:
        """Number of benefit observations recorded for ``node``."""
        return self._encounters.get(node, 0)

    def known_nodes(self) -> tuple[NodeId, ...]:
        """All peers with recorded statistics, in id order."""
        return tuple(sorted(self._benefit))

    def knows(self, node: NodeId) -> bool:
        """Whether any statistics are recorded for ``node``."""
        return node in self._benefit

    def reset(self, node: NodeId) -> None:
        """Forget everything about ``node`` (Process_Eviction semantics)."""
        self._benefit.pop(node, None)
        self._encounters.pop(node, None)
        self._dirty.add(node)

    def clear(self) -> None:
        """Forget everything about everyone."""
        self._benefit.clear()
        self._encounters.clear()
        self._order.clear()
        self._dirty.clear()

    def decay(self, factor: float) -> None:
        """Multiply every benefit by ``factor`` in [0, 1].

        Not used by the paper's case study but a standard aging mechanism for
        environments with faster-drifting access patterns (Section 3.4 notes
        exploration frequency should track content-change frequency).

        One shared non-negative factor is order-preserving, so the cached
        ranking needs no repair — though distinct values may collapse into
        new exact ties, which is why the cache only promises a descending
        order, never a tie order (consumers sort runs by id on demand).
        """
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"decay factor must be in [0, 1], got {factor}")
        for node in self._benefit:
            self._benefit[node] *= factor

    def _repaired_order(self) -> list[NodeId]:
        """The benefit-descending order with all dirty entries re-ranked."""
        dirty = self._dirty
        if dirty:
            benefit = self._benefit
            if len(dirty) * 4 >= len(benefit):
                # Majority dirty (first consult, or post-clear rebuild): a
                # full sort beats per-entry insertion.
                self._order = sorted(benefit, key=benefit.__getitem__, reverse=True)
            else:
                order = [n for n in self._order if n not in dirty]
                for n in sorted(dirty):
                    if n in benefit:
                        insort(order, n, key=lambda m: -benefit[m])
                self._order = order
            dirty.clear()
        return self._order

    def iter_ranked_runs(self) -> Iterator[tuple[float, list[NodeId]]]:
        """Yield ``(benefit, nodes)`` runs in benefit-descending order.

        Each run holds every known peer at exactly that benefit, sorted by
        ascending id. The walk is lazy: a consumer that stops after filling
        ``k`` slots never pays for the tail (the early-exit
        :func:`~repro.core.update.plan_reconfiguration` relies on this).
        Do not mutate the table while iterating.
        """
        order = self._repaired_order()
        benefit = self._benefit
        i, m = 0, len(order)
        while i < m:
            b = benefit[order[i]]
            j = i + 1
            while j < m and benefit[order[j]] == b:
                j += 1
            run = order[i:j]
            if j - i > 1:
                run.sort()
            yield b, run
            i = j

    def ranked(
        self,
        exclude: Iterable[NodeId] = (),
        eligible: Callable[[NodeId], bool] | None = None,
    ) -> list[NodeId]:
        """Known peers sorted by benefit (descending), ties by ascending id.

        Parameters
        ----------
        exclude:
            Peers to omit (e.g. the ranking node itself).
        eligible:
            Optional predicate; peers failing it are omitted (e.g. nodes
            currently offline cannot be invited).
        """
        excluded = set(exclude)
        out: list[NodeId] = []
        for _, run in self.iter_ranked_runs():
            for n in run:
                if n not in excluded and (eligible is None or eligible(n)):
                    out.append(n)
        return out

    def top_k(
        self,
        k: int,
        exclude: Iterable[NodeId] = (),
        eligible: Callable[[NodeId], bool] | None = None,
    ) -> list[NodeId]:
        """The ``k`` most beneficial eligible peers.

        Early-exits the ranking walk once ``k`` peers qualify, so the cost
        tracks ``k`` plus the dirty-repair work, not the ledger size.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        excluded = set(exclude)
        out: list[NodeId] = []
        if k == 0:
            return out
        for _, run in self.iter_ranked_runs():
            for n in run:
                if n not in excluded and (eligible is None or eligible(n)):
                    out.append(n)
                    if len(out) == k:
                        return out
        return out

    def __len__(self) -> int:
        return len(self._benefit)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        top = self.ranked()[:5]
        return f"StatsTable({len(self)} peers, top={top})"
