"""Struct-of-arrays peer state: the engine core at 100k peers.

The object-per-peer layout (:class:`~repro.gnutella.node.PeerState` holding a
:class:`~repro.core.neighbors.NeighborState` holding two
:class:`~repro.core.neighbors.NeighborList`\\ s, each a list *plus* a set)
costs roughly a kilobyte per peer across eight heap objects, and every hot
read is an attribute chase. That is irrelevant at the paper's 2,000 users and
prohibitive at the ROADMAP's 100k-1M: the flood kernel spends its time
hopping between objects instead of walking memory.

This module keeps the exact same *semantics* in flat, index-addressed slabs:

``NeighborTable``
    One contiguous ``list[int]`` of ``n * slots`` ids plus a degree column.
    Row ``u`` lives at ``ids[u*slots : u*slots + deg[u]]``. Insertion order,
    duplicate/overflow rejection, and left-shifting removal mirror
    :class:`~repro.core.neighbors.NeighborList` exactly (the hypothesis
    oracle test drives both with the same operation stream and asserts
    identical decoded state).

``PeerArrays``
    The whole population's mutable scalars as columns — an online *bitmap*
    (``bytearray``), sessions / query-epoch / request counters as flat int
    lists — plus the two neighbor tables and the per-node
    :class:`~repro.core.statistics.StatsTable` ledgers. (The benefit ledger
    itself stays a per-node sparse mapping: it is keyed by *encountered*
    peer, which is unbounded and sparse, so a hash map per node is the
    compact layout; the dense per-peer counters are what flatten.)

``SoAPeer`` / ``SoANeighborState`` / ``SlotNeighborList``
    Thin pre-built views giving every slab cell the full ``PeerState``
    interface, so the protocol, the observability walkers, and the test
    suite run unchanged over either layout. The views hold no state of
    their own — every read/write lands in the arrays — which is what makes
    a ``soa=True`` engine bit-identical to the object engine: same methods,
    same order, same floats.

The one interface difference is :meth:`SlotNeighborList.view`, which returns
a fresh copy per call instead of a live identity-stable list (a slab row has
no per-node list object to share). The flood fast path never calls it in SoA
mode — it walks the slab directly — and the reference search treats the
result as read-only, so the distinction is invisible to callers that honor
the documented read-only contract.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.statistics import StatsTable
from repro.errors import NeighborListError
from repro.types import NodeId

__all__ = [
    "NeighborTable",
    "PeerArrays",
    "SlotNeighborList",
    "SoANeighborState",
    "SoAPeer",
    "SoAPeerList",
]


class NeighborTable:
    """Fixed-stride neighbor slab: ``n`` rows of at most ``slots`` ids.

    Semantically a dense array of :class:`~repro.core.neighbors.NeighborList`
    instances with integer capacity ``slots``: rows preserve insertion
    order, reject duplicates and overflow, and removal left-shifts the tail
    (exactly ``list.remove``). Rows are tiny (the case study uses 4 slots),
    so the duplicate scan is a handful of integer compares — cheaper than
    the per-node hash set it replaces, and 8 heap objects per peer cheaper.
    """

    __slots__ = ("n", "slots", "ids", "deg")

    def __init__(self, n: int, slots: int) -> None:
        if n < 0:
            raise NeighborListError(f"population size must be non-negative, got {n}")
        if slots < 0 or int(slots) != slots:
            raise NeighborListError(
                f"capacity must be a non-negative integer, got {slots!r}"
            )
        self.n = n
        self.slots = int(slots)
        #: Flat id slab; row ``u`` occupies ``ids[u*slots : u*slots+deg[u]]``.
        self.ids: list[int] = [0] * (n * self.slots)
        #: Degree column: live row lengths.
        self.deg: list[int] = [0] * n

    def add(self, node: NodeId, other: NodeId) -> None:
        """Append ``other`` to ``node``'s row; rejects duplicates/overflow."""
        d = self.deg[node]
        if d >= self.slots:
            raise NeighborListError(
                f"neighbor list full (capacity {self.slots}); evict first"
            )
        base = node * self.slots
        ids = self.ids
        for i in range(base, base + d):
            if ids[i] == other:
                raise NeighborListError(f"node {other} is already a neighbor")
        ids[base + d] = other
        self.deg[node] = d + 1

    def remove(self, node: NodeId, other: NodeId) -> None:
        """Remove ``other`` from ``node``'s row; rejects absent members."""
        base = node * self.slots
        d = self.deg[node]
        ids = self.ids
        for i in range(base, base + d):
            if ids[i] == other:
                # Shift the tail left one slot, preserving insertion order.
                ids[i : base + d - 1] = ids[i + 1 : base + d]
                self.deg[node] = d - 1
                return
        raise NeighborListError(f"node {other} is not a neighbor")

    def discard(self, node: NodeId, other: NodeId) -> bool:
        """Remove ``other`` if present; returns whether it was a member."""
        if not self.contains(node, other):
            return False
        self.remove(node, other)
        return True

    def clear_row(self, node: NodeId) -> None:
        """Empty ``node``'s row."""
        self.deg[node] = 0

    def contains(self, node: NodeId, other: NodeId) -> bool:
        """Whether ``other`` is in ``node``'s row."""
        base = node * self.slots
        ids = self.ids
        for i in range(base, base + self.deg[node]):
            if ids[i] == other:
                return True
        return False

    def degree(self, node: NodeId) -> int:
        """Live length of ``node``'s row."""
        return self.deg[node]

    def row(self, node: NodeId) -> list[NodeId]:
        """Fresh copy of ``node``'s row in insertion order."""
        base = node * self.slots
        return self.ids[base : base + self.deg[node]]  # type: ignore[return-value]

    def row_tuple(self, node: NodeId) -> tuple[NodeId, ...]:
        """Snapshot of ``node``'s row in insertion order."""
        base = node * self.slots
        return tuple(self.ids[base : base + self.deg[node]])  # type: ignore[return-value]

    def __len__(self) -> int:
        return self.n


class SlotNeighborList:
    """One slab row with the :class:`~repro.core.neighbors.NeighborList` API.

    Stateless view: every operation lands in the owning
    :class:`NeighborTable`. Unlike ``NeighborList.view()``, :meth:`view`
    returns a *copy* per call (documented read-only either way).
    """

    __slots__ = ("_table", "_node")

    def __init__(self, table: NeighborTable, node: NodeId) -> None:
        self._table = table
        self._node = node

    @property
    def capacity(self) -> int:
        """Maximum number of members (the table's fixed stride)."""
        return self._table.slots

    def __contains__(self, node: NodeId) -> bool:
        return self._table.contains(self._node, node)

    def __len__(self) -> int:
        return self._table.deg[self._node]

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._table.row(self._node))

    @property
    def is_full(self) -> bool:
        """Whether no more members can be added without eviction."""
        return self._table.deg[self._node] >= self._table.slots

    @property
    def free_slots(self) -> int:
        """Remaining capacity."""
        return self._table.slots - self._table.deg[self._node]

    def add(self, node: NodeId) -> None:
        """Append ``node``; rejects duplicates and overflow."""
        self._table.add(self._node, node)

    def remove(self, node: NodeId) -> None:
        """Remove ``node``; rejects absent members."""
        self._table.remove(self._node, node)

    def discard(self, node: NodeId) -> bool:
        """Remove ``node`` if present; returns whether it was a member."""
        return self._table.discard(self._node, node)

    def clear(self) -> None:
        """Remove every member."""
        self._table.clear_row(self._node)

    def as_tuple(self) -> tuple[NodeId, ...]:
        """Snapshot of the members in insertion order."""
        return self._table.row_tuple(self._node)

    def view(self) -> list[NodeId]:
        """Fresh copy of the members in insertion order (read-only).

        A slab row has no per-node list object whose identity could be
        stable, so unlike :meth:`~repro.core.neighbors.NeighborList.view`
        this allocates per call. The flood fast path never calls it in SoA
        mode (it walks the slab); only the reference search and the
        exploration walker do, where a four-element copy is noise.
        """
        return self._table.row(self._node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlotNeighborList({self._table.row(self._node)}, capacity={self.capacity})"


class SoANeighborState:
    """The outgoing/incoming rows of one node, ``NeighborState``-shaped."""

    __slots__ = ("node", "outgoing", "incoming")

    def __init__(self, arrays: PeerArrays, node: NodeId) -> None:
        self.node = node
        self.outgoing = SlotNeighborList(arrays.out, node)
        self.incoming = SlotNeighborList(arrays.incoming, node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SoANeighborState(node={self.node}, out={self.outgoing.as_tuple()}, "
            f"in={self.incoming.as_tuple()})"
        )


class SoAPeer:
    """One peer's ``PeerState`` interface over the population arrays."""

    __slots__ = ("_arrays", "node", "neighbors")

    def __init__(self, arrays: PeerArrays, node: NodeId) -> None:
        self._arrays = arrays
        self.node = node
        self.neighbors = SoANeighborState(arrays, node)

    @property
    def online(self) -> bool:
        """Whether the peer is currently in a session."""
        return bool(self._arrays.online[self.node])

    @online.setter
    def online(self, value: bool) -> None:
        self._arrays.online[self.node] = 1 if value else 0

    @property
    def stats(self) -> StatsTable:
        """The peer's private benefit ledger."""
        return self._arrays.stats[self.node]

    @property
    def requests_since_update(self) -> int:
        """Own requests since the last reconfiguration (Algo 5 counter)."""
        return self._arrays.requests_since_update[self.node]

    @requests_since_update.setter
    def requests_since_update(self, value: int) -> None:
        self._arrays.requests_since_update[self.node] = value

    @property
    def sessions(self) -> int:
        """Completed session count (diagnostics)."""
        return self._arrays.sessions[self.node]

    @sessions.setter
    def sessions(self, value: int) -> None:
        self._arrays.sessions[self.node] = value

    @property
    def query_epoch(self) -> int:
        """Incremented on every log-off; stale query timers check it."""
        return self._arrays.query_epoch[self.node]

    @query_epoch.setter
    def query_epoch(self, value: int) -> None:
        self._arrays.query_epoch[self.node] = value

    @property
    def degree(self) -> int:
        """Current number of neighbors."""
        return self._arrays.out.deg[self.node]

    @property
    def has_free_slot(self) -> bool:
        """Whether at least one neighbor slot is open."""
        return self._arrays.out.deg[self.node] < self._arrays.out.slots

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SoAPeer(node={self.node}, online={self.online}, "
            f"neighbors={self.neighbors.outgoing.as_tuple()})"
        )


class SoAPeerList(list):
    """A dense peer list that also exposes its backing :class:`PeerArrays`.

    A real ``list`` (indexing and iteration at native speed for every
    duck-typed consumer), with one extra attribute the hot paths use to
    reach the slabs directly: ``peers.arrays``. Code that only ever sees a
    plain ``list[PeerState]`` — the object engine, the asymmetric engine's
    rebuilt population, standalone protocol tests — simply lacks the
    attribute, which is the dispatch signal.
    """

    __slots__ = ("arrays",)

    def __init__(self, arrays: PeerArrays, peers: list[SoAPeer]) -> None:
        super().__init__(peers)
        self.arrays = arrays


class PeerArrays:
    """All mutable per-peer state of one population, as columns.

    Layout (``n`` peers, ``slots`` symmetric neighbor capacity)::

        online                bytearray[n]      the online bitmap
        sessions              list[int][n]
        query_epoch           list[int][n]
        requests_since_update list[int][n]
        out / incoming        NeighborTable(n, slots)
        stats                 list[StatsTable][n]   (sparse per-node ledgers)
    """

    __slots__ = (
        "n",
        "slots",
        "online",
        "sessions",
        "query_epoch",
        "requests_since_update",
        "out",
        "incoming",
        "stats",
    )

    def __init__(self, n: int, slots: int) -> None:
        self.n = n
        self.slots = slots
        self.online = bytearray(n)
        self.sessions = [0] * n
        self.query_epoch = [0] * n
        self.requests_since_update = [0] * n
        self.out = NeighborTable(n, slots)
        self.incoming = NeighborTable(n, slots)
        self.stats = [StatsTable() for _ in range(n)]

    def peers(self) -> SoAPeerList:
        """Build the dense ``PeerState``-compatible view list (once)."""
        return SoAPeerList(self, [SoAPeer(self, NodeId(u)) for u in range(self.n)])
