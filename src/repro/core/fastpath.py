"""Specialized flood fast path: Algo 1 without abstraction tax.

:func:`~repro.core.search.generic_search` is the simulation's cost center:
every figure in the paper's Section 4 evaluation is thousands of flood
queries over a churning overlay, and each one pays per-hop method dispatch
(``NetworkView.neighbors`` / ``holds`` / ``link_delay``), per-query ``set`` /
``deque`` / tuple allocations, and a selection-policy call per node.

:class:`FloodFastPath` is the same hop-layered BFS specialized for the
default case-study configuration — :class:`~repro.core.selection.SelectAll`
flooding, ``forward_from_holders=False``, a plain hop-limit termination —
with these structural replacements:

* an :class:`AdjacencySnapshot`: one flat list of per-node adjacency rows
  bound to the *live* backing lists of each node's outgoing
  :class:`~repro.core.neighbors.NeighborList` (:meth:`~repro.core.neighbors.
  NeighborList.view`). Every link add / sever / logoff the protocol performs
  mutates those rows in place, so the snapshot is incrementally maintained by
  construction and is never re-materialized — not per query, not per hop;
* an **epoch-stamped visited array** (generation-counter trick): the
  per-query ``seen`` set becomes a preallocated int array reused across
  queries; marking a node visited is one integer store, clearing is one
  epoch increment, and a query costs zero hashing. Nodes are marked at
  *enqueue* time, so duplicate deliveries never enter the trace and the
  processing loops carry no dedup branches at all;
* a **span-compressed parent trace**: the BFS trace is a flat node list
  whose FIFO order makes each hop level a contiguous index range (the trace
  *is* the frontier — no deque, no per-entry tuples). Parent pointers are
  not stored per entry: each forwarding node appends one *(parent index,
  cumulative end)* span, the sender of a whole span is computed once, and a
  result's discovery path is recovered by binary search over the span ends
  (results are rare; enqueues are not);
* an **inverted holder index** (item -> set of holders), so a node's "do I
  hold this?" check is one set membership and — decisively — the *final*
  hop level, which is the bulk of a flood and never forwards, collapses to
  a single C-level ``set.intersection`` over the level slice instead of a
  Python-level loop;
* **precomputed delay rows** (:meth:`~repro.net.latency.LatencyModel.
  delay_rows`): each result's path delay is reconstructed by plain
  list-of-lists indexing instead of a method call per path edge.

The reference :func:`~repro.core.search.generic_search` stays the semantics
oracle. The fast path is an optimization, not a semantics change: for every
``(overlay, holdings, delays, initiator, item, max_hops)`` it returns a
:class:`~repro.types.QueryOutcome` *bit-identical* to the reference — same
results in the same order, same message and contact counts, and delays
accumulated in the same floating-point order. ``tests/core/test_fastpath.py``
asserts this property over randomized topologies, and the engine-level
digest-equality tests (and the ``repro-bench`` CI gate) assert it end to end
over whole simulations.
"""

from __future__ import annotations

from bisect import bisect_right
from time import perf_counter
from typing import Iterable, Sequence

import numpy as np

from repro.core.neighbors import NeighborList
from repro.core.soa import NeighborTable
from repro.types import ItemId, NodeId, QueryOutcome, QueryResult

__all__ = ["AdjacencySnapshot", "FloodFastPath", "HolderIndex"]

#: Shared holder set for items nobody holds (no per-query allocation).
_NO_HOLDERS: frozenset[NodeId] = frozenset()


class HolderIndex:
    """Compact inverted holder index: item -> set of holders, CSR-backed.

    The dict-of-sets index :class:`FloodFastPath` builds from raw holdings
    is the right shape per query but the wrong shape per *node*: at 50k
    peers with 50-song libraries it is millions of hash-set entries spread
    over a million tiny sets — gigabytes of pointer soup, built eagerly for
    items that are never queried. This index stores the initial libraries
    as two parallel int64 arrays sorted by item (a CSR without the offsets
    column — the per-item slice is recovered by binary search), which is
    ~16 bytes per (item, holder) entry, and materializes a *set* per item
    only on first query, cached thereafter. Query skew (the Zipf catalog)
    keeps the cache to the popular tail that actually gets asked about.

    Downloads (:meth:`add_holder`) land in the cached set when the item has
    one, else in a per-item overflow list that is folded in when the set is
    first built — so reads always observe every add, in either order.

    ``get(item, default)`` is dict-compatible on purpose: the search kernel
    uses ``holders.get(item, _NO_HOLDERS)`` without caring which index
    implementation is behind it (``default`` is never needed here — every
    item resolves to a real, possibly empty, set).
    """

    __slots__ = ("n_nodes", "_item_ids", "_owners", "_cache", "_extra")

    def __init__(self, libraries: Sequence[Iterable[ItemId]]) -> None:
        self.n_nodes = len(libraries)
        chunks: list[tuple[int, np.ndarray]] = []
        for node, library in enumerate(libraries):
            size = len(library)  # type: ignore[arg-type]
            if size:
                # Per-user item order is irrelevant: entries are re-grouped
                # by item below, and within an item the stable sort leaves
                # owners in ascending node order by construction.
                chunks.append(
                    (node, np.fromiter(library, dtype=np.int64, count=size))
                )
        if chunks:
            items = np.concatenate([c for _, c in chunks])
            owners = np.concatenate(
                [np.full(len(c), node, dtype=np.int64) for node, c in chunks]
            )
            order = np.argsort(items, kind="stable")
            self._item_ids = items[order]
            self._owners = owners[order]
        else:
            self._item_ids = np.empty(0, dtype=np.int64)
            self._owners = np.empty(0, dtype=np.int64)
        #: Materialized per-item holder sets (only for items ever queried).
        self._cache: dict[ItemId, set[NodeId]] = {}
        #: Post-construction adds for items not yet materialized.
        self._extra: dict[ItemId, list[NodeId]] = {}

    def get(self, item: ItemId, default: object = None) -> set[NodeId]:
        """The live holder set of ``item`` (materialized on first use)."""
        members = self._cache.get(item)
        if members is None:
            lo = int(np.searchsorted(self._item_ids, item, side="left"))
            hi = int(np.searchsorted(self._item_ids, item, side="right"))
            members = set(self._owners[lo:hi].tolist())
            extra = self._extra.pop(item, None)
            if extra is not None:
                members.update(extra)
            self._cache[item] = members
        return members

    def add_holder(self, node: NodeId, item: ItemId) -> None:
        """Record that ``node`` now holds ``item`` (idempotent)."""
        members = self._cache.get(item)
        if members is not None:
            members.add(node)
        else:
            self._extra.setdefault(item, []).append(node)

    @property
    def items_cached(self) -> int:
        """Number of per-item sets materialized so far (introspection)."""
        return len(self._cache)

    def __len__(self) -> int:
        return self.n_nodes


class AdjacencySnapshot:
    """Flat per-node adjacency rows over the live overlay.

    ``rows[u]`` is the live backing list of node ``u``'s outgoing
    :class:`~repro.core.neighbors.NeighborList` — the very list object the
    protocol mutates on every link add, sever, and logoff
    (:meth:`~repro.core.neighbors.NeighborList.view` guarantees the object's
    identity is stable for the list's lifetime). Holding the rows once
    therefore keeps the snapshot permanently current at zero maintenance
    cost, and the search inner loop reaches a node's neighbors with a single
    list index instead of an attribute chase plus method call per hop.

    Rows are read-only to this class; mutate only through the owning
    :class:`~repro.core.neighbors.NeighborList`.
    """

    __slots__ = ("rows",)

    def __init__(self, neighbor_lists: Iterable[NeighborList]) -> None:
        self.rows: list[list[NodeId]] = [nl.view() for nl in neighbor_lists]

    def __len__(self) -> int:
        return len(self.rows)


class FloodFastPath:
    """The flood-query hot path over one live overlay.

    Parameters
    ----------
    adjacency:
        Live adjacency rows (one per node, dense by node id). Rows must obey
        the :class:`~repro.core.neighbors.NeighborList` invariants the
        protocol maintains: no duplicate members and no self-membership.
    holdings:
        ``holdings[u]`` is node ``u``'s item set at construction time. The
        constructor builds an inverted item -> holders index from it; any
        later mutation **must** be mirrored through :meth:`add_holder`
        (the engines' download path does).
    delay_rows:
        ``delay_rows[a][b]`` is the one-way delay of the ``a``-``b`` link —
        :meth:`repro.net.latency.LatencyModel.delay_rows`.
    max_hops:
        The default hop-limit terminating condition (Gnutella TTL).

    One instance owns reusable per-query buffers, so it is not safe for
    concurrent queries — exactly the contract of the single-threaded
    simulation engines.
    """

    __slots__ = (
        "_rows",
        "_slab_ids",
        "_slab_deg",
        "_slab_stride",
        "_holders_of",
        "_delay_rows",
        "max_hops",
        "_visited",
        "_epoch",
        "_trace_node",
        "_span_parent",
        "_span_end",
        "queries_run",
        "collect_levels",
        "last_level_ends",
        "profile",
        "perf",
    )

    def __init__(
        self,
        adjacency: AdjacencySnapshot | NeighborTable,
        holdings: Sequence[set[ItemId]] | HolderIndex,
        delay_rows: Sequence[Sequence[float]],
        max_hops: int,
    ) -> None:
        n = len(adjacency)
        if len(holdings) != n or len(delay_rows) != n:
            raise ValueError(
                f"adjacency ({n}), holdings ({len(holdings)}) and delay rows "
                f"({len(delay_rows)}) must cover the same node population"
            )
        if max_hops < 1:
            raise ValueError(f"max_hops must be >= 1, got {max_hops}")
        if isinstance(adjacency, NeighborTable):
            # Struct-of-arrays mode: walk the live id slab directly (row u =
            # ids[u*slots : u*slots+deg[u]]), no per-node row objects at all.
            self._rows = None
            self._slab_ids = adjacency.ids
            self._slab_deg = adjacency.deg
            self._slab_stride = adjacency.slots
        else:
            self._rows = adjacency.rows
            self._slab_ids = None
            self._slab_deg = None
            self._slab_stride = 0
        self._delay_rows = delay_rows
        self.max_hops = max_hops
        if isinstance(holdings, HolderIndex):
            # Compact CSR-backed index, shared with (and maintained by) the
            # owning engine across fast-path rebinds.
            self._holders_of: dict[ItemId, set[NodeId]] | HolderIndex = holdings
        else:
            # Inverted holder index: _holders_of[item] is the set of nodes
            # holding item. `node in _holders_of[item]` == `item in
            # holdings[node]`, but the set-of-holders orientation also lets a
            # whole hop level be checked with one set.intersection call.
            holders_of: dict[ItemId, set[NodeId]] = {}
            for node, library in enumerate(holdings):
                for item in library:
                    members = holders_of.get(item)
                    if members is None:
                        holders_of[item] = {NodeId(node)}
                    else:
                        members.add(NodeId(node))
            self._holders_of = holders_of
        # Epoch-stamped visited marks: visited[u] == current epoch <=> u has
        # been delivered the current query. Bumping the epoch "clears" the
        # array in O(1); the buffers below are reused across queries.
        self._visited = [0] * n
        self._epoch = 0
        # trace_node[i]: the i-th *first* delivery, in send order (duplicate
        # deliveries are filtered at enqueue and never materialize). FIFO
        # append order makes the trace double as the frontier: hop levels
        # are contiguous index ranges. Parent pointers are span-compressed:
        # span k covers trace entries [_span_end[k-1], _span_end[k]) and all
        # of them were sent by trace entry _span_parent[k] (-1 = initiator).
        self._trace_node: list[NodeId] = []
        self._span_parent: list[int] = []
        self._span_end: list[int] = []
        #: Number of queries executed (introspection / bench bookkeeping).
        self.queries_run = 0
        #: Observability hooks (repro.obs), both off by default. With
        #: ``collect_levels`` on, :meth:`search` records the cumulative
        #: contacted-count at each hop level into ``last_level_ends`` (one
        #: list append per *level*, not per node — the tracer's per-hop
        #: events read it). ``profile`` is an optional
        #: :class:`repro.obs.profile.PhaseTimers` accumulating this kernel's
        #: wall time under ``"fastpath.search"`` (one branch per query when
        #: unset). ``perf`` is an optional :class:`repro.obs.perf.
        #: perf_counters.EventTypeCounters` charging the same wall time to
        #: a ``"fastpath.search"`` sub-account, so per-event-type tables can
        #: split an event's total from its kernel-only share. None of the
        #: hooks touches outcomes, RNG, or event order.
        self.collect_levels = False
        self.last_level_ends: list[int] | None = None
        self.profile = None
        self.perf = None

    def add_holder(self, node: NodeId, item: ItemId) -> None:
        """Mirror ``holdings[node].add(item)`` into the inverted index.

        The engines call this when a download grows a live library; the
        index and the library sets must never diverge (idempotent, like
        ``set.add``).
        """
        holders = self._holders_of
        if isinstance(holders, HolderIndex):
            holders.add_holder(node, item)
            return
        members = holders.get(item)
        if members is None:
            holders[item] = {node}
        else:
            members.add(node)

    def _path_delay(self, initiator: NodeId, node: NodeId, parent: int) -> float:
        """One-way delay of ``node``'s discovery path, walked backwards in
        the reference's exact accumulation order.

        ``parent`` is the trace index of the entry that delivered to
        ``node`` (-1 if the initiator sent directly). Each step's parent is
        recovered by binary search over the span ends — only results pay
        this, and results are rare relative to enqueues.
        """
        total = 0.0
        delay_rows = self._delay_rows
        trace_node = self._trace_node
        span_end = self._span_end
        span_parent = self._span_parent
        while parent >= 0:
            prev = trace_node[parent]
            total += delay_rows[prev][node]
            node = prev
            parent = span_parent[bisect_right(span_end, parent)]
        return total + delay_rows[initiator][node]

    def search(
        self,
        initiator: NodeId,
        item: ItemId,
        issued_at: float = 0.0,
        max_hops: int | None = None,
    ) -> QueryOutcome:
        """Run one flood query; bit-identical to the reference search.

        Equivalent to ``generic_search(view, initiator, item,
        TTLTermination(max_hops))`` over a view of the same overlay,
        holdings, and delays — same results in the same order, same message
        and contact counts, delays accumulated in the same order.
        """
        if self._rows is None:
            return self._search_slab(initiator, item, issued_at, max_hops)
        # Wall-clock on purpose: the profiler measures real elapsed time and
        # never feeds back into query outcomes.
        timed = self.profile is not None or self.perf is not None
        t0 = perf_counter() if timed else 0.0  # repro-lint: disable=R002
        limit = self.max_hops if max_hops is None else max_hops
        self.queries_run += 1
        self._epoch += 1
        epoch = self._epoch
        visited = self._visited
        rows = self._rows
        delay_rows = self._delay_rows
        holders = self._holders_of.get(item, _NO_HOLDERS)
        trace_node = self._trace_node
        span_parent = self._span_parent
        span_end = self._span_end
        del trace_node[:]
        del span_parent[:]
        del span_end[:]
        extend_node = trace_node.extend
        parent_append = span_parent.append
        end_append = span_end.append

        results: list[QueryResult] = []
        results_append = results.append

        # Nodes are marked visited at ENQUEUE time. During level h only
        # level-h+1 targets get marked, and nothing at level h reads those
        # marks except the enqueue filter itself — so the trace holds
        # exactly the first delivery of each contacted node, in first-send
        # order, which is precisely the set and order the reference
        # processes (its duplicate entries are dropped unprocessed at pop).
        # Duplicates therefore never enter the trace, the processing loops
        # carry no dedup branches, and ``nodes_contacted`` is simply the
        # final trace length. Message counts are unaffected: they are
        # charged on send (``len(row) - (sender in row)``), never from the
        # trace. The sender itself is always already marked (it was
        # enqueued, or is the initiator), so the visited filter subsumes the
        # reference's explicit ``target != sender`` test.
        visited[initiator] = epoch
        first_row = rows[initiator]
        messages = len(first_row)
        for t in first_row:
            visited[t] = epoch
        extend_node(first_row)
        parent_append(-1)
        end_append(len(first_row))
        node_append = trace_node.append
        # Cumulative contacted-count at each hop level (observability; one
        # append per level when enabled, a no-op None check otherwise).
        level_ends = [len(first_row)] if self.collect_levels else None

        if limit > 1:
            # Level 1, hoisted: the sender is the initiator for every entry,
            # a hit's path is the single initiator link, and the level needs
            # no span segmentation — for the default TTL-2 configuration
            # this loop plus the final intersection is the whole query.
            for idx, node in enumerate(first_row):
                if node in holders:
                    # Holders reply and do not propagate.
                    results_append(
                        QueryResult(node, item, 1, 2.0 * delay_rows[initiator][node])
                    )
                    continue
                row = rows[node]
                # Duplicate deliveries consume bandwidth: count every copy
                # sent — all neighbors except the sender.
                messages += len(row) - (initiator in row)
                before = len(trace_node)
                for t in row:
                    if visited[t] != epoch:
                        visited[t] = epoch
                        node_append(t)
                grown = len(trace_node)
                if grown != before:
                    parent_append(idx)
                    end_append(grown)
            start, end = len(first_row), len(trace_node)
            if level_ends is not None and end > start:
                level_ends.append(end)
            hops = 2
            level_span = 1  # skip the initial level-1 span
        else:
            start, end = 0, len(first_row)
            hops = 1

        while start < end and hops < limit:
            # Middle levels, span by span: every entry of a span was sent by
            # the same node, so the sender lookup happens once per span, not
            # once per entry. Spans appended while the level runs belong to
            # the next level (n_spans is snapshotted).
            n_spans = len(span_parent)
            seg_lo = start
            for k in range(level_span, n_spans):
                seg_hi = span_end[k]
                parent = span_parent[k]
                sender = trace_node[parent]
                for idx, node in enumerate(trace_node[seg_lo:seg_hi], seg_lo):
                    if node in holders:
                        results_append(
                            QueryResult(
                                node,
                                item,
                                hops,
                                2.0 * self._path_delay(initiator, node, parent),
                            )
                        )
                        continue
                    row = rows[node]
                    messages += len(row) - (sender in row)
                    before = len(trace_node)
                    for t in row:
                        if visited[t] != epoch:
                            visited[t] = epoch
                            node_append(t)
                    grown = len(trace_node)
                    if grown != before:
                        parent_append(idx)
                        end_append(grown)
                seg_lo = seg_hi
            level_span = n_spans
            start, end = end, len(trace_node)
            if level_ends is not None and end > start:
                level_ends.append(end)
            hops += 1

        # Final level: the hop limit is reached, nobody forwards — only
        # holder replies remain, so one C-level intersection over the level
        # slice replaces the per-node loop (and usually proves it empty).
        if start < end:
            level = trace_node[start:end]
            hits = holders.intersection(level)
            if hits:
                # Entries are unique, so .index recovers each hit's slot;
                # sorting restores first-delivery (reply) order.
                for offset in sorted(level.index(h) for h in hits):
                    node = level[offset]
                    parent = span_parent[bisect_right(span_end, start + offset)]
                    results_append(
                        QueryResult(
                            node,
                            item,
                            hops,
                            2.0 * self._path_delay(initiator, node, parent),
                        )
                    )

        if level_ends is not None:
            self.last_level_ends = level_ends
        if timed:
            elapsed = perf_counter() - t0  # repro-lint: disable=R002
            if self.profile is not None:
                self.profile.add("fastpath.search", elapsed)
            if self.perf is not None:
                self.perf.record_named("fastpath.search", elapsed)
        return QueryOutcome(
            initiator, item, issued_at, tuple(results), messages, len(trace_node)
        )

    def _search_slab(
        self,
        initiator: NodeId,
        item: ItemId,
        issued_at: float,
        max_hops: int | None,
    ) -> QueryOutcome:
        """:meth:`search` over a :class:`~repro.core.soa.NeighborTable` slab.

        Byte-for-byte the same BFS as the row-mode body — same enqueue-time
        visited marks, span compression, level hoisting, message accounting
        and result order — with each node's row read as a slice of the flat
        id slab (``ids[u*stride : u*stride+deg[u]]``) instead of a per-node
        list object. The two bodies are pinned together by the randomized
        equivalence tests in ``tests/core/test_fastpath.py`` and the
        engine-level digest matrix (``soa`` vs object engine).
        """
        timed = self.profile is not None or self.perf is not None
        t0 = perf_counter() if timed else 0.0  # repro-lint: disable=R002
        limit = self.max_hops if max_hops is None else max_hops
        self.queries_run += 1
        self._epoch += 1
        epoch = self._epoch
        visited = self._visited
        ids = self._slab_ids
        deg = self._slab_deg
        stride = self._slab_stride
        delay_rows = self._delay_rows
        holders = self._holders_of.get(item, _NO_HOLDERS)
        trace_node = self._trace_node
        span_parent = self._span_parent
        span_end = self._span_end
        del trace_node[:]
        del span_parent[:]
        del span_end[:]
        extend_node = trace_node.extend
        parent_append = span_parent.append
        end_append = span_end.append

        results: list[QueryResult] = []
        results_append = results.append

        visited[initiator] = epoch
        base = initiator * stride
        first_row = ids[base : base + deg[initiator]]
        messages = len(first_row)
        for t in first_row:
            visited[t] = epoch
        extend_node(first_row)
        parent_append(-1)
        end_append(len(first_row))
        node_append = trace_node.append
        level_ends = [len(first_row)] if self.collect_levels else None

        if limit > 1:
            for idx, node in enumerate(first_row):
                if node in holders:
                    results_append(
                        QueryResult(node, item, 1, 2.0 * delay_rows[initiator][node])
                    )
                    continue
                base = node * stride
                row = ids[base : base + deg[node]]
                messages += len(row) - (initiator in row)
                before = len(trace_node)
                for t in row:
                    if visited[t] != epoch:
                        visited[t] = epoch
                        node_append(t)
                grown = len(trace_node)
                if grown != before:
                    parent_append(idx)
                    end_append(grown)
            start, end = len(first_row), len(trace_node)
            if level_ends is not None and end > start:
                level_ends.append(end)
            hops = 2
            level_span = 1
        else:
            start, end = 0, len(first_row)
            hops = 1

        while start < end and hops < limit:
            n_spans = len(span_parent)
            seg_lo = start
            for k in range(level_span, n_spans):
                seg_hi = span_end[k]
                parent = span_parent[k]
                sender = trace_node[parent]
                for idx, node in enumerate(trace_node[seg_lo:seg_hi], seg_lo):
                    if node in holders:
                        results_append(
                            QueryResult(
                                node,
                                item,
                                hops,
                                2.0 * self._path_delay(initiator, node, parent),
                            )
                        )
                        continue
                    base = node * stride
                    row = ids[base : base + deg[node]]
                    messages += len(row) - (sender in row)
                    before = len(trace_node)
                    for t in row:
                        if visited[t] != epoch:
                            visited[t] = epoch
                            node_append(t)
                    grown = len(trace_node)
                    if grown != before:
                        parent_append(idx)
                        end_append(grown)
                seg_lo = seg_hi
            level_span = n_spans
            start, end = end, len(trace_node)
            if level_ends is not None and end > start:
                level_ends.append(end)
            hops += 1

        if start < end:
            level = trace_node[start:end]
            hits = holders.intersection(level)
            if hits:
                for offset in sorted(level.index(h) for h in hits):
                    node = level[offset]
                    parent = span_parent[bisect_right(span_end, start + offset)]
                    results_append(
                        QueryResult(
                            node,
                            item,
                            hops,
                            2.0 * self._path_delay(initiator, node, parent),
                        )
                    )

        if level_ends is not None:
            self.last_level_ends = level_ends
        if timed:
            elapsed = perf_counter() - t0  # repro-lint: disable=R002
            if self.profile is not None:
                self.profile.add("fastpath.search", elapsed)
            if self.perf is not None:
                self.perf.record_named("fastpath.search", elapsed)
        return QueryOutcome(
            initiator, item, issued_at, tuple(results), messages, len(trace_node)
        )
