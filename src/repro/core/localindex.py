"""Local indices over nearby peers' content.

Yang & Garcia-Molina's third technique (Section 2): "each node maintains an
index over the data of all peers within r hops of itself, allowing each
search to terminate after (depth - r) hops". The paper notes the technique is
orthogonal to dynamic reconfiguration and can be employed in the framework;
we provide it as an optional accelerator (and an ablation bench measures what
it buys).

The index maps item -> set of holders within radius. It must be refreshed as
the neighborhood rewires; ``rebuild`` walks the current topology.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Sequence

from repro.errors import FrameworkError
from repro.types import ItemId, NodeId

__all__ = ["LocalIndex"]


class LocalIndex:
    """An r-hop content index for one node.

    Parameters
    ----------
    owner:
        The indexing node.
    radius:
        Index horizon in hops (r >= 1). Radius-r indexing lets a TTL-``h``
        search stop after ``h - r`` hops.
    """

    def __init__(self, owner: NodeId, radius: int = 1) -> None:
        if radius < 1:
            raise FrameworkError(f"radius must be >= 1, got {radius}")
        self.owner = owner
        self.radius = radius
        self._holders: dict[ItemId, set[NodeId]] = {}
        self._indexed_nodes: set[NodeId] = set()

    @property
    def indexed_nodes(self) -> frozenset[NodeId]:
        """Peers currently covered by the index."""
        return frozenset(self._indexed_nodes)

    def rebuild(
        self,
        neighbors_of: Callable[[NodeId], Sequence[NodeId]],
        items_of: Callable[[NodeId], Iterable[ItemId]],
    ) -> None:
        """Re-index every peer within ``radius`` hops of the owner.

        ``neighbors_of`` supplies the *current* outgoing lists, so calling
        this after a reconfiguration keeps the index honest.
        """
        self._holders.clear()
        self._indexed_nodes.clear()
        frontier: deque[tuple[NodeId, int]] = deque()
        visited = {self.owner}
        for n in neighbors_of(self.owner):
            if n not in visited:
                visited.add(n)
                frontier.append((n, 1))
        while frontier:
            node, dist = frontier.popleft()
            self._indexed_nodes.add(node)
            for item in items_of(node):
                self._holders.setdefault(item, set()).add(node)
            if dist < self.radius:
                for nxt in neighbors_of(node):
                    if nxt not in visited:
                        visited.add(nxt)
                        frontier.append((nxt, dist + 1))

    def holders_of(self, item: ItemId) -> frozenset[NodeId]:
        """Indexed peers holding ``item`` (empty if none known)."""
        return frozenset(self._holders.get(item, ()))

    def knows_holder(self, item: ItemId) -> bool:
        """Whether the index can already answer ``item`` without searching."""
        return bool(self._holders.get(item))

    def forget(self, node: NodeId) -> None:
        """Drop one peer from the index (e.g. it logged off)."""
        if node not in self._indexed_nodes:
            return
        self._indexed_nodes.discard(node)
        empty: list[ItemId] = []
        for item, holders in self._holders.items():
            holders.discard(node)
            if not holders:
                empty.append(item)
        for item in empty:
            del self._holders[item]

    def __len__(self) -> int:
        return len(self._holders)
