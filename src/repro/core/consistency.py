"""Consistency checking over collections of neighbor states.

Bridges :mod:`repro.core.neighbors` to the snapshot predicate in
:mod:`repro.net.topology`. Used pervasively by tests (and available to user
code as an invariant check after custom rewiring).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.neighbors import NeighborState
from repro.net.topology import find_inconsistencies
from repro.types import NodeId

__all__ = ["check_consistent", "state_inconsistencies", "symmetric_violations"]


def state_inconsistencies(
    states: Mapping[NodeId, NeighborState],
) -> list[tuple[NodeId, NodeId]]:
    """All ``(i, j)`` with ``j in Out(i)`` but ``i not in In(j)``."""
    outgoing = {n: s.outgoing.as_tuple() for n, s in states.items()}
    incoming = {n: s.incoming.as_tuple() for n, s in states.items()}
    return find_inconsistencies(outgoing, incoming)


def check_consistent(states: Mapping[NodeId, NeighborState]) -> bool:
    """Whether the Section 3.1 consistency predicate holds."""
    return not state_inconsistencies(states)


def symmetric_violations(
    states: Mapping[NodeId, NeighborState],
) -> list[NodeId]:
    """Nodes whose outgoing and incoming lists differ (symmetric relations
    require ``Out == In`` as *sets* at every node)."""
    return [
        n
        for n, s in states.items()
        if set(s.outgoing.as_tuple()) != set(s.incoming.as_tuple())
    ]
