"""The paper's contribution: the general search framework.

Three mechanisms (Section 3), each generic over pluggable policies:

* **Search** (:mod:`~repro.core.search`, Algo 1) — propagate a request
  through the neighbor network until results are found or a
  :mod:`~repro.core.termination` condition fires; forwarding targets are
  chosen by a :mod:`~repro.core.selection` policy.
* **Exploration** (:mod:`~repro.core.exploration`, Algo 2) — metadata-only
  probes that feed the :mod:`~repro.core.statistics` tables.
* **Neighbor update** (:mod:`~repro.core.update`, Algos 3-4) — re-rank known
  nodes by a :mod:`~repro.core.benefit` function; the symmetric case goes
  through an invitation/eviction handshake that keeps the network
  *consistent* (:mod:`~repro.core.relations`).

:mod:`~repro.core.framework` assembles the pieces into
:class:`~repro.core.framework.RepositoryNetwork`, the public synchronous API
that the web-caching and OLAP instantiations (and user code) build on.
"""

from repro.core.benefit import (
    BandwidthShareBenefit,
    BenefitFunction,
    HitCountBenefit,
    LatencyBenefit,
    ProcessingTimeBenefit,
    ResultObservation,
)
from repro.core.config import NodeConfig
from repro.core.digest import (
    BloomDigest,
    DigestDirectory,
    SelectByDigest,
    digest_similarity,
)
from repro.core.exploration import ExplorationReport, generic_explore
from repro.core.framework import Repository, RepositoryNetwork
from repro.core.localindex import LocalIndex
from repro.core.neighbors import NeighborList, NeighborState
from repro.core.relations import (
    AllToAllRelation,
    AsymmetricRelation,
    PureAsymmetricRelation,
    RelationPolicy,
    SymmetricRelation,
)
from repro.core.search import NetworkView, generic_search
from repro.core.selection import (
    SelectAll,
    SelectionPolicy,
    SelectRandomK,
    SelectTopKBenefit,
)
from repro.core.statistics import StatsTable
from repro.core.termination import (
    IterativeDeepening,
    MaxResultsTermination,
    Termination,
    TTLTermination,
)
from repro.core.update import (
    EvictAction,
    InviteAction,
    asymmetric_update,
    plan_reconfiguration,
    process_invitation,
    reconfiguration_actions,
)

__all__ = [
    "AllToAllRelation",
    "AsymmetricRelation",
    "BandwidthShareBenefit",
    "BenefitFunction",
    "BloomDigest",
    "DigestDirectory",
    "EvictAction",
    "ExplorationReport",
    "HitCountBenefit",
    "InviteAction",
    "IterativeDeepening",
    "LatencyBenefit",
    "LocalIndex",
    "MaxResultsTermination",
    "NeighborList",
    "NeighborState",
    "NetworkView",
    "NodeConfig",
    "ProcessingTimeBenefit",
    "PureAsymmetricRelation",
    "RelationPolicy",
    "Repository",
    "RepositoryNetwork",
    "ResultObservation",
    "SelectAll",
    "SelectByDigest",
    "SelectRandomK",
    "SelectTopKBenefit",
    "SelectionPolicy",
    "StatsTable",
    "SymmetricRelation",
    "TTLTermination",
    "Termination",
    "asymmetric_update",
    "digest_similarity",
    "generic_explore",
    "generic_search",
    "plan_reconfiguration",
    "process_invitation",
    "reconfiguration_actions",
]
