"""Command-line entry point: regenerate any figure of the paper.

Usage::

    python -m repro.experiments fig1 [--preset scaled] [--seed 0]
    python -m repro.experiments all --preset smoke --jobs 4
    repro-experiments fig3b --preset paper
    repro-experiments replicate --replicates 10 --jobs 4

Execution is routed through :mod:`repro.orchestrate`: identical simulations
shared between figures run once, ``--jobs N`` fans cache misses out over N
worker processes, and completed simulations are memoized in a
content-addressed cache (``--cache-dir`` / ``--no-cache``) so re-runs and
interrupted ``all`` invocations resume where they left off.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.export import write_json
from repro.experiments.common import PRESETS
from repro.orchestrate.cache import ResultCache
from repro.orchestrate.cli import CACHE_DIR_ENV, default_cache_dir
from repro.orchestrate.grid import FIGURES, expand_grid, run_grid
from repro.orchestrate.manifest import build_manifest, write_manifest
from repro.orchestrate.progress import ProgressPrinter

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation figures of Bakiras et al., 'A General "
            "Framework for Searching in Distributed Data Repositories' "
            "(IPDPS 2003)."
        ),
    )
    parser.add_argument(
        "figure",
        choices=[*FIGURES, "all"],
        help="which figure to regenerate ('all' runs every one)",
    )
    parser.add_argument(
        "--preset",
        default="scaled",
        choices=sorted(PRESETS),
        help="world size: paper (full scale), scaled (default), smoke (tiny)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--replicates",
        type=int,
        default=5,
        metavar="N",
        help="seeds used by 'replicate' (seed..seed+N-1; default 5)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the simulations (default 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="where completed simulations are memoized "
        f"(default ${CACHE_DIR_ENV} or .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always recompute; do not read or write the result cache",
    )
    parser.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="also write the orchestration run manifest (tasks, digests, "
        "cache hits) as JSON to PATH",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the result data as JSON to PATH "
        "(a '-<figure>' suffix is added when running 'all')",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run the requested figure(s); returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.figure == "all":
        # 'all' regenerates the paper figures; replication is opt-in.
        figures = [name for name in FIGURES if name != "replicate"]
    else:
        figures = [args.figure]
    grid = expand_grid(
        figures, args.preset, seeds=(args.seed,), replicates=args.replicates
    )
    cache: ResultCache | None = None
    cache_dir: str | None = None
    if not args.no_cache:
        cache_dir = str(args.cache_dir if args.cache_dir else default_cache_dir())
        cache = ResultCache(cache_dir)
    progress = ProgressPrinter(enabled=args.jobs > 1)
    outcome = run_grid(
        grid, jobs=args.jobs, cache=cache, progress=progress, on_error="record"
    )
    failed = False
    for figure in outcome.figures:
        name = figure.job.figure
        if figure.error is not None:
            # One broken figure must not abort the rest of an 'all' run;
            # the exit code still reports the failure.
            print(f"[{name} FAILED: {figure.error}]", file=sys.stderr)
            failed = True
            continue
        figure.job.print_report(figure.result)
        if args.json:
            target = args.json
            if len(figures) > 1:
                stem, dot, ext = target.rpartition(".")
                target = f"{stem}-{name}.{ext}" if dot else f"{target}-{name}"
            written = write_json(figure.result, target)
            print(f"[json written to {written}]")
        elapsed = sum(
            record.elapsed_s
            for record in outcome.run.records
            if record.key in figure.keys
        )
        print(f"\n[{name} completed in {elapsed:.1f}s]\n")
    if args.manifest:
        manifest = build_manifest(
            grid={
                "figures": figures,
                "preset": args.preset,
                "seeds": [args.seed],
                "replicates": args.replicates,
                "overrides": {},
            },
            jobs=args.jobs,
            records=list(outcome.run.records),
            cache_dir=cache_dir,
            wall_s=outcome.run.wall_s,
            cache_stats=cache.stats() if cache is not None else None,
        )
        print(f"[manifest written to {write_manifest(manifest, args.manifest)}]")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
