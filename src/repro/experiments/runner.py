"""Command-line entry point: regenerate any figure of the paper.

Usage::

    python -m repro.experiments fig1 [--preset scaled] [--seed 0]
    python -m repro.experiments all --preset smoke
    repro-experiments fig3b --preset paper
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Sequence

from repro.experiments import figure1, figure2, figure3a, figure3b, multiseed
from repro.experiments.common import PRESETS

__all__ = ["main"]

_RUNNERS: dict[str, tuple[Callable, Callable]] = {
    "fig1": (figure1.run, figure1.print_report),
    "fig2": (figure2.run, figure2.print_report),
    "fig3a": (figure3a.run, figure3a.print_report),
    "fig3b": (figure3b.run, figure3b.print_report),
    "replicate": (
        lambda preset, seed: multiseed.run(
            preset=preset, seeds=tuple(range(seed, seed + 5))
        ),
        multiseed.print_report,
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation figures of Bakiras et al., 'A General "
            "Framework for Searching in Distributed Data Repositories' "
            "(IPDPS 2003)."
        ),
    )
    parser.add_argument(
        "figure",
        choices=[*_RUNNERS, "all"],
        help="which figure to regenerate ('all' runs every one)",
    )
    parser.add_argument(
        "--preset",
        default="scaled",
        choices=sorted(PRESETS),
        help="world size: paper (full scale), scaled (default), smoke (tiny)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the result data as JSON to PATH "
        "(a '-<figure>' suffix is added when running 'all')",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run the requested figure(s); returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.figure == "all":
        # 'all' regenerates the paper figures; replication is opt-in.
        figures = [name for name in _RUNNERS if name != "replicate"]
    else:
        figures = [args.figure]
    for name in figures:
        run, print_report = _RUNNERS[name]
        started = time.perf_counter()
        result = run(preset=args.preset, seed=args.seed)
        elapsed = time.perf_counter() - started
        print_report(result)
        if args.json:
            from repro.analysis.export import write_json

            target = args.json
            if len(figures) > 1:
                stem, dot, ext = target.rpartition(".")
                target = f"{stem}-{name}.{ext}" if dot else f"{target}-{name}"
            written = write_json(result, target)
            print(f"[json written to {written}]")
        print(f"\n[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
