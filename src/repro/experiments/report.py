"""ASCII rendering of figure data.

The harness prints the same rows/series the paper plots, plus an ASCII
sparkline per curve so the shape is visible in a terminal log.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["format_series_table", "format_sparkline", "header", "kv_table"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def header(title: str, width: int = 78) -> str:
    """A boxed section header."""
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"


def format_sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of ``values`` (empty string for no data)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    lo, hi = float(arr.min()), float(arr.max())
    if hi == lo:
        return _SPARK_CHARS[0] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)
    return "".join(_SPARK_CHARS[int(round(v))] for v in scaled)


def format_series_table(
    index: Sequence[float],
    columns: dict[str, Sequence[float]],
    index_label: str = "hour",
    max_rows: int = 24,
) -> str:
    """Aligned columns of per-index values, subsampled to ``max_rows``.

    Every curve also gets a full-resolution sparkline footer.
    """
    index = list(index)
    n = len(index)
    step = max(1, (n + max_rows - 1) // max_rows)
    lines = []
    names = list(columns)
    head = f"{index_label:>8} " + " ".join(f"{name:>16}" for name in names)
    lines.append(head)
    lines.append("-" * len(head))
    for i in range(0, n, step):
        row = f"{index[i]:>8g} " + " ".join(
            f"{list(columns[name])[i]:>16,.6g}" for name in names
        )
        lines.append(row)
    lines.append("")
    for name in names:
        lines.append(f"{name:>24} shape: {format_sparkline(columns[name])}")
    return "\n".join(lines)


def kv_table(pairs: dict[str, object], indent: int = 2) -> str:
    """Aligned key/value block."""
    if not pairs:
        return ""
    width = max(len(k) for k in pairs)
    pad = " " * indent
    return "\n".join(f"{pad}{k:<{width}} : {v}" for k, v in pairs.items())
