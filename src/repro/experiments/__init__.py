"""Experiment runners: one module per figure of the paper's evaluation.

Every figure panel of Section 4.3 has a runner that regenerates it:

====================  =======================================  ================
Figure                What it shows                            Runner
====================  =======================================  ================
1(a) / 1(b)           hits & messages per hour, TTL 2          :mod:`.figure1`
2(a) / 2(b)           hits & messages per hour, TTL 4          :mod:`.figure2`
3(a)                  first-result delay vs TTL 1-4            :mod:`.figure3a`
3(b)                  total hits vs reconfiguration threshold  :mod:`.figure3b`
====================  =======================================  ================

Run from the command line::

    python -m repro.experiments fig1 --preset scaled --seed 0

Presets (see :mod:`.common`): ``paper`` is the full Section 4.2 scale,
``scaled`` preserves the figures' shapes at laptop runtimes, ``smoke`` is for
tests and benchmarks.
"""

from repro.experiments import figure1, figure2, figure3a, figure3b
from repro.experiments.common import PRESETS, preset_config

__all__ = [
    "PRESETS",
    "figure1",
    "figure2",
    "figure3a",
    "figure3b",
    "preset_config",
]
