"""Figure 2: hits and query overhead per hour at TTL 4.

Paper (Section 4.3): "The performance difference is significant if we allow
the queries to propagate for a larger number of hops ... the dynamic
approach is able to produce more hits compared to the static configuration,
while at the same time it reduces the message overhead".

Same machinery as Figure 1 with the terminating condition raised to 4 hops.
Expected shape: dynamic at-or-above static on hits, clearly below static on
messages and delay; the hits margin is narrower than at TTL 2 (at four hops
the static flood covers a large fraction of the online population, so random
reach closes in on availability — see EXPERIMENTS.md for the quantitative
comparison against the paper's claimed 50 % message reduction).
"""

from __future__ import annotations

from typing import Mapping

from repro.experiments import figure1
from repro.experiments.common import SimRequest, SimulateFn
from repro.gnutella.simulation import SimulationResult

__all__ = ["Figure2Result", "assemble", "plan", "print_report", "run"]

#: TTL used by this figure.
MAX_HOPS = 4

Figure2Result = figure1.Figure1Result


def plan(
    preset: str = "scaled",
    seed: int = 0,
    max_hops: int = MAX_HOPS,
    overrides: Mapping[str, object] | None = None,
) -> tuple[SimRequest, ...]:
    """Figure 1's paired plan with the terminating condition raised to 4."""
    return figure1.plan(preset, seed=seed, max_hops=max_hops, overrides=overrides)


def assemble(
    results: Mapping[str, SimulationResult], *, preset: str, max_hops: int = MAX_HOPS
) -> Figure2Result:
    """Assemble the TTL-4 panels from the planned runs' results."""
    return figure1.assemble(results, preset=preset, max_hops=max_hops)


def run(
    preset: str = "scaled",
    seed: int = 0,
    max_hops: int = MAX_HOPS,
    simulate: SimulateFn | None = None,
) -> Figure2Result:
    """Execute the paired simulation at TTL 4."""
    return figure1.run(preset=preset, seed=seed, max_hops=max_hops, simulate=simulate)


def print_report(result: Figure2Result) -> None:
    """Print both panels and the headline comparison."""
    figure1.print_report(
        result,
        title=(
            f"Figure 2: dynamic vs static Gnutella, hops = {result.max_hops} "
            f"(preset {result.preset!r})"
        ),
    )
