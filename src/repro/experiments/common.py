"""Shared experiment scaffolding: presets and paired runs.

Scaling rationale (documented in DESIGN.md): the catalog scales with the
population so per-song replication stays at the paper's ~2 copies, and the
population must keep the TTL-4 flood (≤ 160 nodes) well below the online
count or the static baseline saturates availability and every comparison
compresses. ``scaled`` (600 users / 300 online) preserves all figure shapes
in ~minutes; ``paper`` is the full Section 4.2 parameterization; ``smoke``
exists for tests and pytest-benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.errors import ConfigurationError
from repro.gnutella.config import GnutellaConfig
from repro.gnutella.simulation import SimulationResult, run_simulation
from repro.types import DAY, HOUR

__all__ = [
    "PRESETS",
    "SimRequest",
    "SimulateFn",
    "execute_requests",
    "paired_run",
    "preset_config",
]

#: Anything that turns ``(config, engine)`` into a result — the seam the
#: orchestrator (:mod:`repro.orchestrate`) plugs cached/pooled execution into.
SimulateFn = Callable[[GnutellaConfig, str], SimulationResult]


@dataclass(frozen=True, slots=True)
class SimRequest:
    """One simulation a figure needs, under a figure-local key.

    Every figure runner is split into a *plan* phase that returns these and
    an *assemble* phase that turns ``{key: result}`` back into the figure's
    result object. The split is what lets :mod:`repro.orchestrate` execute a
    whole grid's requests out of order, in parallel, deduplicated across
    figures, and memoized — while the serial ``run()`` path just executes
    them in plan order.
    """

    key: str
    config: GnutellaConfig
    engine: str = "fast"


def execute_requests(
    requests: Sequence[SimRequest], simulate: SimulateFn | None = None
) -> dict[str, SimulationResult]:
    """Run ``requests`` serially, in order; the figures' default executor."""
    run = simulate if simulate is not None else run_simulation
    results: dict[str, SimulationResult] = {}
    for request in requests:
        if request.key in results:
            raise ConfigurationError(f"duplicate request key {request.key!r}")
        results[request.key] = run(request.config, request.engine)
    return results

#: Named base configurations. ``max_hops`` etc. are overridden per figure.
PRESETS: dict[str, GnutellaConfig] = {
    "paper": GnutellaConfig(
        n_users=2000,
        n_items=200_000,
        mean_library=200.0,
        std_library=50.0,
        horizon=4 * DAY,
        warmup_hours=12,
        queries_per_hour=8.0,
    ),
    "scaled": GnutellaConfig(
        n_users=600,
        n_items=60_000,
        mean_library=200.0,
        std_library=50.0,
        horizon=2 * DAY,
        warmup_hours=12,
        queries_per_hour=8.0,
    ),
    "smoke": GnutellaConfig(
        n_users=150,
        n_items=15_000,
        mean_library=60.0,
        std_library=15.0,
        horizon=8 * HOUR,
        warmup_hours=2,
        queries_per_hour=8.0,
    ),
}


def preset_config(preset: str, seed: int = 0, **overrides) -> GnutellaConfig:
    """The named preset with a seed and per-figure overrides applied."""
    try:
        base = PRESETS[preset]
    except KeyError:
        raise ConfigurationError(
            f"unknown preset {preset!r}; choose from {sorted(PRESETS)}"
        ) from None
    return replace(base, seed=seed, **overrides)


def paired_run(
    config: GnutellaConfig, engine: str = "fast"
) -> tuple[SimulationResult, SimulationResult]:
    """Run the static baseline and the dynamic scheme on the same world.

    Same seed, same churn schedules, same query arrival times — the paper's
    comparisons are paired (Section 4.3 plots both curves from one setup).
    """
    static = run_simulation(config.as_static(), engine=engine)
    dynamic = run_simulation(config.as_dynamic(), engine=engine)
    return static, dynamic
