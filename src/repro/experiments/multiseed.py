"""Multi-seed replication: confidence intervals for the headline claims.

One run per seed answers "what happened"; replication answers "is the
ordering real". This module reruns a paired static/dynamic comparison across
seeds and reports each metric's mean ± a Student-t confidence interval, plus
how often the dynamic scheme actually won.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np
import scipy.stats

from repro.errors import ConfigurationError
from repro.experiments.common import SimRequest, preset_config

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gnutella.simulation import SimulationResult
    from repro.orchestrate.cache import ResultCache

__all__ = [
    "MetricReplication",
    "MultiSeedResult",
    "assemble",
    "plan",
    "print_report",
    "run",
]


@dataclass(frozen=True, slots=True)
class MetricReplication:
    """One metric's static/dynamic samples across seeds."""

    metric: str
    static_samples: tuple[float, ...]
    dynamic_samples: tuple[float, ...]
    higher_is_better: bool

    def _ci(self, samples: tuple[float, ...], confidence: float = 0.95):
        arr = np.asarray(samples, dtype=float)
        mean = float(arr.mean())
        if arr.size < 2:
            return mean, 0.0
        sem = float(scipy.stats.sem(arr))
        if sem == 0.0:
            return mean, 0.0
        half = sem * float(scipy.stats.t.ppf((1 + confidence) / 2, arr.size - 1))
        return mean, half

    @property
    def static_mean_ci(self) -> tuple[float, float]:
        """(mean, half-width) of the static samples at 95 %."""
        return self._ci(self.static_samples)

    @property
    def dynamic_mean_ci(self) -> tuple[float, float]:
        """(mean, half-width) of the dynamic samples at 95 %."""
        return self._ci(self.dynamic_samples)

    @property
    def dynamic_win_fraction(self) -> float:
        """How often dynamic beat static, seed by seed (paired)."""
        wins = 0
        for s, d in zip(self.static_samples, self.dynamic_samples):
            better = d > s if self.higher_is_better else d < s
            wins += better
        return wins / len(self.static_samples)


@dataclass(frozen=True, slots=True)
class MultiSeedResult:
    """All replicated metrics for one configuration."""

    preset: str
    max_hops: int
    seeds: tuple[int, ...]
    metrics: tuple[MetricReplication, ...]


def plan(
    preset: str = "smoke",
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    max_hops: int = 2,
    overrides: Mapping[str, object] | None = None,
) -> tuple[SimRequest, ...]:
    """One paired (static, dynamic) simulation per seed."""
    if len(seeds) < 2:
        raise ConfigurationError("need at least two seeds for replication")
    requests: list[SimRequest] = []
    for seed in seeds:
        config = preset_config(preset, seed=seed, max_hops=max_hops, **(overrides or {}))
        requests.append(SimRequest(f"static@seed={seed}", config.as_static()))
        requests.append(SimRequest(f"dynamic@seed={seed}", config.as_dynamic()))
    return tuple(requests)


def assemble(
    results: Mapping[str, "SimulationResult"],
    *,
    preset: str,
    seeds: tuple[int, ...],
    max_hops: int = 2,
) -> MultiSeedResult:
    """Fold the per-seed paired runs into replicated metrics."""
    hits_s, hits_d = [], []
    msgs_s, msgs_d = [], []
    delay_s, delay_d = [], []
    for seed in seeds:
        static = results[f"static@seed={seed}"]
        dynamic = results[f"dynamic@seed={seed}"]
        warmup = static.config.warmup_hours
        hits_s.append(float(static.metrics.hits_total(warmup)))
        hits_d.append(float(dynamic.metrics.hits_total(warmup)))
        msgs_s.append(float(static.metrics.messages_total(warmup)))
        msgs_d.append(float(dynamic.metrics.messages_total(warmup)))
        delay_s.append(static.metrics.mean_first_result_delay_ms())
        delay_d.append(dynamic.metrics.mean_first_result_delay_ms())
    return MultiSeedResult(
        preset=preset,
        max_hops=max_hops,
        seeds=tuple(seeds),
        metrics=(
            MetricReplication("total hits", tuple(hits_s), tuple(hits_d), True),
            MetricReplication("query messages", tuple(msgs_s), tuple(msgs_d), False),
            MetricReplication(
                "first-result delay ms", tuple(delay_s), tuple(delay_d), False
            ),
        ),
    )


def run(
    preset: str = "smoke",
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    max_hops: int = 2,
    *,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
) -> MultiSeedResult:
    """Rerun the paired comparison once per seed.

    The seed loop is delegated to :mod:`repro.orchestrate`: with ``jobs > 1``
    the per-seed simulations fan out over a process pool, and with a
    ``cache`` previously computed seeds are served from disk. ``jobs=1``
    without a cache executes inline, bit-identically to the historical
    serial loop.
    """
    from repro.orchestrate.pool import run_requests

    requests = plan(preset, seeds=seeds, max_hops=max_hops)
    results = run_requests(requests, jobs=jobs, cache=cache)
    return assemble(results, preset=preset, seeds=tuple(seeds), max_hops=max_hops)


def print_report(result: MultiSeedResult) -> None:
    """Print mean ± 95 % CI per metric plus paired win rates."""
    print(
        f"=== replication across {len(result.seeds)} seeds "
        f"(preset {result.preset!r}, hops={result.max_hops}) ==="
    )
    print(f"{'metric':<24}{'static mean±CI':>22}{'dynamic mean±CI':>22}{'wins':>7}")
    for metric in result.metrics:
        sm, sh = metric.static_mean_ci
        dm, dh = metric.dynamic_mean_ci
        print(
            f"{metric.metric:<24}{sm:>14,.1f} ±{sh:>6,.1f}"
            f"{dm:>14,.1f} ±{dh:>6,.1f}"
            f"{metric.dynamic_win_fraction:>7.0%}"
        )
