"""Figure 3(a): average first-result delay vs the terminating condition.

Paper (Section 4.3): "This figure shows the average delay observed from the
moment a query is issued at a certain node, until the first result arrives
at that node. The numbers above each column indicate the total number of
results obtained. In the static approach, the delay increases significantly
when searching is more extensive ... In the dynamic scheme, though, most of
the results come from nearby nodes, and extensive searching is not
necessary."

Expected shape: static delay grows steeply with TTL; dynamic stays much
flatter while returning at least as many results at every TTL >= 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigurationError
from repro.experiments.common import (
    SimRequest,
    SimulateFn,
    execute_requests,
    preset_config,
)
from repro.experiments.report import format_series_table, header, kv_table
from repro.gnutella.simulation import SimulationResult

__all__ = ["Figure3aResult", "assemble", "plan", "print_report", "run"]

#: The sweep of terminating conditions (hops) shown on the x-axis.
HOPS_SWEEP = (1, 2, 3, 4)


@dataclass(frozen=True, slots=True)
class Figure3aResult:
    """Per-TTL delay means and total result counts for both schemes."""

    preset: str
    hops: tuple[int, ...]
    static_delay_ms: tuple[float, ...]
    dynamic_delay_ms: tuple[float, ...]
    static_results: tuple[int, ...]
    dynamic_results: tuple[int, ...]
    seed: int


def plan(
    preset: str = "scaled",
    seed: int = 0,
    hops_sweep: tuple[int, ...] = HOPS_SWEEP,
    overrides: Mapping[str, object] | None = None,
) -> tuple[SimRequest, ...]:
    """One paired simulation per TTL value in ``hops_sweep``."""
    if not hops_sweep:
        raise ConfigurationError("hops_sweep must not be empty")
    requests: list[SimRequest] = []
    for hops in hops_sweep:
        config = preset_config(preset, seed=seed, max_hops=hops, **(overrides or {}))
        requests.append(SimRequest(f"static@hops={hops}", config.as_static()))
        requests.append(SimRequest(f"dynamic@hops={hops}", config.as_dynamic()))
    return tuple(requests)


def assemble(
    results: Mapping[str, SimulationResult],
    *,
    preset: str,
    seed: int = 0,
    hops_sweep: tuple[int, ...] = HOPS_SWEEP,
) -> Figure3aResult:
    """Collect per-TTL delay means and result counts from the planned runs."""
    static_delay, dynamic_delay = [], []
    static_results, dynamic_results = [], []
    for hops in hops_sweep:
        static = results[f"static@hops={hops}"]
        dynamic = results[f"dynamic@hops={hops}"]
        static_delay.append(static.metrics.mean_first_result_delay_ms())
        dynamic_delay.append(dynamic.metrics.mean_first_result_delay_ms())
        static_results.append(static.metrics.total_results)
        dynamic_results.append(dynamic.metrics.total_results)
    return Figure3aResult(
        preset=preset,
        hops=tuple(hops_sweep),
        static_delay_ms=tuple(static_delay),
        dynamic_delay_ms=tuple(dynamic_delay),
        static_results=tuple(static_results),
        dynamic_results=tuple(dynamic_results),
        seed=seed,
    )


def run(
    preset: str = "scaled",
    seed: int = 0,
    hops_sweep: tuple[int, ...] = HOPS_SWEEP,
    simulate: SimulateFn | None = None,
) -> Figure3aResult:
    """One paired simulation per TTL value in ``hops_sweep``."""
    results = execute_requests(plan(preset, seed=seed, hops_sweep=hops_sweep), simulate)
    return assemble(results, preset=preset, seed=seed, hops_sweep=hops_sweep)


def print_report(result: Figure3aResult) -> None:
    """Print the per-TTL delay columns with result-count annotations."""
    print(header(
        f"Figure 3(a): average response time for first result (preset {result.preset!r})"
    ))
    print(kv_table({"terminating conditions": result.hops, "seed": result.seed}))
    print()
    print(format_series_table(
        result.hops,
        {
            "Gnutella delay ms": result.static_delay_ms,
            "Dynamic delay ms": result.dynamic_delay_ms,
            "Gnutella results": [float(r) for r in result.static_results],
            "Dynamic results": [float(r) for r in result.dynamic_results],
        },
        index_label="hops",
        max_rows=len(result.hops),
    ))
    print()
    for i, hops in enumerate(result.hops):
        print(
            f"  hops={hops}: static {result.static_delay_ms[i]:7.0f} ms "
            f"({result.static_results[i]:,} results) | dynamic "
            f"{result.dynamic_delay_ms[i]:7.0f} ms "
            f"({result.dynamic_results[i]:,} results)"
        )
