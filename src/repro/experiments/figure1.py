"""Figure 1: hits and query overhead per hour at TTL 2.

Paper (Section 4.3): "Figure 1(a) shows the total number of queries that
were satisfied during each one-hour interval for a simulated period of 4
days ... after the 12th hour, when the system has reached its steady-state.
The maximum number of hops (terminating condition) is set to 2. The dynamic
approach clearly outperforms the static configuration ... Figure 1(b)
illustrates the corresponding overhead ... The performance gain, though, is
limited since only up to 43 nodes are explored during each query."

Expected shape: dynamic above static on hits throughout; dynamic at-or-below
static on messages; both gaps modest at TTL 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.analysis.summary import compare_runs
from repro.experiments.common import (
    SimRequest,
    SimulateFn,
    execute_requests,
    preset_config,
)
from repro.experiments.report import format_series_table, header, kv_table
from repro.gnutella.simulation import SimulationResult

__all__ = ["Figure1Result", "assemble", "plan", "print_report", "run"]

#: TTL used by this figure (Figure 2 overrides it).
MAX_HOPS = 2
_TITLE = "Figure 1: dynamic vs static Gnutella, hops = {hops} (preset {preset!r})"


@dataclass(frozen=True, slots=True)
class Figure1Result:
    """Both panels' data: hourly hits (a) and hourly query messages (b)."""

    preset: str
    max_hops: int
    static: SimulationResult
    dynamic: SimulationResult
    hours: np.ndarray
    static_hits: np.ndarray
    dynamic_hits: np.ndarray
    static_messages: np.ndarray
    dynamic_messages: np.ndarray


def plan(
    preset: str = "scaled",
    seed: int = 0,
    max_hops: int = MAX_HOPS,
    overrides: Mapping[str, object] | None = None,
) -> tuple[SimRequest, ...]:
    """The two paired simulations this figure needs (static first)."""
    config = preset_config(preset, seed=seed, max_hops=max_hops, **(overrides or {}))
    return (
        SimRequest("static", config.as_static()),
        SimRequest("dynamic", config.as_dynamic()),
    )


def assemble(
    results: Mapping[str, SimulationResult], *, preset: str, max_hops: int = MAX_HOPS
) -> Figure1Result:
    """Turn the planned runs' results back into both panels' series."""
    static, dynamic = results["static"], results["dynamic"]
    warmup = static.config.warmup_hours
    hours, static_hits = static.metrics.hits_series(warmup)
    _, dynamic_hits = dynamic.metrics.hits_series(warmup)
    _, static_messages = static.metrics.messages_series(warmup)
    _, dynamic_messages = dynamic.metrics.messages_series(warmup)
    return Figure1Result(
        preset=preset,
        max_hops=max_hops,
        static=static,
        dynamic=dynamic,
        hours=hours.astype(float),
        static_hits=static_hits.astype(float),
        dynamic_hits=dynamic_hits.astype(float),
        static_messages=static_messages.astype(float),
        dynamic_messages=dynamic_messages.astype(float),
    )


def run(
    preset: str = "scaled",
    seed: int = 0,
    max_hops: int = MAX_HOPS,
    simulate: SimulateFn | None = None,
) -> Figure1Result:
    """Execute the paired simulation and extract both panels' series."""
    requests = plan(preset, seed=seed, max_hops=max_hops)
    results = execute_requests(requests, simulate)
    return assemble(results, preset=preset, max_hops=max_hops)


def print_report(result: Figure1Result, title: str | None = None) -> None:
    """Print both panels as series tables plus the headline comparison."""
    print(header(title or _TITLE.format(hops=result.max_hops, preset=result.preset)))
    print(kv_table({
        "users": result.static.config.n_users,
        "songs": result.static.config.n_items,
        "horizon hours": int(result.static.config.horizon // 3600),
        "warm-up hours": result.static.config.warmup_hours,
        "queries/user/hour": result.static.config.queries_per_hour,
        "seed": result.static.config.seed,
    }))
    print()
    print(f"-- panel (a): queries satisfied per hour (hops={result.max_hops}) --")
    print(format_series_table(
        result.hours,
        {"Gnutella": result.static_hits, "Dynamic_Gnutella": result.dynamic_hits},
    ))
    print()
    print(f"-- panel (b): query messages per hour (hops={result.max_hops}) --")
    print(format_series_table(
        result.hours,
        {
            "Gnutella": result.static_messages,
            "Dynamic_Gnutella": result.dynamic_messages,
        },
    ))
    print()
    print("-- summary (after warm-up) --")
    for row in compare_runs(result.static, result.dynamic):
        print("  " + row.format())
