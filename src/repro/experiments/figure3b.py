"""Figure 3(b): total hits vs the reconfiguration threshold T.

Paper (Section 4.3): "When T = 1, the total number of hits achieved by the
dynamic system is similar to the static one ... any node that returns a
result will potentially become a neighbor, even if the two users do not
share the same interests ... if the value of T is too large, the system does
not have the chance to perform enough reconfigurations during the 3-hour
period (on average) that a user is on-line ... the performance drops again,
converging asymptotically to the static case."

Expected shape: a unimodal curve over T with its maximum at a small
threshold (the paper's optimum is T = 2 for its settings) and both ends
bending back toward the static baseline. TTL is 2, as in Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigurationError
from repro.experiments.common import (
    SimRequest,
    SimulateFn,
    execute_requests,
    preset_config,
)
from repro.experiments.report import format_series_table, header, kv_table
from repro.gnutella.simulation import SimulationResult

__all__ = ["Figure3bResult", "assemble", "plan", "print_report", "run"]

#: The threshold sweep on the x-axis.
THRESHOLD_SWEEP = (1, 2, 4, 8, 16)
#: TTL for this figure (matches Figure 1).
MAX_HOPS = 2


@dataclass(frozen=True, slots=True)
class Figure3bResult:
    """Total hits per threshold, plus the static baseline."""

    preset: str
    thresholds: tuple[int, ...]
    dynamic_hits: tuple[int, ...]
    static_hits: int
    seed: int

    @property
    def best_threshold(self) -> int:
        """The threshold with the most total hits."""
        best = max(range(len(self.thresholds)), key=lambda i: self.dynamic_hits[i])
        return self.thresholds[best]


def plan(
    preset: str = "scaled",
    seed: int = 0,
    thresholds: tuple[int, ...] = THRESHOLD_SWEEP,
    overrides: Mapping[str, object] | None = None,
) -> tuple[SimRequest, ...]:
    """One static run plus one dynamic run per threshold value."""
    if not thresholds:
        raise ConfigurationError("thresholds must not be empty")
    base = preset_config(preset, seed=seed, max_hops=MAX_HOPS, **(overrides or {}))
    requests = [SimRequest("static", base.as_static())]
    for threshold in thresholds:
        config = preset_config(
            preset,
            seed=seed,
            max_hops=MAX_HOPS,
            reconfiguration_threshold=threshold,
            **(overrides or {}),
        )
        requests.append(SimRequest(f"dynamic@T={threshold}", config.as_dynamic()))
    return tuple(requests)


def assemble(
    results: Mapping[str, SimulationResult],
    *,
    preset: str,
    seed: int = 0,
    thresholds: tuple[int, ...] = THRESHOLD_SWEEP,
) -> Figure3bResult:
    """Collect the threshold sweep's totals from the planned runs."""
    static = results["static"]
    warmup = static.config.warmup_hours
    dynamic_hits = [
        results[f"dynamic@T={threshold}"].metrics.hits_total(warmup)
        for threshold in thresholds
    ]
    return Figure3bResult(
        preset=preset,
        thresholds=tuple(thresholds),
        dynamic_hits=tuple(dynamic_hits),
        static_hits=static.metrics.hits_total(warmup),
        seed=seed,
    )


def run(
    preset: str = "scaled",
    seed: int = 0,
    thresholds: tuple[int, ...] = THRESHOLD_SWEEP,
    simulate: SimulateFn | None = None,
) -> Figure3bResult:
    """One static run plus one dynamic run per threshold value."""
    results = execute_requests(plan(preset, seed=seed, thresholds=thresholds), simulate)
    return assemble(results, preset=preset, seed=seed, thresholds=thresholds)


def print_report(result: Figure3bResult) -> None:
    """Print the threshold sweep with the static reference line."""
    print(header(
        f"Figure 3(b): effect of reconfiguration period (preset {result.preset!r})"
    ))
    print(kv_table({
        "static baseline hits": f"{result.static_hits:,}",
        "best threshold": result.best_threshold,
        "seed": result.seed,
    }))
    print()
    print(format_series_table(
        result.thresholds,
        {
            "Dynamic_Gnutella": [float(h) for h in result.dynamic_hits],
            "Gnutella (static)": [float(result.static_hits)] * len(result.thresholds),
        },
        index_label="T",
        max_rows=len(result.thresholds),
    ))
