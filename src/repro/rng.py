"""Deterministic random-number management.

Every stochastic component in the library draws from a *named stream* derived
from a single root seed, so that

* the same seed reproduces the same simulation bit-for-bit, and
* adding draws to one component (e.g. the churn model) does not perturb the
  sequence seen by another (e.g. the query generator).

Streams are spawned with :class:`numpy.random.SeedSequence` using the stream
name hashed into the spawn key, which is the numpy-recommended way to derive
independent generators.

Example
-------
>>> streams = RngStreams(seed=7)
>>> churn_rng = streams.get("churn")
>>> query_rng = streams.get("queries")
>>> churn_rng is streams.get("churn")   # cached per name
True
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngStreams", "stream_key"]


def stream_key(name: str) -> int:
    """Map a stream name to a stable 64-bit integer key.

    Uses SHA-256 so the mapping is stable across Python processes (unlike
    :func:`hash`, which is salted per process for strings).
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """A factory of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed. Two :class:`RngStreams` built with the same seed hand out
        identical generators for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self._seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was built with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so draws interleave naturally within a component while remaining
        independent across components.
        """
        gen = self._cache.get(name)
        if gen is None:
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(stream_key(name),))
            gen = np.random.default_rng(seq)
            self._cache[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, bypassing the cache.

        Useful for components that want a private generator whose consumption
        must not affect later :meth:`get` callers of the same name.
        """
        seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(stream_key(name),))
        return np.random.default_rng(seq)

    def child(self, name: str) -> "RngStreams":
        """Derive an independent sub-factory, e.g. one per simulation replica."""
        return RngStreams(seed=stream_key(name) ^ self._seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self._seed}, streams={sorted(self._cache)})"
