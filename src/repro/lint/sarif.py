"""SARIF 2.1.0 output for GitHub code scanning.

One run, one driver (``repro-lint``), one result per finding.  Baselined
findings are included with an ``external`` suppression and comment-
suppressed findings with an ``inSource`` suppression, so code-scanning UIs
show them as acknowledged rather than resurfacing frozen debt.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.lint.model import Finding
from repro.lint.program import PROJECT_RULES
from repro.lint.rules import RULES

__all__ = ["render_sarif"]

_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _tool_version() -> str:
    try:
        import repro

        return str(getattr(repro, "__version__", "0"))
    except ImportError:  # pragma: no cover - repro is always importable here
        return "0"


def _rule_descriptors() -> tuple[list[dict], dict[str, int]]:
    """SARIF ``rules`` array plus code -> ruleIndex map."""
    descriptors: list[dict] = []
    index: dict[str, int] = {}
    catalogue = {**RULES, **PROJECT_RULES}
    # R000 is the parse-error pseudo-rule; it has no class in the registry.
    entries: list[tuple[str, str, str]] = [
        ("R000", "parse-error", "file could not be parsed")
    ]
    for code in sorted(catalogue):
        rule = catalogue[code]
        entries.append((code, rule.name, rule.rationale))
    for code, name, rationale in entries:
        index[code] = len(descriptors)
        descriptors.append(
            {
                "id": code,
                "name": name,
                "shortDescription": {"text": rationale},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return descriptors, index


def _uri(path: str) -> str:
    return path.replace("\\", "/")


def _result(finding: Finding, rule_index: dict[str, int],
            suppression_kind: str | None) -> dict:
    result = {
        "ruleId": finding.code,
        "ruleIndex": rule_index.get(finding.code, -1),
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": _uri(finding.path)},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if suppression_kind is not None:
        result["suppressions"] = [{"kind": suppression_kind}]
    return result


def render_sarif(
    findings: Iterable[Finding],
    *,
    baselined: Iterable[Finding] = (),
    suppressed: Iterable[Finding] = (),
) -> str:
    """The SARIF document as a JSON string.

    ``findings`` are live results; ``baselined`` carries an ``external``
    suppression (accepted via the committed baseline); ``suppressed``
    carries ``inSource`` (silenced by a ``# repro-lint: disable`` comment).
    """
    descriptors, rule_index = _rule_descriptors()
    results = (
        [_result(f, rule_index, None) for f in findings]
        + [_result(f, rule_index, "external") for f in baselined]
        + [_result(f, rule_index, "inSource") for f in suppressed]
    )
    document = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": _tool_version(),
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
