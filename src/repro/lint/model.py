"""Shared data model for the lint engine and its rules."""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO

__all__ = ["Finding", "ModuleContext", "Suppressions", "parse_suppressions"]

#: Matches ``# repro-lint: disable=R001,R003`` and the file-wide variant
#: ``# repro-lint: disable-file=R002``.  ``all`` suppresses every rule.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int

    def format(self) -> str:
        """Render as the conventional ``path:line:col: CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col + 1,
        }


@dataclass(slots=True)
class Suppressions:
    """Parsed ``# repro-lint: disable=...`` comments for one file."""

    #: line number -> codes suppressed on that line ("all" wildcards).
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: codes suppressed for the whole file.
    file_wide: set[str] = field(default_factory=set)

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether ``finding`` is silenced by a suppression comment."""
        if "all" in self.file_wide or finding.code in self.file_wide:
            return True
        codes = self.by_line.get(finding.line)
        return codes is not None and ("all" in codes or finding.code in codes)


def parse_suppressions(source: str) -> Suppressions:
    """Extract suppression comments from ``source``.

    Uses :mod:`tokenize` so string literals that merely *look* like
    suppression comments are ignored.  Unterminated files (tokenize errors)
    degrade gracefully to no suppressions beyond those already seen.
    """
    sup = Suppressions()
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            codes = {c.strip() for c in match.group("codes").split(",") if c.strip()}
            if match.group("kind") == "disable-file":
                sup.file_wide |= codes
            else:
                sup.by_line.setdefault(tok.start[0], set()).update(codes)
    except tokenize.TokenError:
        pass
    return sup


@dataclass(slots=True)
class ModuleContext:
    """Everything a rule needs to know about the module under analysis."""

    path: str
    tree: ast.Module
    #: Dotted module name when the file lives inside the ``repro`` package
    #: (e.g. ``repro.gnutella.fast``); ``None`` for files outside it, in
    #: which case package-scoped rules apply unconditionally.
    module: str | None = None

    @property
    def subpackage(self) -> str | None:
        """First component below ``repro`` (``gnutella`` for repro.gnutella.fast)."""
        if self.module is None:
            return None
        parts = self.module.split(".")
        return parts[1] if len(parts) > 1 else ""
