"""Command-line interface: ``repro-lint`` / ``python -m repro.lint``.

Exit codes: 0 clean, 1 findings reported, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.engine import lint_paths
from repro.lint.report import render_json, render_rule_list, render_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism & protocol-invariant static analysis for the repro "
            "package. Checks for unseeded RNG use, wall-clock reads, "
            "ordering-sensitive set iteration, float timestamp equality, and "
            "shared mutable state."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by suppression comments",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def _split_codes(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [c.strip() for c in raw.split(",") if c.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(render_rule_list())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(
            f"repro-lint: error: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    try:
        result = lint_paths(
            args.paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
        )
    except ValueError as exc:  # unknown rule codes
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.format == "json":
            print(render_json(result))
        else:
            print(render_text(result, show_suppressed=args.show_suppressed))
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; that is not
        # an error. Detach stdout so interpreter shutdown doesn't retry.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
