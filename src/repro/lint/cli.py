"""Command-line interface: ``repro-lint`` / ``python -m repro.lint``.

Exit codes: 0 clean (or all findings baselined), 1 new findings reported,
2 usage error.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import Baseline, BaselineError
from repro.lint.engine import LintResult, lint_paths
from repro.lint.report import (
    render_explain,
    render_json,
    render_rule_list,
    render_text,
)
from repro.lint.sarif import render_sarif

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism & protocol-invariant static analysis for the repro "
            "package. Per-module rules check for unseeded RNG use, wall-clock "
            "reads, ordering-sensitive set iteration, float timestamp "
            "equality, shared mutable state, environment reads, and "
            "fork-unsafe caches; whole-program rules check observer purity, "
            "process-pool worker state, and fastpath/reference parity."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by suppression comments",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        help="print a rule's rationale, failing example, and fix, then exit",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="additionally write a SARIF 2.1.0 report ('-' for stdout)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "subtract the committed baseline: matched findings are reported "
            "as baselined and only new findings fail the run"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current findings as a new baseline file and exit 0",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "lint only files changed vs git HEAD (plus untracked files), "
            "intersected with the given paths"
        ),
    )
    parser.add_argument(
        "--symtab-cache",
        metavar="DIR",
        help=(
            "directory caching the whole-program symbol table keyed on "
            "source hash (used by CI between runs)"
        ),
    )
    return parser


def _split_codes(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [c.strip() for c in raw.split(",") if c.strip()]


def _git_changed_files() -> set[Path] | None:
    """Files changed vs HEAD plus untracked files, resolved; None on failure."""
    changed: set[Path] = set()
    for cmd in (
        ["git", "diff", "--name-only", "HEAD", "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
        except (OSError, subprocess.CalledProcessError):
            return None
        for line in proc.stdout.splitlines():
            line = line.strip()
            if line:
                changed.add(Path(line).resolve())
    return changed


def _restrict_to_changed(paths: Sequence[str]) -> list[Path] | None:
    """The changed ``.py`` files contained in ``paths``; None if git failed."""
    changed = _git_changed_files()
    if changed is None:
        return None
    roots = [Path(p).resolve() for p in paths]
    selected: list[Path] = []
    for candidate in sorted(changed):
        if candidate.suffix != ".py" or not candidate.exists():
            continue
        for root in roots:
            if candidate == root or candidate.is_relative_to(root):
                selected.append(candidate)
                break
    return selected


def _emit_sarif(target: str, result: LintResult,
                baselined: Sequence) -> None:
    document = render_sarif(
        result.findings, baselined=baselined, suppressed=result.suppressed
    )
    if target == "-":
        _safe_print(document)
    else:
        Path(target).write_text(document + "\n", encoding="utf-8")


def _safe_print(text: str) -> None:
    """Print to stdout, tolerating a consumer (e.g. ``| head``) that closed
    the pipe early — that is not an error and must not change the exit code.
    Detaches stdout so interpreter shutdown doesn't retry the write."""
    import os

    try:
        print(text)
        sys.stdout.flush()
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _safe_print(render_rule_list())
        return 0
    if args.explain:
        page = render_explain(args.explain)
        if page is None:
            print(
                f"repro-lint: error: unknown rule code {args.explain!r} "
                "(see --list-rules)",
                file=sys.stderr,
            )
            return 2
        _safe_print(page)
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(
            f"repro-lint: error: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    lint_targets: Sequence[Path | str] = args.paths
    if args.changed:
        restricted = _restrict_to_changed(args.paths)
        if restricted is None:
            print(
                "repro-lint: error: --changed requires a git work tree",
                file=sys.stderr,
            )
            return 2
        if not restricted:
            _safe_print("clean: no changed Python files under the given paths")
            return 0
        lint_targets = restricted

    try:
        result = lint_paths(
            lint_targets,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
            symtab_cache=args.symtab_cache,
        )
    except ValueError as exc:  # unknown rule codes
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        baseline = Baseline.from_findings(
            result.findings, root=Path(args.write_baseline).resolve().parent
        )
        baseline.save(args.write_baseline)
        _safe_print(
            f"wrote baseline {args.write_baseline}: {len(baseline)} finding(s) "
            f"from {result.checked_files} file(s)"
        )
        return 0

    baselined: list = []
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except BaselineError as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return 2
        new, baselined = baseline.apply(result.findings)
        result = LintResult(
            findings=new,
            suppressed=result.suppressed,
            checked_files=result.checked_files,
        )

    if args.sarif:
        _emit_sarif(args.sarif, result, baselined)
    if args.format == "json":
        _safe_print(render_json(result, baselined=baselined))
    elif args.sarif != "-":
        _safe_print(
            render_text(
                result,
                show_suppressed=args.show_suppressed,
                baselined=baselined,
            )
        )
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
