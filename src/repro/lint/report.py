"""Rendering lint results as text or JSON."""

from __future__ import annotations

import json
from collections import Counter

from repro.lint.engine import LintResult
from repro.lint.rules import all_rules

__all__ = ["render_json", "render_rule_list", "render_text"]


def render_text(result: LintResult, *, show_suppressed: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.format() for f in result.findings]
    if show_suppressed and result.suppressed:
        lines.append("-- suppressed --")
        lines.extend(f.format() + "  (suppressed)" for f in sorted(
            result.suppressed, key=lambda f: (f.path, f.line, f.col, f.code)
        ))
    if result.findings:
        by_code = Counter(f.code for f in result.findings)
        breakdown = ", ".join(f"{code}: {n}" for code, n in sorted(by_code.items()))
        lines.append(
            f"found {len(result.findings)} issue(s) in {result.checked_files} "
            f"file(s) ({breakdown}); {len(result.suppressed)} suppressed"
        )
    else:
        lines.append(
            f"clean: {result.checked_files} file(s), "
            f"{len(result.suppressed)} finding(s) suppressed"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "checked_files": result.checked_files,
        "findings": [f.as_dict() for f in result.findings],
        "suppressed": [f.as_dict() for f in result.suppressed],
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The registry as a table (``--list-rules``)."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.name:<22} {rule.rationale}")
    return "\n".join(lines)
