"""Rendering lint results as text or JSON, rule listings, and --explain."""

from __future__ import annotations

import inspect
import json
from collections import Counter
from typing import Sequence

from repro.lint.engine import LintResult
from repro.lint.model import Finding
from repro.lint.program import all_project_rules
from repro.lint.rules import all_rules

__all__ = ["render_explain", "render_json", "render_rule_list", "render_text"]


def render_text(
    result: LintResult,
    *,
    show_suppressed: bool = False,
    baselined: Sequence[Finding] = (),
) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.format() for f in result.findings]
    if show_suppressed and result.suppressed:
        lines.append("-- suppressed --")
        lines.extend(f.format() + "  (suppressed)" for f in sorted(
            result.suppressed, key=lambda f: (f.path, f.line, f.col, f.code)
        ))
    baseline_note = f", {len(baselined)} baselined" if baselined else ""
    if result.findings:
        by_code = Counter(f.code for f in result.findings)
        breakdown = ", ".join(f"{code}: {n}" for code, n in sorted(by_code.items()))
        lines.append(
            f"found {len(result.findings)} issue(s) in {result.checked_files} "
            f"file(s) ({breakdown}); {len(result.suppressed)} suppressed"
            f"{baseline_note}"
        )
    else:
        lines.append(
            f"clean: {result.checked_files} file(s), "
            f"{len(result.suppressed)} finding(s) suppressed{baseline_note}"
        )
    return "\n".join(lines)


def render_json(
    result: LintResult, *, baselined: Sequence[Finding] = ()
) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "checked_files": result.checked_files,
        "findings": [f.as_dict() for f in result.findings],
        "suppressed": [f.as_dict() for f in result.suppressed],
        "baselined": [f.as_dict() for f in baselined],
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _catalogue():
    """Every registered rule class, per-module and project, in code order."""
    rules = {r.code: r for r in all_rules()}
    rules.update({r.code: r for r in all_project_rules()})
    return [rules[code] for code in sorted(rules)]


def render_rule_list() -> str:
    """The registry as a table (``--list-rules``)."""
    lines = []
    for rule in _catalogue():
        lines.append(f"{rule.code}  {rule.name:<28} {rule.rationale}")
    return "\n".join(lines)


def _doc_sections(doc: str) -> tuple[str, str, str]:
    """Split a rule docstring into (summary, example, fix) sections.

    Rule docstrings follow the convention of a prose rationale followed by
    ``Example::`` and ``Fix::`` literal blocks; missing sections come back
    empty.
    """
    summary_lines: list[str] = []
    example_lines: list[str] = []
    fix_lines: list[str] = []
    bucket = summary_lines
    for line in inspect.cleandoc(doc).splitlines():
        stripped = line.strip()
        if stripped == "Example::":
            bucket = example_lines
            continue
        if stripped == "Fix::":
            bucket = fix_lines
            continue
        bucket.append(line)

    def block(lines: list[str]) -> str:
        text = "\n".join(lines).strip("\n")
        return inspect.cleandoc(text) if text else ""

    return block(summary_lines), block(example_lines), block(fix_lines)


def render_explain(code: str) -> str | None:
    """The ``--explain CODE`` page, or ``None`` for an unknown code.

    Generated from the rule docstring: rationale prose, the minimal failing
    example, and the sanctioned fix.
    """
    rules = {r.code: r for r in _catalogue()}
    rule = rules.get(code.upper())
    if rule is None:
        return None
    summary, example, fix = _doc_sections(rule.__doc__ or "")
    lines = [
        f"{rule.code} — {rule.name}",
        f"rationale: {rule.rationale}",
        "",
        summary or "(no description)",
    ]
    if example:
        lines += ["", "Minimal failing example:", ""]
        lines += [f"    {ln}" if ln else "" for ln in example.splitlines()]
    if fix:
        lines += ["", "Sanctioned fix:", ""]
        lines += [f"    {ln}" if ln else "" for ln in fix.splitlines()]
    return "\n".join(lines)
