"""Project-wide symbol table and call graph for repro-lint.

:class:`ProjectIndex` is the whole-program layer the R006+ rules run on.
It is built once per lint invocation from every parsed module, records only
plain serializable data (no ASTs), and can therefore be cached on disk
between runs keyed on a hash of the source set (``--symtab-cache``).

Per module it records:

* the import table (local name -> dotted target) and the set of imported
  module names (for worker import-closure computation, R007);
* every function and method as a :class:`FunctionRecord` carrying its
  :class:`~repro.lint.dataflow.FunctionEffects` summary — including nested
  ``def``\\ s, which matter because observers are often registered as
  closures;
* module-level mutable bindings (containers, ``itertools.count`` counters,
  ``None``-initialised lazy slots) and every function-scope mutation of
  them (R007/R012);
* observer registration sites: ``@mark_observer`` decorators and
  ``mark_observer(fn)`` calls (R006);
* process-pool worker entry points: functions named ``simulate_task`` and
  the callables handed to ``executor.submit`` (R007).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from .dataflow import (
    Chain,
    FunctionEffects,
    MUTATOR_METHODS,
    attr_chain,
    collect_effects,
)

__all__ = [
    "FunctionRecord",
    "ModuleRecord",
    "MutationSite",
    "ObserverSite",
    "ProjectIndex",
    "build_index",
    "index_cache_key",
    "load_cached_index",
    "store_cached_index",
]

INDEX_FORMAT_VERSION = 1

#: Module-level expressions treated as mutable bindings.
_MUTABLE_CALLS = frozenset(
    {"dict", "list", "set", "defaultdict", "deque", "Counter", "OrderedDict"}
)
_COUNTER_CALLS = frozenset({"count"})


@dataclass(frozen=True, slots=True)
class FunctionRecord:
    """One function/method/nested function, with its effect summary."""

    qualname: str
    name: str
    module: str | None
    path: str
    line: int
    col: int
    is_method: bool
    class_name: str | None
    decorators: tuple[Chain, ...]
    effects: FunctionEffects

    def as_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "is_method": self.is_method,
            "class_name": self.class_name,
            "decorators": [list(d) for d in self.decorators],
            "effects": self.effects.as_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FunctionRecord":
        return cls(
            qualname=d["qualname"],
            name=d["name"],
            module=d["module"],
            path=d["path"],
            line=d["line"],
            col=d["col"],
            is_method=d["is_method"],
            class_name=d["class_name"],
            decorators=tuple(tuple(x) for x in d["decorators"]),
            effects=FunctionEffects.from_dict(d["effects"]),
        )


@dataclass(frozen=True, slots=True)
class MutationSite:
    """A function-scope mutation of a module-level mutable binding."""

    name: str
    kind: str  # "mutcall" | "subscript" | "global-assign" | "counter-advance"
    scope: str  # qualname of the enclosing function, or "<lambda>"
    line: int
    col: int

    def as_dict(self) -> dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "scope": self.scope,
                "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "MutationSite":
        return cls(d["name"], d["kind"], d["scope"], d["line"], d["col"])


@dataclass(frozen=True, slots=True)
class ObserverSite:
    """One observer registration (decorator or ``mark_observer(fn)`` call)."""

    target: str  # qualname of the registered function within its module
    line: int

    def as_dict(self) -> dict[str, Any]:
        return {"target": self.target, "line": self.line}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ObserverSite":
        return cls(d["target"], d["line"])


@dataclass(slots=True)
class ModuleRecord:
    """Everything the project rules need to know about one module."""

    path: str
    module: str | None
    imports: dict[str, str] = field(default_factory=dict)
    imported_modules: frozenset[str] = frozenset()
    functions: dict[str, FunctionRecord] = field(default_factory=dict)
    classes: dict[str, dict[str, str]] = field(default_factory=dict)
    #: name -> kind ("container" | "counter" | "none") for module-level
    #: mutable bindings.
    module_mutables: dict[str, str] = field(default_factory=dict)
    mutations: tuple[MutationSite, ...] = ()
    observers: tuple[ObserverSite, ...] = ()
    entrypoints: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "imports": dict(sorted(self.imports.items())),
            "imported_modules": sorted(self.imported_modules),
            "functions": {k: v.as_dict() for k, v in sorted(self.functions.items())},
            "classes": {k: dict(sorted(v.items())) for k, v in sorted(self.classes.items())},
            "module_mutables": dict(sorted(self.module_mutables.items())),
            "mutations": [m.as_dict() for m in self.mutations],
            "observers": [o.as_dict() for o in self.observers],
            "entrypoints": list(self.entrypoints),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ModuleRecord":
        return cls(
            path=d["path"],
            module=d["module"],
            imports=dict(d["imports"]),
            imported_modules=frozenset(d["imported_modules"]),
            functions={k: FunctionRecord.from_dict(v) for k, v in d["functions"].items()},
            classes={k: dict(v) for k, v in d["classes"].items()},
            module_mutables=dict(d["module_mutables"]),
            mutations=tuple(MutationSite.from_dict(m) for m in d["mutations"]),
            observers=tuple(ObserverSite.from_dict(o) for o in d["observers"]),
            entrypoints=tuple(d["entrypoints"]),
        )


class _ModuleScanner:
    """Builds one :class:`ModuleRecord` from a parsed module."""

    def __init__(self, path: str, module: str | None, tree: ast.Module) -> None:
        self.path = path
        self.module = module
        self.tree = tree
        self.record = ModuleRecord(path=path, module=module)

    def scan(self) -> ModuleRecord:
        self._scan_imports()
        self._scan_module_mutables()
        self._scan_scopes()
        self._scan_observers_and_entrypoints()
        return self.record

    # -- imports -----------------------------------------------------------
    def _scan_imports(self) -> None:
        imports: dict[str, str] = {}
        modules: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    modules.add(alias.name)
                    local = alias.asname or alias.name.split(".")[0]
                    imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level and self.module:
                    # Resolve relative imports against the current module.
                    parts = self.module.split(".")
                    anchor = parts[: len(parts) - node.level]
                    base = ".".join(anchor + ([node.module] if node.module else []))
                if not base:
                    continue
                modules.add(base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    modules.add(f"{base}.{alias.name}")
                    imports[alias.asname or alias.name] = f"{base}.{alias.name}"
        self.record.imports = imports
        self.record.imported_modules = frozenset(modules)

    # -- module-level mutables ---------------------------------------------
    def _mutable_kind(self, value: ast.AST) -> str | None:
        if isinstance(value, (ast.Dict, ast.List, ast.Set,
                              ast.DictComp, ast.ListComp, ast.SetComp)):
            return "container"
        if isinstance(value, ast.Constant) and value.value is None:
            return "none"
        if isinstance(value, ast.Call):
            chain = attr_chain(value.func)
            if chain is None:
                return None
            if chain[-1] in _MUTABLE_CALLS:
                return "container"
            if chain[-1] in _COUNTER_CALLS:
                return "counter"
        return None

    def _scan_module_mutables(self) -> None:
        mutables: dict[str, str] = {}
        for stmt in self.tree.body:
            targets: list[ast.AST] = []
            value: ast.AST | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            kind = self._mutable_kind(value)
            if kind is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    mutables[target.id] = kind
        self.record.module_mutables = mutables

    # -- function scopes ----------------------------------------------------
    def _scan_scopes(self) -> None:
        functions: dict[str, FunctionRecord] = {}
        classes: dict[str, dict[str, str]] = {}
        mutations: list[MutationSite] = []

        def walk(body: Sequence[ast.stmt], prefix: str,
                 class_name: str | None) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}{stmt.name}" if prefix else stmt.name
                    effects = collect_effects(stmt)
                    functions[qualname] = FunctionRecord(
                        qualname=qualname,
                        name=stmt.name,
                        module=self.module,
                        path=self.path,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        is_method=class_name is not None,
                        class_name=class_name,
                        decorators=tuple(
                            c for c in (attr_chain(_decorator_base(d))
                                        for d in stmt.decorator_list)
                            if c is not None
                        ),
                        effects=effects,
                    )
                    if class_name is not None:
                        classes.setdefault(class_name, {})[stmt.name] = qualname
                    mutations.extend(
                        self._scope_mutations(stmt, qualname, effects)
                    )
                    walk(stmt.body, f"{qualname}.", None)
                elif isinstance(stmt, ast.ClassDef):
                    classes.setdefault(stmt.name, {})
                    mutations.extend(self._class_body_lambda_mutations(stmt))
                    walk(stmt.body, f"{stmt.name}.", stmt.name)

        walk(self.tree.body, "", None)
        self.record.functions = functions
        self.record.classes = classes
        self.record.mutations = tuple(mutations)

    def _scope_mutations(self, fn: ast.FunctionDef | ast.AsyncFunctionDef,
                         qualname: str,
                         effects: FunctionEffects) -> list[MutationSite]:
        """Mutations of module-level mutables inside one function body."""
        mutables = self.record.module_mutables
        shadowed = (set(effects.params) | set(effects.locals)
                    | set(effects.aliases)) - set(effects.globals_declared)
        out: list[MutationSite] = []
        for w in effects.writes:
            name = w.chain[0]
            if name not in mutables or name in shadowed:
                continue
            if w.kind == "global":
                out.append(MutationSite(name, "global-assign", qualname,
                                        w.line, w.col))
            elif len(w.chain) == 1 and w.kind in ("augassign", "subscript"):
                out.append(MutationSite(name, "subscript", qualname,
                                        w.line, w.col))
            elif w.kind == "subscript":
                out.append(MutationSite(name, "subscript", qualname,
                                        w.line, w.col))
        for c in effects.calls:
            root = c.chain[0]
            if len(c.chain) == 2 and root in mutables and root not in shadowed:
                if c.chain[1] in MUTATOR_METHODS:
                    out.append(MutationSite(root, "mutcall", qualname,
                                            c.line, c.col))
            elif (c.chain == ("next",) and c.args
                  and c.args[0] is not None and len(c.args[0]) == 1
                  and c.args[0][0] in mutables
                  and mutables[c.args[0][0]] == "counter"
                  and c.args[0][0] not in shadowed):
                out.append(MutationSite(c.args[0][0], "counter-advance",
                                        qualname, c.line, c.col))
        return out

    def _class_body_lambda_mutations(self,
                                     cls: ast.ClassDef) -> list[MutationSite]:
        """Catch ``field(default_factory=lambda: next(_counter))`` et al."""
        mutables = self.record.module_mutables
        out: list[MutationSite] = []
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Lambda):
                    continue
                effects = collect_effects(node)
                shadowed = set(effects.params)
                for c in effects.calls:
                    if (c.chain == ("next",) and c.args
                            and c.args[0] is not None and len(c.args[0]) == 1
                            and c.args[0][0] in mutables
                            and mutables[c.args[0][0]] == "counter"
                            and c.args[0][0] not in shadowed):
                        out.append(MutationSite(c.args[0][0],
                                                "counter-advance", "<lambda>",
                                                c.line, c.col))
                    elif (len(c.chain) == 2 and c.chain[0] in mutables
                          and c.chain[0] not in shadowed
                          and c.chain[1] in MUTATOR_METHODS):
                        out.append(MutationSite(c.chain[0], "mutcall",
                                                "<lambda>", c.line, c.col))
        return out

    # -- observers / entry points -------------------------------------------
    def _scan_observers_and_entrypoints(self) -> None:
        observers: list[ObserverSite] = []
        entrypoints: list[str] = []

        for qualname, record in self.record.functions.items():
            if any(d[-1] == "mark_observer" for d in record.decorators):
                observers.append(ObserverSite(qualname, record.line))
            if record.name == "simulate_task":
                entrypoints.append(qualname)

        # Call forms: mark_observer(fn) and executor.submit(fn, ...).
        for qualname, record in self.record.functions.items():
            for call in record.effects.calls:
                tail = call.chain[-1]
                if tail == "mark_observer":
                    target = self._resolve_local_target(call.args, qualname)
                    if target is not None:
                        observers.append(ObserverSite(target, call.line))
                elif tail == "submit" and len(call.chain) >= 2:
                    target = self._resolve_local_target(call.args, qualname)
                    if target is not None and target not in entrypoints:
                        entrypoints.append(target)

        self.record.observers = tuple(
            dict.fromkeys(observers)  # preserve order, drop duplicates
        )
        self.record.entrypoints = tuple(entrypoints)

    def _resolve_local_target(self, args: tuple[Chain | None, ...],
                              scope: str) -> str | None:
        """Resolve a single-name first argument to a function qualname."""
        if not args or args[0] is None or len(args[0]) != 1:
            return None
        name = args[0][0]
        nested = f"{scope}.{name}"
        if nested in self.record.functions:
            return nested
        if name in self.record.functions:
            return name
        return None


def _decorator_base(node: ast.AST) -> ast.AST:
    return node.func if isinstance(node, ast.Call) else node


@dataclass(slots=True)
class ProjectIndex:
    """The whole-program view: every module record plus lookup tables."""

    modules: dict[str, ModuleRecord] = field(default_factory=dict)  # by path

    # -- lookups ------------------------------------------------------------
    def by_module(self, dotted: str) -> ModuleRecord | None:
        for record in self.modules.values():
            if record.module == dotted:
                return record
        return None

    def by_module_suffix(self, suffix: str) -> ModuleRecord | None:
        """Find a module whose dotted name ends with ``suffix``.

        Lets the parity rule (R009) find ``core.search`` whether the tree is
        rooted at ``repro`` or at a fixture package.
        """
        for record in sorted(self.modules.values(), key=lambda r: r.path):
            if record.module and (record.module == suffix
                                  or record.module.endswith("." + suffix)):
                return record
        return None

    def method_index(self) -> dict[str, list[tuple[ModuleRecord, FunctionRecord]]]:
        """Method name -> every (module, record) defining it (for CHA)."""
        out: dict[str, list[tuple[ModuleRecord, FunctionRecord]]] = {}
        for record in sorted(self.modules.values(), key=lambda r: r.path):
            for fn in record.functions.values():
                if fn.is_method:
                    out.setdefault(fn.name, []).append((record, fn))
        return out

    def resolve_call(self, module: ModuleRecord,
                     chain: Chain) -> tuple[ModuleRecord, FunctionRecord] | None:
        """Resolve a call chain to a function record, if unambiguous.

        Handles: module-local functions, ``from x import f`` names, and
        ``mod.f`` through an imported module alias.  Method calls are the
        caller's job (they need receiver typing).
        """
        if len(chain) == 1:
            name = chain[0]
            if name in module.functions:
                return module, module.functions[name]
            dotted = module.imports.get(name)
            if dotted and "." in dotted:
                target_mod, _, fn_name = dotted.rpartition(".")
                target = self.by_module(target_mod) or self.by_module(dotted)
                if target is not None:
                    record = target.functions.get(fn_name)
                    if record is not None:
                        return target, record
            return None
        # mod.f() / pkg.mod.f()
        root = module.imports.get(chain[0])
        if root is None:
            return None
        dotted = root + "." + ".".join(chain[1:-1]) if len(chain) > 2 else root
        target = self.by_module(dotted)
        if target is None:
            return None
        record = target.functions.get(chain[-1])
        if record is None:
            return None
        return target, record

    def import_closure(self, roots: Iterable[str]) -> set[str]:
        """Transitive closure of module imports, restricted to the index.

        ``roots`` and the result are dotted module names present in the
        index.  Imported names that match no indexed module are ignored
        (stdlib, third-party).
        """
        present = {r.module for r in self.modules.values() if r.module}
        closure: set[str] = set()
        stack = [m for m in roots if m in present]
        while stack:
            mod = stack.pop()
            if mod in closure:
                continue
            closure.add(mod)
            record = self.by_module(mod)
            if record is None:
                continue
            for name in record.imported_modules:
                if name in present and name not in closure:
                    stack.append(name)
        return closure

    # -- (de)serialization ---------------------------------------------------
    def as_payload(self) -> dict[str, Any]:
        return {
            "version": INDEX_FORMAT_VERSION,
            "modules": {path: rec.as_dict()
                        for path, rec in sorted(self.modules.items())},
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ProjectIndex":
        if payload.get("version") != INDEX_FORMAT_VERSION:
            raise ValueError("incompatible symbol-table cache version")
        return cls(modules={path: ModuleRecord.from_dict(rec)
                            for path, rec in payload["modules"].items()})


def build_index(contexts: Iterable[Any]) -> ProjectIndex:
    """Build the index from parsed ``ModuleContext`` objects."""
    index = ProjectIndex()
    for ctx in contexts:
        record = _ModuleScanner(str(ctx.path), ctx.module, ctx.tree).scan()
        index.modules[str(ctx.path)] = record
    return index


# -- symbol-table disk cache -------------------------------------------------
def index_cache_key(sources: Iterable[tuple[str, str]]) -> str:
    """Stable key over the (path, source) set feeding the index."""
    digest = hashlib.sha256()
    digest.update(f"v{INDEX_FORMAT_VERSION}".encode())
    for path, source in sorted(sources):
        digest.update(b"\x00")
        digest.update(path.encode())
        digest.update(b"\x01")
        digest.update(hashlib.sha256(source.encode()).digest())
    return digest.hexdigest()


def load_cached_index(cache_dir: Path, key: str) -> ProjectIndex | None:
    path = Path(cache_dir) / f"symtab-{key}.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        return ProjectIndex.from_payload(payload)
    except (OSError, ValueError, KeyError, TypeError):
        return None


def store_cached_index(cache_dir: Path, key: str, index: ProjectIndex) -> None:
    cache_dir = Path(cache_dir)
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        path = cache_dir / f"symtab-{key}.json"
        path.write_text(json.dumps(index.as_payload(), sort_keys=True),
                        encoding="utf-8")
    except OSError:
        pass  # the cache is best-effort; linting proceeds without it
