"""Intraprocedural write-set / effect extraction for the whole-program rules.

This module turns one function body into a flat, serializable *effect
summary*: every name/attribute the function writes, every call it makes
(with the receiver's attribute chain and the chains of its arguments), the
simple aliases it establishes, and the names it declares ``global``.  The
project-level rules (:mod:`repro.lint.program`) consume these summaries —
never the AST — which is what makes the symbol table cacheable between runs
(:mod:`repro.lint.graph`).

The unit of reference is the *chain*: a ``Name``/``Attribute`` path rendered
as a tuple of segments, e.g. ``self.engine.sim.schedule`` becomes
``("self", "engine", "sim", "schedule")``.  Chains deliberately ignore
subscripts and calls in the middle of a path (``a.b[0].c`` has no chain) —
the analysis is a conservative approximation tuned for this codebase's
idioms, not a general points-to analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator, Union

__all__ = [
    "CallSite",
    "DRAW_METHODS",
    "FunctionEffects",
    "MUTATOR_METHODS",
    "RNG_NAME_HINTS",
    "SCHEDULE_METHODS",
    "WriteSite",
    "attr_chain",
    "collect_effects",
    "is_rng_chain",
]

#: Attribute chain: root name first (``("self", "engine", "sim")``).
Chain = tuple[str, ...]

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]

#: Method names that mutate their receiver in place (builtin containers and
#: the container-like objects used throughout the tree).
MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "extend", "extendleft", "insert",
        "add", "update", "setdefault", "pop", "popitem", "popleft",
        "remove", "discard", "clear", "sort", "reverse",
    }
)

#: Kernel entry points that enqueue work (mutate the event queue).
SCHEDULE_METHODS = frozenset({"schedule", "schedule_at"})

#: Generator methods that consume RNG state when called.
DRAW_METHODS = frozenset(
    {
        "random", "normal", "standard_normal", "integers", "choice",
        "shuffle", "uniform", "exponential", "poisson", "permutation",
        "rand", "randint", "randn", "sample", "betavariate", "gauss",
    }
)

#: Chain segments that smell like a random generator binding.
RNG_NAME_HINTS = ("rng", "random")


def attr_chain(node: ast.AST) -> Chain | None:
    """``("a", "b", "c")`` for a pure Name/Attribute path, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def is_rng_chain(chain: Chain) -> bool:
    """Whether a receiver chain looks like a random generator.

    Matches segments named/suffixed ``rng`` (``self._rng``, ``churn_rng``)
    or exactly ``random``.
    """
    return any(
        seg == "random" or seg == "rng" or seg.endswith("_rng") or seg.endswith("rng")
        for seg in chain
    )


@dataclass(frozen=True, slots=True)
class WriteSite:
    """One state write inside a function body.

    ``kind`` is one of ``"assign"`` (plain / annotated / for-target /
    with-target assignment), ``"augassign"``, ``"subscript"`` (store through
    ``x[...] = ...`` where ``x`` has a chain), ``"delete"``, or
    ``"global"`` (assignment to a name declared ``global``).
    """

    chain: Chain
    kind: str
    line: int
    col: int

    def as_dict(self) -> dict[str, Any]:
        return {"chain": list(self.chain), "kind": self.kind,
                "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "WriteSite":
        return cls(tuple(d["chain"]), d["kind"], d["line"], d["col"])


@dataclass(frozen=True, slots=True)
class CallSite:
    """One call inside a function body, with chain-level argument info.

    ``chain`` is the callee path (``("self", "series", "record")``); calls
    through subscripts or call results carry no chain and are not recorded.
    ``args`` holds one entry per positional argument: its chain, or ``None``
    when the argument is not a plain Name/Attribute path.
    """

    chain: Chain
    args: tuple[Chain | None, ...]
    line: int
    col: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "chain": list(self.chain),
            "args": [list(a) if a is not None else None for a in self.args],
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "CallSite":
        return cls(
            tuple(d["chain"]),
            tuple(tuple(a) if a is not None else None for a in d["args"]),
            d["line"],
            d["col"],
        )


@dataclass(slots=True)
class FunctionEffects:
    """The flat effect summary of one function body.

    Nested ``def``\\ s are *excluded* (they get their own record in the
    project index); lambdas are folded into the enclosing body (a lambda
    mutating shared state acts when the enclosing scope runs it).
    """

    params: tuple[str, ...] = ()
    writes: tuple[WriteSite, ...] = ()
    calls: tuple[CallSite, ...] = ()
    #: Simple ``name = <chain>`` aliases (last binding wins).
    aliases: dict[str, Chain] = field(default_factory=dict)
    #: Names assigned from non-chain expressions (fresh locals).
    locals: frozenset[str] = frozenset()
    #: Names declared ``global`` in this body.
    globals_declared: frozenset[str] = frozenset()

    def as_dict(self) -> dict[str, Any]:
        return {
            "params": list(self.params),
            "writes": [w.as_dict() for w in self.writes],
            "calls": [c.as_dict() for c in self.calls],
            "aliases": {k: list(v) for k, v in sorted(self.aliases.items())},
            "locals": sorted(self.locals),
            "globals_declared": sorted(self.globals_declared),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FunctionEffects":
        return cls(
            params=tuple(d["params"]),
            writes=tuple(WriteSite.from_dict(w) for w in d["writes"]),
            calls=tuple(CallSite.from_dict(c) for c in d["calls"]),
            aliases={k: tuple(v) for k, v in d["aliases"].items()},
            locals=frozenset(d["locals"]),
            globals_declared=frozenset(d["globals_declared"]),
        )

    def resolve(self, chain: Chain, *, depth: int = 4) -> Chain:
        """Expand leading alias segments (``sim`` -> ``engine.sim``)."""
        for _ in range(depth):
            target = self.aliases.get(chain[0])
            if target is None:
                return chain
            chain = target + chain[1:]
        return chain


def _param_names(node: _FuncNode) -> tuple[str, ...]:
    a = node.args
    names = [p.arg for p in (*a.posonlyargs, *a.args)]
    if a.vararg:
        names.append(a.vararg.arg)
    names.extend(p.arg for p in a.kwonlyargs)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return tuple(names)


class _EffectVisitor(ast.NodeVisitor):
    """Walks one function body, skipping nested ``def``/``class`` scopes."""

    def __init__(self) -> None:
        self.writes: list[WriteSite] = []
        self.calls: list[CallSite] = []
        self.aliases: dict[str, Chain] = {}
        self.locals: set[str] = set()
        self.globals_declared: set[str] = set()

    # -- scope boundaries -------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.locals.add(node.name)  # the nested def binds a local name

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.locals.add(node.name)

    # -- declarations ------------------------------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        self.globals_declared.update(node.names)

    # -- writes ------------------------------------------------------------
    def _record_target(self, target: ast.AST, value: ast.AST | None,
                       kind: str) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self.writes.append(
                    WriteSite((target.id,), "global",
                              target.lineno, target.col_offset)
                )
            elif kind == "assign" and value is not None:
                chain = attr_chain(value)
                if chain is not None:
                    self.aliases[target.id] = chain
                else:
                    self.aliases.pop(target.id, None)
                    self.locals.add(target.id)
            else:
                self.locals.add(target.id)
            return
        if isinstance(target, ast.Attribute):
            chain = attr_chain(target)
            if chain is not None:
                self.writes.append(
                    WriteSite(chain, kind if kind != "assign" else "assign",
                              target.lineno, target.col_offset)
                )
            return
        if isinstance(target, ast.Subscript):
            chain = attr_chain(target.value)
            if chain is not None:
                self.writes.append(
                    WriteSite(chain, "subscript",
                              target.lineno, target.col_offset)
                )
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(elt, None, kind)
            return
        if isinstance(target, ast.Starred):
            self._record_target(target.value, None, kind)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node.value, "assign")
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_target(node.target, node.value, "assign")
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, None, "augassign")
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_target(target, None, "delete")

    def visit_For(self, node: ast.For) -> None:
        self._record_target(node.target, None, "loop")
        self.generic_visit(node)

    def visit_withitem(self, node: ast.withitem) -> None:
        if node.optional_vars is not None:
            self._record_target(node.optional_vars, None, "with")
        self.visit(node.context_expr)

    # -- calls -------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = attr_chain(node.func)
        if chain is not None:
            args = tuple(attr_chain(a) for a in node.args)
            self.calls.append(
                CallSite(chain, args, node.lineno, node.col_offset)
            )
        self.generic_visit(node)


def _body_nodes(node: _FuncNode) -> Iterator[ast.AST]:
    if isinstance(node, ast.Lambda):
        yield node.body
    else:
        yield from node.body


def collect_effects(node: _FuncNode) -> FunctionEffects:
    """Extract the :class:`FunctionEffects` summary of one function body."""
    visitor = _EffectVisitor()
    for stmt in _body_nodes(node):
        visitor.visit(stmt)
    return FunctionEffects(
        params=_param_names(node),
        writes=tuple(visitor.writes),
        calls=tuple(visitor.calls),
        aliases=visitor.aliases,
        locals=frozenset(visitor.locals),
        globals_declared=frozenset(visitor.globals_declared),
    )
