"""The rule registry and the per-module determinism/invariant rules.

Each rule is an :class:`ast.NodeVisitor` instantiated per module.  Rules are
registered by code in :data:`RULES`; adding a rule is: subclass :class:`Rule`,
set ``code``/``name``/``rationale``, implement ``visit_*`` methods that call
:meth:`Rule.report`, and decorate with :func:`register` (see
``docs/development.md``).  Whole-program rules (R006/R007/R009) live in
:mod:`repro.lint.program` instead — they run once over the project index,
not once per module.

Catalogue (per-module rules)
----------------------------
R001  unseeded-rng        module-level ``random``/``numpy.random`` draws
                          instead of :class:`repro.rng.RngStreams` generators
R002  wall-clock          real-time reads inside the deterministic packages
R003  unordered-iteration iteration over ``set``/``dict.keys()`` without
                          ``sorted(...)`` (nondeterministic event order)
R004  float-time-equality ``==``/``!=`` on simulation timestamps
R005  mutable-default     mutable defaults / shared-mutable class attributes
R008  digest-tainted-iteration
                          R003's error-grade subset: the unstable order
                          provably reaches event emission or an RNG draw
R010  env-read-in-kernel  ``os.environ``/``os.getenv`` inside the
                          deterministic packages
R011  unordered-float-accumulation
                          non-commutative float ``+=`` over sets/dict keys
R012  fork-unsafe-lazy-cache
                          module-level lazily-built mutable caches
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.lint.dataflow import (
    DRAW_METHODS,
    MUTATOR_METHODS,
    attr_chain,
    collect_effects,
    is_rng_chain,
)
from repro.lint.model import Finding, ModuleContext

__all__ = ["RULES", "Rule", "all_rules", "register"]

#: Subpackages of ``repro`` whose execution must be bit-reproducible.  The
#: package-scoped rules (R002, R003) only fire here — ``experiments`` may
#: legitimately read ``time.perf_counter`` for progress reporting, for
#: example — but fire everywhere on files outside the ``repro`` tree (lint
#: fixtures, scripts, downstream code).
DETERMINISTIC_PACKAGES = frozenset(
    {"core", "sim", "net", "gnutella", "webcache", "olap"}
)


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule(ast.NodeVisitor):
    """Base class: one instance analyses one module and accumulates findings."""

    code: ClassVar[str]
    name: ClassVar[str]
    rationale: ClassVar[str]

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (default: always)."""
        return True

    def run(self) -> list[Finding]:
        """Visit the module tree and return the findings."""
        self.visit(self.ctx.tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding anchored at ``node``."""
        self.findings.append(
            Finding(
                code=self.code,
                message=message,
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
            )
        )


RULES: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding ``cls`` to the :data:`RULES` registry."""
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code!r}")
    RULES[cls.code] = cls
    return cls


def all_rules() -> Iterator[type[Rule]]:
    """Registered rules in code order."""
    for code in sorted(RULES):
        yield RULES[code]


class _PackageScopedRule(Rule):
    """A rule active only in the deterministic subpackages of ``repro``.

    Files outside the ``repro`` package (fixtures, user scripts) are always
    checked, so the rule remains testable and useful downstream.
    """

    @classmethod
    def applies(cls, ctx: ModuleContext) -> bool:
        sub = ctx.subpackage
        if sub is None:
            return True
        return sub in DETERMINISTIC_PACKAGES


# ---------------------------------------------------------------------------
# R001 — unseeded module-level RNG
# ---------------------------------------------------------------------------
@register
class UnseededRngRule(Rule):
    """Direct ``random`` / ``numpy.random`` draws bypass :class:`RngStreams`.

    Module-level generators share hidden global state: a draw added in one
    component silently perturbs every other component's sequence, destroying
    the paired-comparison property the experiments rely on.  All randomness
    must flow through named ``RngStreams`` generators (or an explicitly
    seeded ``numpy.random.default_rng(seed)``).

    Example::

        import random
        delay = random.random()          # global hidden RNG state

    Fix::

        rng = RngStreams(seed).get("churn")
        delay = rng.random()             # named, seed-derived stream
    """

    code = "R001"
    name = "unseeded-rng"
    rationale = "module-level RNG calls break seed-reproducibility"

    #: numpy.random attributes that are fine to reference: constructing an
    #: explicitly seeded generator is the sanctioned escape hatch.
    _NUMPY_ALLOWED = frozenset({"Generator", "SeedSequence", "BitGenerator", "PCG64"})

    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        self._random_aliases: set[str] = set()
        self._numpy_aliases: set[str] = set()
        self._numpy_random_aliases: set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self._random_aliases.add(bound)
            elif alias.name == "numpy":
                self._numpy_aliases.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname is not None:
                    self._numpy_random_aliases.add(alias.asname)
                else:
                    self._numpy_aliases.add("numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            self.report(
                node,
                "import from the stdlib `random` module; draw from a named "
                "RngStreams generator instead",
            )
        elif node.module == "numpy.random" and node.level == 0:
            bad = [a.name for a in node.names if a.name not in self._NUMPY_ALLOWED]
            if bad:
                self.report(
                    node,
                    f"import of numpy.random function(s) {', '.join(sorted(bad))}; "
                    "use an RngStreams generator instead",
                )
        elif node.module == "numpy" and node.level == 0:
            for alias in node.names:
                if alias.name == "random":
                    self._numpy_random_aliases.add(alias.asname or "random")
        self.generic_visit(node)

    def _numpy_random_attr(self, func: ast.AST) -> str | None:
        """The attribute name for ``np.random.<attr>`` / ``npr.<attr>`` calls."""
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if isinstance(base, ast.Name) and base.id in self._numpy_random_aliases:
            return func.attr
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in self._numpy_aliases
        ):
            return func.attr
        return None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self._random_aliases
        ):
            self.report(
                node,
                f"call to random.{func.attr}() uses the global stdlib RNG; "
                "draw from a named RngStreams generator instead",
            )
        else:
            attr = self._numpy_random_attr(func)
            if attr is not None and attr not in self._NUMPY_ALLOWED:
                if attr == "default_rng" and node.args:
                    pass  # explicitly seeded generator: sanctioned
                else:
                    self.report(
                        node,
                        f"call to numpy.random.{attr}() "
                        + (
                            "without a seed argument; "
                            if attr == "default_rng"
                            else "uses numpy's global RNG state; "
                        )
                        + "derive generators from RngStreams",
                    )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# R002 — wall-clock access in deterministic packages
# ---------------------------------------------------------------------------
@register
class WallClockRule(_PackageScopedRule):
    """Real time must never leak into simulation logic.

    Inside the deterministic packages the only clock is ``Simulator.now``;
    any wall-clock read makes behaviour (or at least logs/metrics) differ
    between two same-seed runs.

    Example::

        import time
        started = time.perf_counter()    # differs every run

    Fix::

        started = sim.now                # simulated time is the only clock
    """

    code = "R002"
    name = "wall-clock"
    rationale = "wall-clock reads make same-seed runs diverge"

    _TIME_FUNCS = frozenset(
        {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
            "process_time",
            "process_time_ns",
        }
    )
    _DATETIME_FUNCS = frozenset({"now", "utcnow", "today", "fromtimestamp"})

    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        self._time_aliases: set[str] = set()
        self._datetime_aliases: set[str] = set()  # the datetime *module*
        self._datetime_classes: set[str] = set()  # datetime/date classes
        self._time_func_aliases: set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "time":
                self._time_aliases.add(bound)
            elif alias.name == "datetime":
                self._datetime_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level != 0:
            self.generic_visit(node)
            return
        if node.module == "time":
            for alias in node.names:
                if alias.name in self._TIME_FUNCS:
                    self._time_func_aliases.add(alias.asname or alias.name)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in {"datetime", "date"}:
                    self._datetime_classes.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._time_func_aliases:
            self.report(
                node,
                f"wall-clock call {func.id}(); simulation code must use "
                "Simulator.now (sim time) only",
            )
        elif isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id in self._time_aliases
                and func.attr in self._TIME_FUNCS
            ):
                self.report(
                    node,
                    f"wall-clock call time.{func.attr}(); simulation code must "
                    "use Simulator.now (sim time) only",
                )
            elif func.attr in self._DATETIME_FUNCS:
                dotted = _dotted_name(base)
                if dotted is not None and (
                    dotted in self._datetime_classes
                    or any(
                        dotted in (f"{m}.datetime", f"{m}.date")
                        for m in self._datetime_aliases
                    )
                ):
                    self.report(
                        node,
                        f"wall-clock call {dotted}.{func.attr}(); simulation "
                        "code must use Simulator.now (sim time) only",
                    )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# R003 — unordered iteration
# ---------------------------------------------------------------------------
@register
class UnorderedIterationRule(_PackageScopedRule):
    """Iterating a ``set`` (or ``dict.keys()``) without ``sorted(...)``.

    Set iteration order depends on element hashes and insertion history; when
    it feeds scheduling, RNG draws, or returned collections, two runs that
    are logically identical can diverge.  Wrap the iterable in ``sorted()``
    or iterate an insertion-ordered structure instead.  Iterations whose
    *result* is order-insensitive (feeding ``set``/``frozenset``/``sum``/...)
    are not flagged.

    Example::

        for peer in reachable:           # reachable: set[int]
            visit(peer)                  # visit order varies run to run

    Fix::

        for peer in sorted(reachable):
            visit(peer)
    """

    code = "R003"
    name = "unordered-iteration"
    rationale = "set/dict-key iteration order is not a stable contract"

    #: Consumers for which operand order cannot matter.
    _ORDER_FREE_SINKS = frozenset(
        {"set", "frozenset", "sum", "len", "any", "all", "min", "max", "sorted", "Counter"}
    )

    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        #: Names known (heuristically) to be bound to sets in this module.
        self._set_names: set[str] = set()
        #: ``self.<attr>`` attributes known to be sets.
        self._set_attrs: set[str] = set()
        #: Generator expressions exempt because they feed an order-free sink.
        self._exempt: set[int] = set()

    # -- set-typedness heuristics ---------------------------------------
    def _is_set_annotation(self, annotation: ast.AST | None) -> bool:
        if annotation is None:
            return False
        dotted = _dotted_name(
            annotation.value if isinstance(annotation, ast.Subscript) else annotation
        )
        return dotted in {"set", "frozenset", "Set", "FrozenSet", "AbstractSet",
                          "typing.Set", "typing.FrozenSet", "typing.AbstractSet"}

    def _is_set_expr(self, node: ast.AST) -> bool:
        """Whether ``node`` is (heuristically) a set-valued expression."""
        if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            return dotted in {"set", "frozenset"}
        if isinstance(node, ast.Name):
            return node.id in self._set_names
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr in self._set_attrs
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _record_binding(self, target: ast.AST, is_set: bool) -> None:
        if isinstance(target, ast.Name):
            if is_set:
                self._set_names.add(target.id)
            else:
                self._set_names.discard(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            if is_set:
                self._set_attrs.add(target.attr)
            else:
                self._set_attrs.discard(target.attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            self._record_binding(target, is_set)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_binding(node.target, self._is_set_annotation(node.annotation))
        self.generic_visit(node)

    def _bind_args(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if self._is_set_annotation(arg.annotation):
                self._set_names.add(arg.arg)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._bind_args(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._bind_args(node)
        self.generic_visit(node)

    # -- exemptions ------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        sink = dotted.rsplit(".", 1)[-1] if dotted else None
        if sink in self._ORDER_FREE_SINKS:
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                    self._exempt.add(id(arg))
        self.generic_visit(node)

    # -- the actual checks -----------------------------------------------
    def _unordered_reason(self, node: ast.AST) -> str | None:
        """``"keys"``/``"set"`` when ``node`` iterates in an unstable order.

        Shared with the derived rules (R008, R011) that reuse the set
        heuristics but apply their own dataflow conditions before reporting.
        """
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted is not None and dotted.rsplit(".", 1)[-1] == "sorted":
                return None
            if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
                return "keys"
        if self._is_set_expr(node):
            return "set"
        return None

    def _check_iterable(self, node: ast.AST, where: str) -> None:
        reason = self._unordered_reason(node)
        if reason == "keys":
            self.report(
                node,
                f"iteration over dict .keys() in {where}; key order follows "
                "insertion history — iterate sorted(...) for a stable order",
            )
        elif reason == "set":
            self.report(
                node,
                f"iteration over a set in {where}; set order is hash/"
                "insertion-history dependent — wrap in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter, "a for loop")
        self.generic_visit(node)

    def _visit_comp(self, node: ast.ListComp | ast.GeneratorExp | ast.DictComp) -> None:
        if id(node) not in self._exempt:
            kind = "a dict comprehension" if isinstance(node, ast.DictComp) else "a comprehension"
            for gen in node.generators:
                self._check_iterable(gen.iter, kind)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp
    # SetComp results are themselves unordered; iterating a set into a set
    # cannot leak ordering, so SetComp generators are deliberately exempt.


# ---------------------------------------------------------------------------
# R004 — floating-point equality on timestamps
# ---------------------------------------------------------------------------
@register
class FloatTimeEqualityRule(Rule):
    """``==`` / ``!=`` between simulation timestamps.

    Timestamps are sums of floating-point delays; equality comparisons work
    by accident until an arithmetic reassociation (or a different platform's
    libm) flips the result.  Compare with an ordering predicate or
    ``math.isclose`` instead.

    Example::

        if sim.now == deadline_time:     # works until a rounding change
            expire()

    Fix::

        if sim.now >= deadline_time:
            expire()
    """

    code = "R004"
    name = "float-time-equality"
    rationale = "float timestamp equality is representation-dependent"

    _EXACT = frozenset({"now", "_now", "timestamp", "issued_at", "sim_time"})
    _SUFFIXES = ("_time", "_at", "_timestamp", "_deadline")

    def _is_timey(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            # ``datetime.now()``-style calls compared for equality.
            return isinstance(node.func, ast.Attribute) and self._is_timey(node.func)
        name: str | None = None
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        if name is None:
            return False
        return name in self._EXACT or name.endswith(self._SUFFIXES)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            # Comparing a timestamp against the literal 0 sentinel is exact
            # (0.0 is representable); everything else is flagged.
            if any(self._is_timey(side) for side in (left, right)) and not any(
                isinstance(side, ast.Constant) and side.value == 0
                for side in (left, right)
            ):
                self.report(
                    node,
                    "floating-point equality on a simulation timestamp; use an "
                    "ordering comparison or math.isclose",
                )
                break
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# R005 — mutable defaults and shared-mutable class attributes
# ---------------------------------------------------------------------------
@register
class MutableDefaultRule(Rule):
    """Mutable default arguments / class-level mutable state.

    A mutable default is evaluated once and shared by every call; a mutable
    class attribute is shared by every instance.  In node/protocol state
    classes this aliases *per-peer* state across the whole population — a
    consistency-predicate violation waiting to happen.

    Example::

        class PeerState:
            neighbors = []               # one list shared by every peer

    Fix::

        class PeerState:
            def __init__(self):
                self.neighbors = []      # per-instance state
    """

    code = "R005"
    name = "mutable-default"
    rationale = "shared mutable state aliases per-node protocol state"

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "deque", "bytearray"})

    def _is_mutable(self, node: ast.AST | None) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            return dotted is not None and dotted.rsplit(".", 1)[-1] in self._MUTABLE_CALLS
        return False

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> None:
        args = node.args
        named = [*args.posonlyargs, *args.args]
        for arg, default in zip(named[len(named) - len(args.defaults):], args.defaults):
            if self._is_mutable(default):
                self.report(
                    default,
                    f"mutable default for parameter {arg.arg!r} is shared across "
                    "calls; default to None and construct inside the function",
                )
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None and self._is_mutable(kw_default):
                self.report(
                    kw_default,
                    f"mutable default for parameter {arg.arg!r} is shared across "
                    "calls; default to None and construct inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            targets: list[ast.AST] = []
            value: ast.AST | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if not self._is_mutable(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.isupper() or (name.startswith("__") and name.endswith("__")):
                    continue  # constants and dunders are conventionally shared
                self.report(
                    stmt,
                    f"class attribute {name!r} holds a mutable object shared by "
                    "all instances; initialise it per-instance in __init__",
                )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# R008 — digest-tainted unordered iteration
# ---------------------------------------------------------------------------
@register
class DigestTaintedIterationRule(UnorderedIterationRule):
    """Unordered iteration whose loop body reaches the event stream.

    R003 flags every unstable iteration as a hazard; this is its dataflow-
    confirmed, error-grade subset: the loop body schedules callbacks,
    triggers events, or draws randomness, so the unstable order provably
    reaches the event-stream digest.  When R008 and R003 fire on the same
    line the engine keeps only R008, so fixing the real taint also silences
    the style finding — no blanket ``disable=R003`` needed.

    Example::

        for peer in frontier:            # frontier: set[int]
            sim.schedule(delay, notify, peer)   # emission order = set order

    Fix::

        for peer in sorted(frontier):
            sim.schedule(delay, notify, peer)
    """

    code = "R008"
    name = "digest-tainted-iteration"
    rationale = "unordered iteration order provably reaches the event stream"

    #: Call tails that put the iteration order into the event stream.
    _SINK_TAILS = frozenset(
        {"schedule", "schedule_at", "push", "send", "succeed", "fail",
         "emit", "record_query", "publish"}
    )

    def _check_iterable(self, node: ast.AST, where: str) -> None:
        return  # R003-style reporting is disabled in this subclass

    def _sink_chain(self, body: list[ast.stmt]) -> tuple[str, ...] | None:
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                chain = attr_chain(node.func)
                if chain is None:
                    continue
                if chain[-1] in self._SINK_TAILS:
                    return chain
                if (len(chain) > 1 and is_rng_chain(chain[:-1])
                        and chain[-1] in DRAW_METHODS):
                    return chain
        return None

    def visit_For(self, node: ast.For) -> None:
        if self._unordered_reason(node.iter) is not None:
            sink = self._sink_chain(node.body)
            if sink is not None:
                self.report(
                    node.iter,
                    f"unordered iteration feeds '{'.'.join(sink)}' inside "
                    "the loop body; emission/draw order becomes hash-"
                    "dependent — iterate sorted(...)",
                )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# R010 — environment reads in deterministic packages
# ---------------------------------------------------------------------------
@register
class EnvReadRule(_PackageScopedRule):
    """``os.environ`` / ``os.getenv`` inside the deterministic packages.

    Environment variables vary by host, shell, and CI runner; a kernel or
    protocol module that reads one computes different results from the same
    ``Config`` — unreproducible by construction.  Debug switches belong in
    the orchestration/CLI layer, threaded in through ``Config``.

    Example::

        ttl = int(os.environ.get("REPRO_TTL", "7"))   # host-dependent

    Fix::

        ttl = config.max_hops            # explicit, recorded configuration
    """

    code = "R010"
    name = "env-read-in-kernel"
    rationale = "environment reads make kernel behaviour host-dependent"

    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        self._os_aliases: set[str] = set()
        self._env_names: set[str] = set()  # from os import environ/getenv

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "os":
                self._os_aliases.add(alias.asname or "os")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "os" and node.level == 0:
            for alias in node.names:
                if alias.name in {"environ", "getenv"}:
                    self._env_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            node.attr in {"environ", "getenv"}
            and isinstance(node.value, ast.Name)
            and node.value.id in self._os_aliases
        ):
            self.report(
                node,
                f"os.{node.attr} read inside a deterministic package; "
                "thread configuration through Config (env switches belong "
                "in the orchestration/CLI layer)",
            )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and node.id in self._env_names:
            self.report(
                node,
                f"environment read via '{node.id}' inside a deterministic "
                "package; thread configuration through Config",
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# R011 — non-commutative float accumulation over unordered collections
# ---------------------------------------------------------------------------
@register
class FloatAccumulationRule(UnorderedIterationRule):
    """Float ``+=`` accumulation over a set / dict keys.

    Float addition is not associative: summing the same values in a
    different order changes the low-order bits, and downstream comparisons
    or digests amplify the difference.  Iterating a set makes the order
    hash-dependent, so the sum differs between runs even with identical
    inputs.  Accumulators are recognised by a float-literal initialisation
    (``total = 0.0``); integer counters are commutative and exempt.

    Example::

        total = 0.0
        for d in delays:                 # delays: set[float]
            total += d                   # low bits depend on hash order

    Fix::

        total = math.fsum(delays)        # order-insensitive, or iterate
                                         # sorted(delays)
    """

    code = "R011"
    name = "unordered-float-accumulation"
    rationale = "float addition is non-associative; set order changes the sum"

    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        self._float_names: set[str] = set()

    def _check_iterable(self, node: ast.AST, where: str) -> None:
        return  # R003-style reporting is disabled in this subclass

    def visit_Assign(self, node: ast.Assign) -> None:
        is_float = isinstance(node.value, ast.Constant) and isinstance(
            node.value.value, float
        )
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_float:
                    self._float_names.add(target.id)
                else:
                    self._float_names.discard(target.id)
        super().visit_Assign(node)

    def visit_For(self, node: ast.For) -> None:
        if self._unordered_reason(node.iter) is not None:
            for stmt in node.body:
                acc = self._float_augassign(stmt)
                if acc is not None:
                    name, lineno = acc
                    self.report(
                        node.iter,
                        f"float accumulator '{name}' is summed over an "
                        f"unordered collection (line {lineno}); addition "
                        "order changes the low bits — iterate sorted(...) "
                        "or use math.fsum",
                    )
                    break
        self.generic_visit(node)

    def _float_augassign(self, stmt: ast.stmt) -> tuple[str, int] | None:
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.AugAssign)
                and isinstance(sub.op, (ast.Add, ast.Sub))
                and isinstance(sub.target, ast.Name)
                and sub.target.id in self._float_names
            ):
                return sub.target.id, sub.lineno
        return None


# ---------------------------------------------------------------------------
# R012 — fork-unsafe lazy caches
# ---------------------------------------------------------------------------
@register
class ForkUnsafeLazyCacheRule(_PackageScopedRule):
    """Module-level lazily-built mutable caches.

    A module-level cache slot (``_CACHE = {}`` or ``_matrix = None``) filled
    in on first use is a fork hazard: whether a pool worker inherits a
    built or an empty cache depends on *when* the parent first touched it
    relative to the fork — per-worker rebuild order then differs, and any
    order-sensitive build step diverges.  Caches belong on instances (built
    per engine, inside the worker) or must be built eagerly at import time.

    Example::

        _rows = None

        def delay_rows(n):
            global _rows
            if _rows is None:
                _rows = _build(n)        # built pre- or post-fork?

    Fix::

        class LatencyModel:
            def delay_rows(self):        # instance-level cache: each
                if self._rows is None:   # worker builds its own engine
                    self._rows = self._build()
    """

    code = "R012"
    name = "fork-unsafe-lazy-cache"
    rationale = "lazy module caches make worker state depend on fork timing"

    _EMPTY_CALLS = frozenset(
        {"dict", "list", "set", "OrderedDict", "defaultdict",
         "WeakValueDictionary", "WeakKeyDictionary"}
    )

    def _lazy_slots(self) -> set[str]:
        """Module-level names bound to ``None`` or an empty container."""
        slots: set[str] = set()
        for stmt in self.ctx.tree.body:
            targets: list[ast.AST] = []
            value: ast.AST | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not self._is_empty_init(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    slots.add(target.id)
        return slots

    def _is_empty_init(self, value: ast.AST) -> bool:
        if isinstance(value, ast.Constant) and value.value is None:
            return True
        if isinstance(value, ast.Dict):
            return not value.keys
        if isinstance(value, (ast.List, ast.Set)):
            return not value.elts
        if isinstance(value, ast.Call) and not value.args and not value.keywords:
            dotted = _dotted_name(value.func)
            return (dotted or "").rsplit(".", 1)[-1] in self._EMPTY_CALLS
        return False

    def run(self) -> list[Finding]:
        slots = self._lazy_slots()
        if not slots:
            return self.findings
        for node in ast.walk(self.ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            effects = collect_effects(node)
            shadowed = (
                set(effects.params) | set(effects.locals) | set(effects.aliases)
            ) - set(effects.globals_declared)
            for w in effects.writes:
                name = w.chain[0]
                if (
                    len(w.chain) == 1
                    and name in slots
                    and name not in shadowed
                    and w.kind in {"global", "subscript", "augassign"}
                ):
                    self._report_at(
                        w.line, w.col,
                        f"module-level cache '{name}' is lazily written in "
                        f"'{node.name}'; whether pool workers inherit it "
                        "built or empty depends on fork timing — make it an "
                        "instance attribute or build it eagerly at import",
                    )
            for c in effects.calls:
                if (
                    len(c.chain) == 2
                    and c.chain[0] in slots
                    and c.chain[0] not in shadowed
                    and c.chain[1] in MUTATOR_METHODS
                ):
                    self._report_at(
                        c.line, c.col,
                        f"module-level cache '{c.chain[0]}' is lazily "
                        f"mutated in '{node.name}' via .{c.chain[1]}(); "
                        "fork timing decides what workers inherit — make it "
                        "an instance attribute or build it eagerly at import",
                    )
        return self.findings

    def _report_at(self, line: int, col: int, message: str) -> None:
        self.findings.append(
            Finding(code=self.code, message=message, path=self.ctx.path,
                    line=line, col=col)
        )
