"""File collection, rule execution, and suppression filtering.

Linting is a two-pass pipeline:

1. every file is read and parsed, and the per-module rules
   (:data:`~repro.lint.rules.RULES`) run on each module in isolation;
2. all parsed modules are folded into one
   :class:`~repro.lint.graph.ProjectIndex` and the whole-program rules
   (:data:`~repro.lint.program.PROJECT_RULES` — observer purity, worker
   state, parity audit) run once over it.

Findings from both passes share one suppression mechanism and one sorted
output.  When the dataflow-upgraded rules (R008/R011) fire on a line, the
style-grade R003 finding for the same line is dropped — the sharper finding
subsumes it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.graph import (
    build_index,
    index_cache_key,
    load_cached_index,
    store_cached_index,
)
from repro.lint.model import Finding, ModuleContext, Suppressions, parse_suppressions
from repro.lint.program import PROJECT_RULES
from repro.lint.rules import RULES

__all__ = ["LintResult", "lint_file", "lint_paths", "lint_source"]

#: Pseudo-code reported for unparseable files; never suppressible.
PARSE_ERROR_CODE = "R000"

#: Dataflow-upgraded codes that subsume an R003 finding on the same line.
_R003_UPGRADES = frozenset({"R008", "R011"})


@dataclass(slots=True)
class LintResult:
    """Aggregate outcome of one lint invocation."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    checked_files: int = 0

    @property
    def ok(self) -> bool:
        """Whether the tree is clean (no unsuppressed findings)."""
        return not self.findings

    def merge(self, other: "LintResult") -> None:
        """Fold ``other`` into this result."""
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.checked_files += other.checked_files


def _module_name(path: Path) -> str | None:
    """Dotted module name for files inside a ``repro`` package tree."""
    parts = list(path.with_suffix("").parts)
    for i, part in enumerate(parts):
        if part == "repro":
            name = ".".join(parts[i:])
            return name.removesuffix(".__init__")
    return None


def _select_rules(
    select: Sequence[str] | None, ignore: Sequence[str] | None
) -> tuple[list[str], list[str]]:
    """Validated (per-module codes, project codes) honouring select/ignore."""
    known = {**RULES, **PROJECT_RULES}
    codes = sorted(select) if select else sorted(known)
    unknown = [c for c in {*(select or ()), *(ignore or ())} if c not in known]
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    ignored = set(ignore or ())
    active = [c for c in codes if c not in ignored]
    return (
        [c for c in active if c in RULES],
        [c for c in active if c in PROJECT_RULES],
    )


def _dedupe(findings: list[Finding]) -> list[Finding]:
    """Drop R003 findings subsumed by an R008/R011 finding on the same line."""
    upgraded = {
        (f.path, f.line) for f in findings if f.code in _R003_UPGRADES
    }
    return [
        f for f in findings
        if not (f.code == "R003" and (f.path, f.line) in upgraded)
    ]


def _parse_error(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        code=PARSE_ERROR_CODE,
        message=f"could not parse file: {exc.msg}",
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
    )


def _run_local_rules(ctx: ModuleContext, codes: Sequence[str]) -> list[Finding]:
    findings: list[Finding] = []
    for code in codes:
        rule_cls = RULES[code]
        if rule_cls.applies(ctx):
            findings.extend(rule_cls(ctx).run())
    return findings


def _run_project_rules(index, codes: Sequence[str]) -> list[Finding]:
    findings: list[Finding] = []
    for code in codes:
        findings.extend(PROJECT_RULES[code](index).run())
    return findings


def _location_key(finding: Finding) -> tuple[str, int, int, str]:
    return (finding.path, finding.line, finding.col, finding.code)


def _partition(
    result: LintResult,
    findings: list[Finding],
    suppressions: dict[str, Suppressions],
) -> None:
    """Split raw findings into reported vs suppressed, sorted by location."""
    for finding in _dedupe(findings):
        supp = suppressions.get(finding.path)
        if supp is not None and supp.is_suppressed(finding):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    result.findings.sort(key=_location_key)
    result.suppressed.sort(key=_location_key)


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    module: str | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintResult:
    """Lint a source string (both passes, over a one-module project)."""
    local_codes, project_codes = _select_rules(select, ignore)
    result = LintResult(checked_files=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(_parse_error(path, exc))
        return result
    ctx = ModuleContext(path=path, tree=tree, module=module)
    findings = _run_local_rules(ctx, local_codes)
    if project_codes:
        findings.extend(_run_project_rules(build_index([ctx]), project_codes))
    _partition(result, findings, {path: parse_suppressions(source)})
    return result


def lint_file(
    path: Path | str,
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintResult:
    """Lint one file on disk."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (UnicodeDecodeError, OSError) as exc:
        # One unreadable file must not abort a tree-wide lint run.
        return LintResult(
            checked_files=1,
            findings=[
                Finding(
                    code=PARSE_ERROR_CODE,
                    message=f"could not read file: {exc}",
                    path=str(path),
                    line=1,
                    col=0,
                )
            ],
        )
    return lint_source(
        source,
        path=str(path),
        module=_module_name(path),
        select=select,
        ignore=ignore,
    )


def _collect(paths: Iterable[Path | str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_paths(
    paths: Iterable[Path | str],
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    symtab_cache: Path | str | None = None,
) -> LintResult:
    """Lint files and directories (recursively); findings sorted by location.

    ``symtab_cache`` names a directory for the serialized project index,
    keyed on a hash of the source set: unchanged trees skip the symbol-table
    build entirely (the CI cache hook).
    """
    local_codes, project_codes = _select_rules(select, ignore)
    result = LintResult()
    contexts: list[ModuleContext] = []
    sources: list[tuple[str, str]] = []
    suppressions: dict[str, Suppressions] = {}
    findings: list[Finding] = []

    for path in _collect(paths):
        result.checked_files += 1
        path_str = str(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (UnicodeDecodeError, OSError) as exc:
            findings.append(
                Finding(code=PARSE_ERROR_CODE, path=path_str, line=1, col=0,
                        message=f"could not read file: {exc}")
            )
            continue
        try:
            tree = ast.parse(source, filename=path_str)
        except SyntaxError as exc:
            findings.append(_parse_error(path_str, exc))
            continue
        ctx = ModuleContext(path=path_str, tree=tree,
                            module=_module_name(path))
        contexts.append(ctx)
        sources.append((path_str, source))
        suppressions[path_str] = parse_suppressions(source)
        findings.extend(_run_local_rules(ctx, local_codes))

    if project_codes and contexts:
        index = None
        cache_key = None
        if symtab_cache is not None:
            cache_key = index_cache_key(sources)
            index = load_cached_index(Path(symtab_cache), cache_key)
        if index is None:
            index = build_index(contexts)
            if symtab_cache is not None and cache_key is not None:
                store_cached_index(Path(symtab_cache), cache_key, index)
        findings.extend(_run_project_rules(index, project_codes))

    _partition(result, findings, suppressions)
    return result
