"""File collection, rule execution, and suppression filtering."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.model import Finding, ModuleContext, parse_suppressions
from repro.lint.rules import RULES

__all__ = ["LintResult", "lint_file", "lint_paths", "lint_source"]

#: Pseudo-code reported for unparseable files; never suppressible.
PARSE_ERROR_CODE = "R000"


@dataclass(slots=True)
class LintResult:
    """Aggregate outcome of one lint invocation."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    checked_files: int = 0

    @property
    def ok(self) -> bool:
        """Whether the tree is clean (no unsuppressed findings)."""
        return not self.findings

    def merge(self, other: "LintResult") -> None:
        """Fold ``other`` into this result."""
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.checked_files += other.checked_files


def _module_name(path: Path) -> str | None:
    """Dotted module name for files inside a ``repro`` package tree."""
    parts = list(path.with_suffix("").parts)
    for i, part in enumerate(parts):
        if part == "repro":
            name = ".".join(parts[i:])
            return name.removesuffix(".__init__")
    return None


def _select_rules(
    select: Sequence[str] | None, ignore: Sequence[str] | None
) -> list[str]:
    codes = sorted(select) if select else sorted(RULES)
    unknown = [c for c in {*(select or ()), *(ignore or ())} if c not in RULES]
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    ignored = set(ignore or ())
    return [c for c in codes if c not in ignored]


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    module: str | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintResult:
    """Lint a source string; the core entry point the others delegate to."""
    result = LintResult(checked_files=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                code=PARSE_ERROR_CODE,
                message=f"could not parse file: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        )
        return result
    ctx = ModuleContext(path=path, tree=tree, module=module)
    suppressions = parse_suppressions(source)
    for code in _select_rules(select, ignore):
        rule_cls = RULES[code]
        if not rule_cls.applies(ctx):
            continue
        for finding in rule_cls(ctx).run():
            if suppressions.is_suppressed(finding):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return result


def lint_file(
    path: Path | str,
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintResult:
    """Lint one file on disk."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (UnicodeDecodeError, OSError) as exc:
        # One unreadable file must not abort a tree-wide lint run.
        return LintResult(
            checked_files=1,
            findings=[
                Finding(
                    code=PARSE_ERROR_CODE,
                    message=f"could not read file: {exc}",
                    path=str(path),
                    line=1,
                    col=0,
                )
            ],
        )
    return lint_source(
        source,
        path=str(path),
        module=_module_name(path),
        select=select,
        ignore=ignore,
    )


def _collect(paths: Iterable[Path | str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_paths(
    paths: Iterable[Path | str],
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintResult:
    """Lint files and directories (recursively); findings sorted by location."""
    result = LintResult()
    for path in _collect(paths):
        result.merge(lint_file(path, select=select, ignore=ignore))
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return result
