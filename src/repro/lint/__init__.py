"""repro-lint: determinism & protocol-invariant static analysis.

The paper's framework only produces meaningful numbers when simulations are
reproducible (same seed => bit-identical event stream) and the Section 3.1
consistency predicate holds throughout a run.  This subpackage enforces both:

* a static layer — an AST-based linter (``python -m repro.lint``, console
  script ``repro-lint``) with a registry of rules targeting this codebase's
  real determinism hazards (see :mod:`repro.lint.rules` for the catalogue);
* a runtime layer — :mod:`repro.lint.sanitize`, which hashes the executed
  event stream of a :class:`~repro.sim.kernel.Simulator` so same-seed runs
  can be asserted identical, and installs periodic Section 3.1 consistency
  assertions into the Gnutella engines.

Suppress a finding with a trailing ``# repro-lint: disable=CODE`` comment or
a file-wide ``# repro-lint: disable-file=CODE`` comment (see
``docs/development.md``).
"""

from __future__ import annotations

from repro.lint.engine import Finding, LintResult, lint_file, lint_paths, lint_source
from repro.lint.rules import RULES, Rule, all_rules

__all__ = [
    "Finding",
    "LintResult",
    "RULES",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
]
