"""repro-lint: determinism & protocol-invariant static analysis.

The paper's framework only produces meaningful numbers when simulations are
reproducible (same seed => bit-identical event stream) and the Section 3.1
consistency predicate holds throughout a run.  This subpackage enforces both:

* a static layer — a whole-program analyzer (``python -m repro.lint``,
  console script ``repro-lint``): per-module AST rules
  (:mod:`repro.lint.rules`, R001–R005/R008/R010–R012) plus project-wide
  rules (:mod:`repro.lint.program`, R006/R007/R009) running on a symbol
  table and call graph (:mod:`repro.lint.graph`) built from intraprocedural
  effect summaries (:mod:`repro.lint.dataflow`).  Output formats include
  SARIF 2.1.0 (:mod:`repro.lint.sarif`); existing debt is frozen in a
  committed baseline (:mod:`repro.lint.baseline`) so only new findings
  fail CI;
* a runtime layer — :mod:`repro.lint.sanitize`, which hashes the executed
  event stream of a :class:`~repro.sim.kernel.Simulator` so same-seed runs
  can be asserted identical, and installs periodic Section 3.1 consistency
  assertions into the Gnutella engines.

Suppress a finding with a trailing ``# repro-lint: disable=CODE`` comment or
a file-wide ``# repro-lint: disable-file=CODE`` comment (see
``docs/development.md``).
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.engine import Finding, LintResult, lint_file, lint_paths, lint_source
from repro.lint.program import PROJECT_RULES, ProjectRule, all_project_rules
from repro.lint.rules import RULES, Rule, all_rules

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "PROJECT_RULES",
    "ProjectRule",
    "RULES",
    "Rule",
    "all_project_rules",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
]
