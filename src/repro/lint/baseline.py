"""Finding baselines: freeze existing debt so only *new* findings fail CI.

A baseline is a committed multiset of findings keyed on
``(path, code, message)`` — deliberately **not** on line numbers, so
unrelated edits that shift a known finding up or down the file do not
resurrect it.  ``repro-lint --baseline LINT_BASELINE.json`` subtracts the
baseline from the current findings: matched findings are reported as
*baselined* (and carried into SARIF with an ``external`` suppression);
anything unmatched is new debt and fails the run.

The committed file is ``LINT_BASELINE.json`` at the repository root,
regenerated with ``repro-lint --write-baseline LINT_BASELINE.json <paths>``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.lint.model import Finding

__all__ = ["Baseline", "BaselineError"]

BASELINE_FORMAT_VERSION = 1

_Key = tuple[str, str, str]


class BaselineError(ValueError):
    """Raised for unreadable or structurally invalid baseline files."""


def _normalize_path(path: str, root: Path | None) -> str:
    """``path`` relative to ``root`` when possible, forward-slashed.

    Rooting the key at the baseline file's directory makes the same finding
    match whether the linter was invoked with relative or absolute paths
    (the committed baseline lives at the repository root, so keys come out
    repo-relative either way).
    """
    text = path.replace("\\", "/")
    if root is not None:
        try:
            return Path(path).resolve().relative_to(root).as_posix()
        except (OSError, ValueError):
            pass
    return text


@dataclass(slots=True)
class Baseline:
    """A multiset of accepted findings.

    ``root`` anchors path keys (normally the directory holding the baseline
    file); it is not serialized.
    """

    counts: dict[_Key, int] = field(default_factory=dict)
    root: Path | None = None

    def _key(self, finding: Finding) -> _Key:
        return (
            _normalize_path(finding.path, self.root),
            finding.code,
            finding.message,
        )

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], *, root: Path | None = None
    ) -> "Baseline":
        baseline = cls(root=root)
        for finding in findings:
            key = baseline._key(finding)
            baseline.counts[key] = baseline.counts.get(key, 0) + 1
        return baseline

    def __len__(self) -> int:
        return sum(self.counts.values())

    def apply(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Split ``findings`` into ``(new, baselined)``.

        Each baseline entry absorbs at most its recorded count: if a file
        gains a *second* identical finding, the extra occurrence is new.
        """
        remaining = dict(self.counts)
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            key = self._key(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined

    # -- (de)serialization ---------------------------------------------------
    def as_payload(self) -> dict[str, Any]:
        entries = [
            {"path": path, "code": code, "message": message, "count": count}
            for (path, code, message), count in sorted(self.counts.items())
        ]
        return {"version": BASELINE_FORMAT_VERSION, "entries": entries}

    @classmethod
    def from_payload(
        cls, payload: Any, *, root: Path | None = None
    ) -> "Baseline":
        if not isinstance(payload, dict):
            raise BaselineError("baseline must be a JSON object")
        if payload.get("version") != BASELINE_FORMAT_VERSION:
            raise BaselineError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"(expected {BASELINE_FORMAT_VERSION})"
            )
        counts: dict[_Key, int] = {}
        for entry in payload.get("entries", ()):
            try:
                key = (str(entry["path"]), str(entry["code"]),
                       str(entry["message"]))
                count = int(entry.get("count", 1))
            except (TypeError, KeyError) as exc:
                raise BaselineError(f"malformed baseline entry: {entry!r}") from exc
            if count < 1:
                raise BaselineError(f"non-positive count in entry: {entry!r}")
            counts[key] = counts.get(key, 0) + count
        return cls(counts=counts, root=root)

    def save(self, path: Path | str) -> None:
        Path(path).write_text(
            json.dumps(self.as_payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise BaselineError(f"invalid JSON in baseline {path}: {exc}") from exc
        return cls.from_payload(payload, root=Path(path).resolve().parent)
